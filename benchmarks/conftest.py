"""Shared artifacts for the benchmark harness.

Building the dataset and training the cross-validated models is expensive,
so it happens once per benchmark session here; the per-figure benchmark
files then regenerate their rows/series from the shared artifacts and print
them (the same rows the paper's figures plot).

The configuration below is a scaled-down but structurally faithful version
of the paper's setup: all 57 regions, both micro-architectures, 13 labels,
flag-sequence augmentation and k-fold cross validation.  Scale knobs
(sequences, folds, epochs) can be raised via environment variables for a
longer, higher-fidelity run:

    REPRO_BENCH_SEQUENCES=16 REPRO_BENCH_FOLDS=10 REPRO_BENCH_EPOCHS=25 \
        pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import sys

import pytest

try:  # pragma: no cover - import guard for source checkouts
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import HybridModelConfig, PipelineConfig, ReproPipeline, StaticModelConfig


def _int_env(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def pipeline() -> ReproPipeline:
    config = PipelineConfig(
        machines=("skylake", "sandy-bridge"),
        num_flag_sequences=_int_env("REPRO_BENCH_SEQUENCES", 8),
        num_labels=13,
        folds=_int_env("REPRO_BENCH_FOLDS", 5),
        static_model=StaticModelConfig(
            hidden_dim=48,
            graph_vector_dim=48,
            num_rgcn_layers=2,
            epochs=_int_env("REPRO_BENCH_EPOCHS", 20),
            batch_size=32,
            learning_rate=3e-3,
        ),
        hybrid=HybridModelConfig(use_ga_selection=False),
        seed=0,
    )
    return ReproPipeline(config).build()


@pytest.fixture(scope="session")
def skylake_evaluation(pipeline):
    return pipeline.evaluate("skylake")


@pytest.fixture(scope="session")
def sandy_bridge_evaluation(pipeline):
    return pipeline.evaluate("sandy-bridge")
