"""Shared artifacts for the benchmark harness.

Building the dataset and training the cross-validated models is expensive,
so it happens once per benchmark session here; the per-figure benchmark
files then regenerate their rows/series from the shared artifacts and print
them (the same rows the paper's figures plot).

The configuration below is a scaled-down but structurally faithful version
of the paper's setup: all 57 regions, both micro-architectures, 13 labels,
flag-sequence augmentation and k-fold cross validation.  Scale knobs
(sequences, folds, epochs) can be raised via environment variables for a
longer, higher-fidelity run:

    REPRO_BENCH_SEQUENCES=16 REPRO_BENCH_FOLDS=10 REPRO_BENCH_EPOCHS=25 \
        pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

try:  # pragma: no cover - import guard for source checkouts
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import HybridModelConfig, PipelineConfig, ReproPipeline, StaticModelConfig


def _int_env(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


# ------------------------------------------------------ benchmark recording
#
# A benchmark session can append its headline numbers (single / batched /
# ensemble / HTTP QPS, cache and warm-start speedups — whatever the tests
# put into ``benchmark.extra_info``) to BENCH_serving.json at the repo
# root, so the performance trajectory of the serving layer accumulates
# across commits and CI can diff consecutive records.
#
# Recording is **opt-in**: it only happens when ``REPRO_BENCH_RECORD`` is
# explicitly set (to ``1`` for the default path, or to an alternate path),
# or when running under CI (``CI`` is set, as on GitHub Actions).  The
# default tier-1 invocation collects ``benchmarks/`` too, and a plain
# local run must not dirty the worktree as a side effect.  Setting
# ``REPRO_BENCH_RECORD=`` (empty) disables recording even in CI.
#
# One record per commit: each record carries the ``git_commit`` it was
# measured at, and appending replaces any earlier record for the same
# commit — re-running benchmarks refreshes that commit's entry instead of
# duplicating it.

_DEFAULT_RECORD_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_serving.json"
)


def _record_path():
    explicit = os.environ.get("REPRO_BENCH_RECORD")
    if explicit is not None:
        if not explicit:
            return None  # explicitly disabled
        if explicit == "1":
            return _DEFAULT_RECORD_PATH
        return explicit
    if os.environ.get("CI"):
        return _DEFAULT_RECORD_PATH
    return None


def _git_commit():
    """Current HEAD (full sha), or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def pytest_sessionfinish(session, exitstatus):
    """Append one trajectory record built from ``benchmark.extra_info``.

    No-op unless recording is opted in (see module docstring); one
    canonical record is kept per ``git_commit``.
    """
    path = _record_path()
    if not path:
        return
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    if benchmark_session is None:
        return
    per_test = {}
    for bench in benchmark_session.benchmarks:
        extra = dict(getattr(bench, "extra_info", None) or {})
        if extra:
            per_test[bench.name] = extra
    if not per_test:
        return

    path = os.path.abspath(path)
    # Serialise concurrent sessions on a sidecar lock: the read-modify-write
    # below would otherwise drop one session's record.  (flock is advisory
    # and POSIX-only; where unavailable, recording proceeds unlocked.)
    lock_handle = None
    try:
        import fcntl

        lock_handle = open(f"{path}.lock", "w")
        fcntl.flock(lock_handle, fcntl.LOCK_EX)
    except (ImportError, OSError):
        lock_handle = None
    try:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                history = json.load(handle)
            if not isinstance(history, list):
                history = []
        except (FileNotFoundError, ValueError):
            history = []
        commit = _git_commit()
        if commit is not None:
            # One canonical record per commit: a re-run replaces the
            # commit's earlier record instead of appending a duplicate.
            history = [
                record
                for record in history
                if record.get("git_commit") != commit
            ]
        history.append(
            {
                "recorded_unix": time.time(),
                "git_commit": commit,
                "exit_status": int(exitstatus),
                "knobs": {
                    "sequences": _int_env("REPRO_BENCH_SEQUENCES", 8),
                    "folds": _int_env("REPRO_BENCH_FOLDS", 5),
                    "epochs": _int_env("REPRO_BENCH_EPOCHS", 20),
                },
                "benchmarks": dict(sorted(per_test.items())),
            }
        )
        # Atomic replace (write + rename): a crashed run never truncates the
        # accumulated trajectory.
        tmp_path = f"{path}.tmp-{os.getpid()}"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(history, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    finally:
        if lock_handle is not None:
            lock_handle.close()
            # The sidecar only exists to serialise concurrent sessions;
            # once released it is litter (and confuses "is the worktree
            # clean?" checks), so the session removes it on the way out.
            # A concurrent session still inside flock() keeps its own open
            # handle, so unlinking underneath it is safe on POSIX.
            try:
                os.remove(f"{path}.lock")
            except OSError:
                pass
    print(f"\nbenchmark record appended to {path} ({len(history)} run(s) recorded)")


@pytest.fixture(scope="session")
def pipeline() -> ReproPipeline:
    config = PipelineConfig(
        machines=("skylake", "sandy-bridge"),
        num_flag_sequences=_int_env("REPRO_BENCH_SEQUENCES", 8),
        num_labels=13,
        folds=_int_env("REPRO_BENCH_FOLDS", 5),
        static_model=StaticModelConfig(
            hidden_dim=48,
            graph_vector_dim=48,
            num_rgcn_layers=2,
            epochs=_int_env("REPRO_BENCH_EPOCHS", 20),
            batch_size=32,
            learning_rate=3e-3,
        ),
        hybrid=HybridModelConfig(use_ga_selection=False),
        seed=0,
    )
    return ReproPipeline(config).build()


@pytest.fixture(scope="session")
def skylake_evaluation(pipeline):
    return pipeline.evaluate("skylake")


@pytest.fixture(scope="session")
def sandy_bridge_evaluation(pipeline):
    return pipeline.evaluate("sandy-bridge")
