"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are smaller-scale studies (subset of regions) quantifying:
- the value of edge typing (RGCN vs a relation-blind GCN),
- the value of flag-sequence augmentation,
- the effect of the pooling function.
"""

import numpy as np

from repro.core import Augmenter, MachineDataset, select_label_space
from repro.core.static_model import StaticConfigurationPredictor, StaticModelConfig
from repro.graphs import GraphEncoder
from repro.numasim import skylake
from repro.workloads import build_suite


def _prepare(num_sequences: int):
    regions = build_suite(families=["clomp", "lulesh", "rodinia"], limit=24)
    dataset = MachineDataset(skylake(), regions)
    label_space = select_label_space(dataset, num_labels=6)
    labels = label_space.labels_for(dataset)
    encoder = GraphEncoder()
    augmented = Augmenter(num_sequences=num_sequences, seed=0, encoder=encoder).augment(regions)
    augmented.assign_labels(labels)
    names = [r.name for r in regions]
    train = names[: int(0.7 * len(names))]
    test = names[int(0.7 * len(names)) :]
    return encoder, augmented, label_space, dataset, train, test


def _accuracy(predictor, augmented, dataset, label_space, test):
    predictions = predictor.predict_region_labels(augmented, "default-O2", test)
    correct = [
        label_space.best_label_for(dataset.timing(name)) == label
        for name, label in predictions.items()
    ]
    return float(np.mean(correct)) if correct else 0.0


def test_ablation_pooling_modes(benchmark):
    """Mean vs sum vs max pooling (paper architecture uses pooling + norm)."""
    encoder, augmented, label_space, dataset, train, test = _prepare(num_sequences=3)

    def run():
        scores = {}
        for pooling in ("mean", "sum", "max"):
            predictor = StaticConfigurationPredictor(
                num_labels=label_space.num_labels,
                encoder=encoder,
                config=StaticModelConfig(
                    hidden_dim=24, graph_vector_dim=24, num_rgcn_layers=1, epochs=6, pooling=pooling
                ),
            )
            predictor.fit([s for s in augmented.samples if s.region_name in set(train)])
            scores[pooling] = _accuracy(predictor, augmented, dataset, label_space, test)
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation — pooling:", {k: round(v, 3) for k, v in scores.items()})
    assert all(0.0 <= v <= 1.0 for v in scores.values())


def test_ablation_augmentation(benchmark):
    """Training with vs without flag-sequence augmentation."""
    encoder, augmented, label_space, dataset, train, test = _prepare(num_sequences=4)

    def run():
        scores = {}
        for use_augmentation in (False, True):
            if use_augmentation:
                samples = [s for s in augmented.samples if s.region_name in set(train)]
            else:
                samples = [
                    s
                    for s in augmented.samples
                    if s.region_name in set(train) and s.sequence_name == "default-O2"
                ]
            predictor = StaticConfigurationPredictor(
                num_labels=label_space.num_labels,
                encoder=encoder,
                config=StaticModelConfig(hidden_dim=24, graph_vector_dim=24, num_rgcn_layers=1, epochs=6),
            )
            predictor.fit(samples)
            key = "augmented" if use_augmentation else "default-only"
            scores[key] = _accuracy(predictor, augmented, dataset, label_space, test)
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation — augmentation:", {k: round(v, 3) for k, v in scores.items()})
    assert set(scores) == {"augmented", "default-only"}
