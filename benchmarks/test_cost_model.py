"""Cost-model fidelity and admission-control overhead.

Two headline numbers for ``BENCH_serving.json``:

* ``cost_model_mape`` — serve a mixed-size burst through a journalled hub
  (cache off, so every request really runs a batch), fit the analytic
  latency model over the journal's per-stage spans, and record the
  calibration error.  The ISSUE acceptance bound is MAPE <= 0.35: the
  model only has to rank operating points and size deadline windows, not
  nail microseconds.
* ``shed_overhead`` — the admission controller sits on the sync hot path
  (one lock, counter arithmetic); an admission-bound hub that never
  actually sheds must serve within 1.05x of a bare hub.
"""

import os
import time

import pytest

from repro.graphs import GraphBuilder
from repro.serving import (
    CostModelCalibrator,
    DeploymentSpec,
    JournalReader,
    ModelHub,
    SLOConfig,
)
from repro.workloads import build_suite

BURST = 32
ROUNDS = 5


@pytest.fixture(scope="module")
def serving_setup(tmp_path_factory, pipeline, skylake_evaluation):
    root = os.fspath(tmp_path_factory.mktemp("cost-model-bench-registry"))
    refs = pipeline.export_artifacts(skylake_evaluation, root, name="bench")
    builder = GraphBuilder()
    regions = build_suite()
    graphs = [builder.build_module(region.module) for region in regions]
    burst = [graphs[i % len(graphs)] for i in range(BURST)]
    return root, refs[0].name, burst


def test_cost_model_calibration(benchmark, serving_setup, tmp_path_factory):
    root, artifact, burst = serving_setup
    journal_dir = os.fspath(tmp_path_factory.mktemp("cost-model-bench") / "journal")

    hub = ModelHub(root, enable_cache=False, journal_dir=journal_dir)
    hub.load(
        DeploymentSpec(
            name="m",
            artifact=artifact,
            max_batch_size=8,
            max_wait_s=0.001,
            enable_cache=False,
        )
    )
    # Mixed batch sizes give the least-squares fit its signal: each
    # predict_many call seals batches of a different size (1..8 graphs).
    with hub:  # stop() drains the journal writer before returning
        for size in range(1, 9):
            for _ in range(ROUNDS):
                hub.predict_many("m", burst[:size])

    reader = JournalReader(journal_dir)
    rows = reader.calibration_rows(model="m")
    model = benchmark.pedantic(
        lambda: CostModelCalibrator(min_batches=8).fit(reader, model="m"),
        rounds=3,
        iterations=1,
    )

    mape = float(model.meta["mape"])
    # Sanity beyond the in-sample error: the model's predicted burst
    # latency must land within the same order as a measured batch.
    predicted_s = model.predict_batch_latency(
        model.reference_shape, folds=1
    )
    benchmark.extra_info["cost_model_mape"] = round(mape, 4)
    benchmark.extra_info["calibration_batches"] = int(model.meta["batches"])
    benchmark.extra_info["predicted_request_ms"] = round(predicted_s * 1e3, 3)
    print(
        f"\ncost model calibrated over {model.meta['batches']} journalled "
        f"batches ({len(rows)} rows): MAPE {mape:.3f}, predicted "
        f"per-request latency {predicted_s * 1e3:.2f} ms"
    )

    assert int(model.meta["batches"]) >= 8 * ROUNDS
    assert predicted_s > 0
    # The ISSUE acceptance guard (CI re-asserts this from the record).
    assert mape <= 0.35


def test_shed_overhead(benchmark, serving_setup):
    root, artifact, burst = serving_setup
    knobs = dict(max_batch_size=BURST, max_wait_s=0.001, enable_cache=False)

    bare = ModelHub(root, enable_cache=False)
    bare.load(DeploymentSpec(name="m", artifact=artifact, **knobs))
    guarded = ModelHub(root, enable_cache=False)
    # An admission budget wide enough that nothing is ever shed: the
    # measurement isolates the bookkeeping cost, not queueing effects.
    guarded.load(
        DeploymentSpec(
            name="m",
            artifact=artifact,
            slo=SLOConfig(max_concurrency=10 * BURST, shed_policy="shed"),
            **knobs,
        )
    )

    def guarded_burst():
        return [r.label for r in guarded.predict_many("m", burst)]

    # Interleave the timed rounds so scheduler noise lands on both sides
    # alike (same discipline as the journal-overhead benchmark).
    expected = [r.label for r in bare.predict_many("m", burst)]
    labels = guarded_burst()
    bare_elapsed = guarded_elapsed = float("inf")
    for _ in range(ROUNDS):
        round_start = time.perf_counter()
        bare.predict_many("m", burst)
        bare_elapsed = min(bare_elapsed, time.perf_counter() - round_start)
        round_start = time.perf_counter()
        guarded_burst()
        guarded_elapsed = min(guarded_elapsed, time.perf_counter() - round_start)
    bare_qps = len(burst) / bare_elapsed
    guarded_qps = len(burst) / guarded_elapsed
    bare.stop()

    benchmark.pedantic(guarded_burst, rounds=ROUNDS, iterations=1)
    admission = guarded.resolve("m").predictor.snapshot()["admission"]
    guarded.stop()

    overhead = bare_qps / guarded_qps
    benchmark.extra_info["bare_qps"] = round(bare_qps, 1)
    benchmark.extra_info["guarded_qps"] = round(guarded_qps, 1)
    benchmark.extra_info["shed_overhead"] = round(overhead, 3)
    print(
        f"\nadmission-guarded serving ({BURST}-request burst): bare "
        f"{bare_qps:.0f} QPS, guarded {guarded_qps:.0f} QPS "
        f"(overhead {overhead:.3f}x, {admission['admitted']} admitted)"
    )

    # The guard must not change an answer, must have actually metered the
    # traffic, and must never have shed in this never-overloaded setup.
    assert labels == expected
    assert admission["admitted"] > 0
    assert admission["shed"] == 0
    # The ISSUE acceptance guard (CI re-asserts this from the record).
    assert overhead <= 1.05
