"""Ensemble serving cost and cache warm-start benefit.

Exports every trained fold of the shared benchmark pipeline into a
registry, then measures (a) single-fold vs multi-fold-ensemble QPS over a
64-request burst — the price of combining every fold's probabilities
behind one endpoint, which the fold-stacked inference engine
(:mod:`repro.engine`) holds well below linear in the member count (one
execution plan per micro-batch, one stacked sweep for all folds; guarded
by an in-test threshold) — and (b) cold-start vs warm-start latency,
where the warm service loads a dumped fingerprint → logits table at
construction and answers its whole first burst from cache.

Timing gates are deliberately loose (best-of-N on both sides) so scheduler
noise cannot fail the suite; the interesting numbers land in
``benchmark.extra_info``.
"""

import os
import time

import numpy as np
import pytest

from repro.serving import (
    EnsembleConfig,
    EnsemblePredictionService,
    PredictionService,
    ServiceConfig,
)

BURST = 64
ROUNDS = 3


@pytest.fixture(scope="module")
def ensemble_setup(pipeline, skylake_evaluation, tmp_path_factory):
    root = os.fspath(tmp_path_factory.mktemp("ensemble-bench-registry"))
    refs = pipeline.export_artifacts(skylake_evaluation, root, name="skylake-bench")
    fold = skylake_evaluation.folds[0]
    samples = pipeline.region_samples(pipeline.region_names(), fold.explored_sequence)
    graphs = [sample.graph for sample in samples]
    burst = [graphs[i % len(graphs)] for i in range(BURST)]
    return root, refs, burst


def _best_of(fn, rounds=ROUNDS):
    """(fastest elapsed seconds, last result) over ``rounds`` runs."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_single_fold_vs_ensemble_throughput(benchmark, ensemble_setup):
    root, refs, burst = ensemble_setup

    # Construction (registry load + checksum verification + fold stacking)
    # happens outside the timed region — same methodology as the cold/warm
    # benchmark below — so the cost ratio measures serving alone: with the
    # cache disabled, every timed call pays the full planned forward.
    single_service = PredictionService.from_registry(
        root, refs[0].name, config=ServiceConfig(max_batch_size=BURST, enable_cache=False)
    )
    ensemble_service = EnsemblePredictionService.from_registry(
        root,
        "skylake-bench",
        config=EnsembleConfig(max_batch_size=BURST, enable_cache=False),
    )

    single_elapsed, single_results = _best_of(lambda: single_service.predict_many(burst))
    ensemble_results = benchmark.pedantic(
        ensemble_service.predict_many, args=(burst,), rounds=ROUNDS, iterations=1
    )
    ensemble_elapsed = min(
        benchmark.stats.stats.min,
        _best_of(lambda: ensemble_service.predict_many(burst))[0],
    )

    num_members = len(refs)
    single_qps = len(burst) / single_elapsed
    ensemble_qps = len(burst) / ensemble_elapsed
    cost_ratio = single_qps / ensemble_qps
    benchmark.extra_info["num_members"] = num_members
    benchmark.extra_info["single_fold_qps"] = round(single_qps, 1)
    benchmark.extra_info["ensemble_qps"] = round(ensemble_qps, 1)
    benchmark.extra_info["ensemble_cost_ratio"] = round(cost_ratio, 2)
    print(
        f"\nensemble serving ({BURST}-request burst, {num_members} folds): "
        f"single fold {single_qps:.0f} QPS, ensemble {ensemble_qps:.0f} QPS "
        f"({cost_ratio:.1f}x cost for {num_members}x the models)"
    )

    # Deterministic combination: a second ensemble pass answers identically.
    replay = EnsemblePredictionService.from_registry(
        root, "skylake-bench", config=EnsembleConfig(max_batch_size=BURST, enable_cache=False)
    ).predict_many(burst)
    assert [r.label for r in replay] == [r.label for r in ensemble_results]
    assert all(len(r.per_fold_labels) == num_members for r in ensemble_results)
    assert all(0.0 <= r.agreement <= 1.0 for r in ensemble_results)
    assert len(single_results) == len(ensemble_results) == BURST

    # The engine ran the fold-stacked path: one plan per chunk, fanned to
    # every member in a single sweep.
    engine = ensemble_service.snapshot()["engine"]
    assert ensemble_service.describe()["fold_stacked"] is True
    assert engine["stacked_forwards"] > 0
    assert engine["mean_fold_fanout"] == float(num_members)

    # Perf guard (generous): serving an F-fold ensemble must stay well
    # below linear-in-folds (the pre-engine cost was ~1.0*F + combination
    # overhead, ~5.1x at 5 folds).  Clean runs measure ~2.9x at 5 folds,
    # but on a busy single-core box the same code has measured up to ~4.1x
    # — the guard sits above that noise band (4.75 at 5 folds, 2.2 at the
    # CI smoke's 2 folds) so it only fires when the stacked win is really
    # gone, not on scheduler jitter.
    threshold = 0.85 * num_members + 0.5
    assert cost_ratio <= threshold, (
        f"ensemble cost ratio {cost_ratio:.2f} regressed above {threshold:.2f} "
        f"for {num_members} folds — the fold-stacked engine win is gone"
    )


def test_cold_vs_warm_start(benchmark, ensemble_setup, tmp_path_factory):
    root, refs, burst = ensemble_setup
    warm_path = os.fspath(tmp_path_factory.mktemp("ensemble-bench-warm") / "warmup.npz")

    def fresh(warmup_path=None):
        return EnsemblePredictionService.from_registry(
            root,
            "skylake-bench",
            config=EnsembleConfig(max_batch_size=BURST, warmup_path=warmup_path),
        )

    # Cold start: a fresh service pays one forward sweep per fold per
    # chunk.  Construction (registry load + checksum verification) happens
    # outside the timed region so cold and warm both time predict_many
    # alone — the speedup measures only the cache, not artefact loading.
    cold_elapsed = float("inf")
    cold_results = None
    for _ in range(ROUNDS):
        cold_service = fresh()
        start = time.perf_counter()
        cold_results = cold_service.predict_many(burst)
        cold_elapsed = min(cold_elapsed, time.perf_counter() - start)

    primed = fresh()
    primed.predict_many(burst)
    dumped = primed.dump_cache(warm_path)

    warm_service = fresh(warmup_path=warm_path)
    warm_results = benchmark.pedantic(
        warm_service.predict_many, args=(burst,), rounds=ROUNDS, iterations=1
    )
    warm_elapsed = benchmark.stats.stats.min

    speedup = cold_elapsed / warm_elapsed
    benchmark.extra_info["cold_qps"] = round(len(burst) / cold_elapsed, 1)
    benchmark.extra_info["warm_qps"] = round(len(burst) / warm_elapsed, 1)
    benchmark.extra_info["warm_start_speedup"] = round(speedup, 2)
    benchmark.extra_info["warm_entries"] = dumped
    print(
        f"\nwarm start ({BURST}-request burst, {len(refs)} folds): "
        f"cold {cold_elapsed * 1e3:.1f} ms, warm {warm_elapsed * 1e3:.1f} ms "
        f"({speedup:.1f}x), {dumped} entries persisted"
    )

    # The restarted server answers its entire first burst from cache, with
    # bit-identical combined probabilities.
    assert all(result.cache_hit for result in warm_results)
    assert [r.label for r in warm_results] == [r.label for r in cold_results]
    for cold, warm in zip(cold_results, warm_results):
        assert np.array_equal(cold.probabilities, warm.probabilities)
    assert speedup >= 2.0
