"""Figure 10 — speedup losses when reusing size-2 configurations on size-1."""

from repro.core import format_table
from repro.experiments import fig10_input_size_losses


def test_fig10_input_size_losses(benchmark, pipeline):
    rows = benchmark.pedantic(
        fig10_input_size_losses, args=(pipeline.regions,), kwargs={"max_regions": 20}, rounds=1, iterations=1
    )
    print("\nFigure 10 (Skylake Gold): speedup losses with size-1 inputs")
    print(format_table(rows))
    losses = [row["loss"] for row in rows]
    # Paper shape: average loss is small (~0.05x) but region dependent.
    average_loss = sum(losses) / len(losses)
    assert 0.0 <= average_loss < 0.5
    assert max(losses) >= average_loss
