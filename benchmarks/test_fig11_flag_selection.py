"""Figure 11 — flag-sequence selection strategies."""

from repro.experiments import fig11_flag_selection_strategies


def test_fig11_flag_selection(benchmark, pipeline, skylake_evaluation, sandy_bridge_evaluation):
    def run():
        return {
            "skylake": fig11_flag_selection_strategies(pipeline, skylake_evaluation),
            "sandy-bridge": fig11_flag_selection_strategies(pipeline, sandy_bridge_evaluation),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nFigure 11: average speedup per flag-selection strategy")
    for machine, strategies in results.items():
        print(f"  {machine}: " + ", ".join(f"{k}={v:.3f}x" for k, v in strategies.items()))
        # Paper shape: oracle >= predicted/overall >= explored (within tolerance).
        assert strategies["oracle_flag_seq"] + 1e-9 >= strategies["explored_flag_seq"]
        assert strategies["oracle_flag_seq"] + 1e-9 >= strategies["predicted_flag_seq"] - 0.05
