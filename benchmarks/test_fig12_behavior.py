"""Figure 12 — execution time per call of the most mispredicted regions."""

from repro.experiments import fig12_per_call_behaviour


def test_fig12_per_call_behaviour(benchmark, skylake_evaluation):
    series = benchmark.pedantic(
        fig12_per_call_behaviour, args=(skylake_evaluation,), kwargs={"num_regions": 4}, rounds=1, iterations=1
    )
    print("\nFigure 12 (Skylake): execution time per call (ms)")
    for region, values in series.items():
        head = ", ".join(f"{v:.3f}" for v in values[:8])
        print(f"  {region:28s} [{head}{', ...' if len(values) > 8 else ''}]")
    # Mispredicted regions show per-call variation; the stable reference varies less.
    import numpy as np
    variations = {
        name: (np.std(vals) / np.mean(vals) if len(vals) > 1 and np.mean(vals) > 0 else 0.0)
        for name, vals in series.items()
    }
    reference = [v for name, v in variations.items() if "reference" in name]
    others = [v for name, v in variations.items() if "reference" not in name]
    assert others, "expected at least one mispredicted region series"
    if reference:
        assert max(others) >= reference[0] - 1e-9
