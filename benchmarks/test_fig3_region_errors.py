"""Figure 3 — per-region prediction errors of the static vs dynamic models."""

from repro.core import format_table
from repro.experiments import fig3_region_errors


def test_fig3_region_errors_skylake(benchmark, skylake_evaluation):
    rows = benchmark.pedantic(fig3_region_errors, args=(skylake_evaluation,), rounds=1, iterations=1)
    assert len(rows) == len(skylake_evaluation.summary.outcomes)
    print("\nFigure 3 (Skylake): per-region error, static vs dynamic (worst 15)")
    print(format_table(rows[:15]))


def test_fig3_region_errors_sandy_bridge(benchmark, sandy_bridge_evaluation):
    rows = benchmark.pedantic(fig3_region_errors, args=(sandy_bridge_evaluation,), rounds=1, iterations=1)
    half_perfect = sum(1 for r in rows if r["static_error"] < 0.05) / len(rows)
    print("\nFigure 3 (Sandy Bridge): fraction of regions statically optimized (<5% error):", round(half_perfect, 2))
    print(format_table(rows[:15]))
    # Paper shape: a substantial fraction of regions is perfectly optimized statically.
    assert half_perfect > 0.3
