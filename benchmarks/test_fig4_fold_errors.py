"""Figure 4 — average prediction error per cross-validation fold."""

from repro.experiments import fig4_fold_errors


def test_fig4_fold_errors(benchmark, skylake_evaluation, sandy_bridge_evaluation):
    def run():
        return {
            "skylake": fig4_fold_errors(skylake_evaluation),
            "sandy-bridge": fig4_fold_errors(sandy_bridge_evaluation),
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    for machine, data in series.items():
        print(f"\nFigure 4 ({machine}): per-fold mean error")
        for model, folds in data.items():
            print(f"  {model:8s}", {k: round(v, 3) for k, v in folds.items()})
        # errors spread across folds rather than concentrating in one
        static = list(data["static"].values())
        assert max(static) <= 1.0 and min(static) >= 0.0
