"""Figure 5 — average speedup achieved per flag sequence."""

from repro.experiments import fig5_flag_sequence_speedups


def test_fig5_flag_sequence_speedups(benchmark, pipeline, skylake_evaluation):
    speedups = benchmark.pedantic(
        fig5_flag_sequence_speedups, args=(pipeline, skylake_evaluation), rounds=1, iterations=1
    )
    explored = speedups.pop("__explored__")
    print("\nFigure 5 (Skylake): speedup per flag sequence")
    for name, value in sorted(speedups.items(), key=lambda kv: kv[1], reverse=True):
        print(f"  {name:12s} {value:.3f}x")
    print(f"  explored flag seq -> {explored:.3f}x")
    best = max(speedups.values())
    worst = min(speedups.values())
    # Paper shape: the choice of flag sequence matters (spread between best and worst).
    assert best >= worst
    assert explored >= worst
