"""Figure 6 — performance gains and error rate versus the number of labels."""

from repro.core import format_table
from repro.experiments import fig6_label_count_study


def test_fig6_label_count_study(benchmark, pipeline):
    rows = benchmark.pedantic(
        fig6_label_count_study, args=(pipeline, "skylake"), kwargs={"label_counts": (2, 6, 13)},
        rounds=1, iterations=1,
    )
    print("\nFigure 6 (Skylake): gains and error vs number of labels")
    print(format_table([{k: round(v, 3) for k, v in row.items()} for row in rows]))
    by_labels = {int(r["labels"]): r for r in rows}
    # Paper shape: fewer labels -> lower potential gains (full exploration column).
    assert by_labels[2]["full_exploration"] <= by_labels[13]["full_exploration"] + 1e-9
    # Paper shape: fewer labels -> easier prediction problem (higher accuracy).
    assert by_labels[2]["accuracy"] >= by_labels[13]["accuracy"] - 0.05
