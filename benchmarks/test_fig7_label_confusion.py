"""Figure 7 — per-label oracle/predicted/correct counts (6 labels, Skylake)."""

from repro.experiments import fig7_label_counts


def test_fig7_label_counts(benchmark, pipeline):
    evaluation = pipeline.evaluate("skylake", num_labels=6)
    counts = benchmark.pedantic(fig7_label_counts, args=(evaluation,), rounds=1, iterations=1)
    print("\nFigure 7 (Skylake, 6 labels): predictions per label")
    print("  label    oracle predicted correct")
    for label in range(len(counts["oracle"])):
        print(
            f"  {label:5d}    {counts['oracle'][label]:6d} {counts['predicted'][label]:9d} "
            f"{counts['correct'][label]:7d}"
        )
    assert sum(counts["correct"]) <= sum(counts["oracle"])
    # Paper shape: predictions concentrate on the labels that actually occur often.
    import numpy as np
    oracle = np.asarray(counts["oracle"])
    predicted = np.asarray(counts["predicted"])
    assert predicted[oracle.argmax()] > 0
