"""Figure 8 — cross-architecture prediction (native vs cross, static vs dynamic)."""

from repro.experiments import fig8_cross_architecture


def test_fig8_cross_architecture(benchmark, pipeline, skylake_evaluation, sandy_bridge_evaluation):
    def run():
        return {
            "target=skylake": fig8_cross_architecture(pipeline, sandy_bridge_evaluation, skylake_evaluation),
            "target=sandy-bridge": fig8_cross_architecture(pipeline, skylake_evaluation, sandy_bridge_evaluation),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nFigure 8: cross-architecture speedups")
    for target, values in results.items():
        print(f"  {target}: " + ", ".join(f"{k}={v:.3f}x" for k, v in values.items()))
        # Paper shape: cross prediction keeps clear gains over the default (>1x).
        assert values["cross_static"] > 1.0
        assert values["cross_dynamic"] > 1.0
