"""Figure 9 — hybrid model vs dynamic model vs full exploration, per region."""

from repro.core import format_table
from repro.experiments import fig9_hybrid_per_region, headline_claims


def test_fig9_hybrid(benchmark, skylake_evaluation):
    rows = benchmark.pedantic(fig9_hybrid_per_region, args=(skylake_evaluation,), rounds=1, iterations=1)
    claims = headline_claims(skylake_evaluation)
    print("\nFigure 9 (Skylake): hybrid vs dynamic vs full exploration (top 15 regions)")
    print(format_table(rows[:15]))
    print("  profiled fraction:", round(claims["profiled_fraction"], 2))
    print("  hybrid speedup:", round(claims["hybrid_speedup"], 3),
          " dynamic speedup:", round(claims["dynamic_speedup"], 3))
    # Paper shape: the hybrid model profiles only a minority of regions...
    assert claims["profiled_fraction"] < 0.6
    # ...while keeping most of the dynamic model's gains.
    assert claims["hybrid_speedup"] >= claims["static_speedup"] - 0.05
