"""Headline claims: static ~80% of dynamic gains; hybrid ~ dynamic at ~30% profiling cost."""

from repro.experiments import headline_claims


def test_headline_claims(benchmark, skylake_evaluation):
    claims = benchmark.pedantic(headline_claims, args=(skylake_evaluation,), rounds=1, iterations=1)
    print("\nHeadline claims (Skylake):")
    for key, value in claims.items():
        print(f"  {key:36s} {value:.3f}")
    # Shape checks (not absolute numbers): the static model captures a clear
    # majority of the gains the dynamic model achieves, and the hybrid model
    # is at least as good as the static one while profiling a minority of regions.
    assert claims["dynamic_speedup"] > 1.0
    assert claims["static_fraction_of_dynamic_gains"] > 0.4
    assert claims["hybrid_speedup"] >= claims["static_speedup"] - 0.05
    assert claims["profiled_fraction"] <= 0.6
