"""HTTP wire-protocol overhead: in-process vs over-the-socket QPS.

Puts a trained fold predictor behind :class:`PredictionHTTPServer` and
replays a burst of real region graphs three ways: in-process
``predict_many``, one HTTP request per graph (persistent connection,
riding the micro-batcher), and one HTTP batch body.  The QPS numbers and
the wire-overhead ratio land in the benchmark JSON via
``benchmark.extra_info`` and in ``BENCH_serving.json`` via the recording
hook in ``conftest.py``.
"""

import http.client
import json
import time

import pytest

from repro.graphs import GraphBuilder
from repro.serving import (
    PredictionHTTPServer,
    PredictionService,
    ServiceConfig,
    program_graph_to_dict,
)
from repro.workloads import build_suite

BURST = 32
ROUNDS = 3


@pytest.fixture(scope="module")
def http_setup(pipeline, skylake_evaluation):
    predictor = skylake_evaluation.folds[0].predictor
    builder = GraphBuilder()
    regions = build_suite()
    graphs = [builder.build_module(region.module) for region in regions]
    burst = [graphs[i % len(graphs)] for i in range(BURST)]
    wire_burst = [program_graph_to_dict(graph) for graph in burst]
    return predictor, burst, wire_burst


def _service(predictor, **overrides):
    defaults = dict(max_batch_size=BURST, enable_cache=False, max_wait_s=0.001)
    defaults.update(overrides)
    return PredictionService(
        model=predictor.model, encoder=predictor.encoder, config=ServiceConfig(**defaults)
    )


def _post(connection, path, payload):
    body = json.dumps(payload).encode("utf-8")
    connection.request(
        "POST", path, body=body, headers={"Content-Type": "application/json"}
    )
    response = connection.getresponse()
    assert response.status == 200, response.read()[:500]
    return json.loads(response.read())


def test_http_vs_in_process_throughput(benchmark, http_setup):
    predictor, burst, wire_burst = http_setup

    in_process = _service(predictor)
    in_process_elapsed = float("inf")
    expected = None
    for _ in range(ROUNDS):
        round_start = time.perf_counter()
        expected = [r.label for r in in_process.predict_many(burst)]
        in_process_elapsed = min(in_process_elapsed, time.perf_counter() - round_start)
    in_process_qps = len(burst) / in_process_elapsed

    service = _service(predictor)
    with PredictionHTTPServer(service) as server:
        connection = http.client.HTTPConnection(server.host, server.port, timeout=60)
        try:

            def http_singles():
                return [
                    _post(connection, "/v1/predict", {"graph": wire})["result"]["label"]
                    for wire in wire_burst
                ]

            http_labels = benchmark.pedantic(http_singles, rounds=ROUNDS, iterations=1)
            singles_elapsed = benchmark.stats.stats.min
            http_qps = len(burst) / singles_elapsed

            batch_elapsed = float("inf")
            batch_labels = None
            for _ in range(ROUNDS):
                round_start = time.perf_counter()
                response = _post(connection, "/v1/predict", {"graphs": wire_burst})
                batch_elapsed = min(batch_elapsed, time.perf_counter() - round_start)
                batch_labels = [r["label"] for r in response["results"]]
            http_batch_qps = len(burst) / batch_elapsed
        finally:
            connection.close()

    overhead = in_process_qps / http_batch_qps
    benchmark.extra_info["in_process_qps"] = round(in_process_qps, 1)
    benchmark.extra_info["http_qps"] = round(http_qps, 1)
    benchmark.extra_info["http_batch_qps"] = round(http_batch_qps, 1)
    benchmark.extra_info["http_wire_overhead"] = round(overhead, 2)
    print(
        f"\nHTTP serving ({BURST}-request burst): in-process {in_process_qps:.0f} QPS, "
        f"HTTP single {http_qps:.0f} QPS, HTTP batch {http_batch_qps:.0f} QPS "
        f"(wire overhead {overhead:.2f}x on the batch path)"
    )

    # The wire protocol must not change a single answer.
    assert http_labels == expected
    assert batch_labels == expected
    # Sanity floor: batching over HTTP must stay within 10x of in-process.
    assert overhead < 10.0
