"""Hub routing overhead: direct service vs hub-routed multi-model serving.

The hub's promise is that named-model routing is one locked dict lookup —
deploying many models behind one API must not tax the hot path.  This
benchmark exports a trained fold into a registry, serves it twice (a bare
:class:`PredictionService`, and the same artifact as one of two
deployments inside a :class:`ModelHub`), replays the same burst through
both, and records the QPS ratio.  The headline numbers land in
``BENCH_serving.json`` via the recording hook in ``conftest.py``.
"""

import os
import time

import pytest

from repro.graphs import GraphBuilder
from repro.serving import DeploymentSpec, ModelHub, PredictionService, ServiceConfig
from repro.workloads import build_suite

BURST = 32
ROUNDS = 3


@pytest.fixture(scope="module")
def hub_setup(tmp_path_factory, pipeline, skylake_evaluation):
    root = os.fspath(tmp_path_factory.mktemp("hub-bench-registry"))
    refs = pipeline.export_artifacts(skylake_evaluation, root, name="bench")
    builder = GraphBuilder()
    regions = build_suite()
    graphs = [builder.build_module(region.module) for region in regions]
    burst = [graphs[i % len(graphs)] for i in range(BURST)]
    return root, refs[0].name, burst


def test_hub_routing_overhead(benchmark, hub_setup):
    root, artifact, burst = hub_setup
    knobs = dict(max_batch_size=BURST, max_wait_s=0.001, enable_cache=False)

    direct = PredictionService.from_registry(root, artifact, config=ServiceConfig(**knobs))
    direct_elapsed = float("inf")
    expected = None
    for _ in range(ROUNDS):
        round_start = time.perf_counter()
        expected = [r.label for r in direct.predict_many(burst)]
        direct_elapsed = min(direct_elapsed, time.perf_counter() - round_start)
    direct_qps = len(burst) / direct_elapsed

    # The same artifact inside a hub, with a second deployment and an alias
    # loaded next to it so routing is exercised against a populated table.
    hub = ModelHub(root, enable_cache=False)
    hub.load(DeploymentSpec(name="primary", artifact=artifact, **knobs))
    hub.load(DeploymentSpec(name="shadow", fold_group="bench", **knobs))
    hub.alias("prod", "primary")

    def hub_burst():
        return [r.label for r in hub.predict_many("prod", burst)]

    hub_labels = benchmark.pedantic(hub_burst, rounds=ROUNDS, iterations=1)
    hub_elapsed = benchmark.stats.stats.min
    hub_qps = len(burst) / hub_elapsed
    hub.stop()

    overhead = direct_qps / hub_qps
    benchmark.extra_info["direct_qps"] = round(direct_qps, 1)
    benchmark.extra_info["hub_qps"] = round(hub_qps, 1)
    benchmark.extra_info["hub_routing_overhead"] = round(overhead, 3)
    print(
        f"\nhub serving ({BURST}-request burst): direct {direct_qps:.0f} QPS, "
        f"hub-routed (via alias, 2 models loaded) {hub_qps:.0f} QPS "
        f"(routing overhead {overhead:.3f}x)"
    )

    # Routing must not change a single answer...
    assert hub_labels == expected
    # ...and must stay within noise of the direct service (generous guard:
    # the lookup is a dict access; 1.5x would mean something is very wrong).
    assert overhead < 1.5
