"""Prediction-journal overhead: journalled vs bare hub serving.

The journal's promise is that recording every served prediction costs the
hot path almost nothing — ``record()`` is one lock and a deque append;
JSON serialization and the disk write happen on a background thread.
This benchmark serves the identical burst through two hubs built from the
same exported artifact — one with ``journal_dir`` set, one without — and
records the QPS ratio.  The ISSUE acceptance bound is 1.15x; the numbers
land in ``BENCH_serving.json`` via the recording hook in ``conftest.py``.
"""

import os
import time

import pytest

from repro.graphs import GraphBuilder
from repro.serving import DeploymentSpec, JournalReader, ModelHub
from repro.workloads import build_suite

BURST = 32
ROUNDS = 5


@pytest.fixture(scope="module")
def journal_setup(tmp_path_factory, pipeline, skylake_evaluation):
    root = os.fspath(tmp_path_factory.mktemp("journal-bench-registry"))
    refs = pipeline.export_artifacts(skylake_evaluation, root, name="bench")
    builder = GraphBuilder()
    regions = build_suite()
    graphs = [builder.build_module(region.module) for region in regions]
    burst = [graphs[i % len(graphs)] for i in range(BURST)]
    return root, refs[0].name, burst


def test_journal_write_overhead(benchmark, journal_setup, tmp_path_factory):
    root, artifact, burst = journal_setup
    knobs = dict(max_batch_size=BURST, max_wait_s=0.001, enable_cache=False)
    journal_dir = os.fspath(tmp_path_factory.mktemp("journal-bench") / "journal")

    bare = ModelHub(root, enable_cache=False)
    bare.load(DeploymentSpec(name="m", artifact=artifact, **knobs))
    journalled = ModelHub(root, enable_cache=False, journal_dir=journal_dir)
    journalled.load(DeploymentSpec(name="m", artifact=artifact, **knobs))

    def journalled_burst():
        return [r.label for r in journalled.predict_many("m", burst)]

    # Warm both hubs untimed, then interleave the timed rounds bare /
    # journalled so scheduler noise lands on both sides alike — a
    # two-phase measurement makes the ratio guard flaky under suite load.
    expected = [r.label for r in bare.predict_many("m", burst)]
    labels = journalled_burst()
    bare_elapsed = journalled_elapsed = float("inf")
    for _ in range(ROUNDS):
        round_start = time.perf_counter()
        bare.predict_many("m", burst)
        bare_elapsed = min(bare_elapsed, time.perf_counter() - round_start)
        round_start = time.perf_counter()
        journalled_burst()
        journalled_elapsed = min(
            journalled_elapsed, time.perf_counter() - round_start
        )
    bare_qps = len(burst) / bare_elapsed
    journalled_qps = len(burst) / journalled_elapsed
    bare.stop()

    # The pedantic rounds feed pytest-benchmark's table; the guard above
    # uses the paired timings.
    benchmark.pedantic(journalled_burst, rounds=ROUNDS, iterations=1)
    journal_stats = journalled.journal.stats()
    journalled.stop()

    overhead = bare_qps / journalled_qps
    benchmark.extra_info["bare_qps"] = round(bare_qps, 1)
    benchmark.extra_info["journalled_qps"] = round(journalled_qps, 1)
    benchmark.extra_info["journal_overhead"] = round(overhead, 3)
    print(
        f"\njournalled serving ({BURST}-request burst): bare {bare_qps:.0f} QPS, "
        f"journalled {journalled_qps:.0f} QPS (overhead {overhead:.3f}x, "
        f"{journal_stats['written']} records written async)"
    )

    # Journalling must not change a single answer...
    assert labels == expected
    # ...must actually have recorded the traffic (benchmark rounds + the
    # pedantic warm-up all hit the journalled hub, durably on disk)...
    assert journal_stats["dropped"] == 0
    records = JournalReader(journal_dir).records()
    assert len(records) >= ROUNDS * BURST
    assert all(record["model"] == "m" for record in records)
    # ...and the hot-path cost must stay inside the ISSUE acceptance bound.
    assert overhead <= 1.15
