"""Cross-replica scale-out: QPS of a two-replica pool vs a single replica.

The GIL caps an in-process hub at roughly one core of model compute no
matter how many batcher workers it runs; the replica pool exists to buy
real parallelism with processes.  This benchmark replays the same burst of
distinct region graphs through a one-replica and a two-replica pool (same
supervisor, same pipe protocol, cache off so every request pays the
forward pass) and records the scaling ratio.

The ratio guard is conditional on the machine: on a single-core runner
two processes just time-slice, so the >= 1.3x assertion only applies when
at least two cores exist (CI runners have them; the recorded ``cores``
lets the trajectory be read honestly either way).
"""

import os
import threading
import time

import pytest

from repro.core import StaticConfigurationPredictor, StaticModelConfig
from repro.graphs import GraphBuilder, GraphEncoder
from repro.serving import ArtifactRegistry, DeploymentSpec, deployment_spec_to_dict
from repro.serving.replica import ReplicaConfig, ReplicaSupervisor
from repro.workloads import build_suite

BURST = 64
ROUNDS = 3
#: concurrent client threads replaying the burst (a busy front-end).
CLIENTS = 8
#: minimum acceptable QPS ratio at 2 replicas, where >= 2 cores exist.
MIN_SCALING = 1.3


@pytest.fixture(scope="module")
def scaling_setup(tmp_path_factory):
    root = tmp_path_factory.mktemp("replica-bench-registry")
    # Heavier than the unit-test predictor: the forward pass must dominate
    # the pipe round-trip for process parallelism to be measurable.
    predictor = StaticConfigurationPredictor(
        num_labels=8,
        encoder=GraphEncoder(),
        config=StaticModelConfig(
            hidden_dim=32, graph_vector_dim=32, num_rgcn_layers=2, epochs=1, seed=7
        ),
    )
    ArtifactRegistry(root).save("demo", predictor)
    builder = GraphBuilder()
    suite = build_suite(families=["clomp", "lulesh", "rodinia"], limit=BURST)
    graphs = [builder.build_module(region.module) for region in suite]
    burst = [graphs[i % len(graphs)] for i in range(BURST)]
    return str(root), burst


def _pool(registry_root, replicas):
    spec = deployment_spec_to_dict(DeploymentSpec(name="demo", artifact="demo"))
    return ReplicaSupervisor(
        ReplicaConfig(
            registry_root=registry_root,
            replicas=replicas,
            specs=(spec,),
            enable_cache=False,
        )
    )


def _threaded_burst(pool, burst, threads=CLIENTS):
    """Replay ``burst`` from concurrent clients, round-robin; like a busy
    front-end, each request is an independent single predict, so request
    N+1 serialises in the supervisor while N computes in a worker."""

    def client(offset):
        for i in range(offset, len(burst), threads):
            pool.predict("demo", burst[i])

    pack = [
        threading.Thread(target=client, args=(offset,))
        for offset in range(threads)
    ]
    start = time.perf_counter()
    for thread in pack:
        thread.start()
    for thread in pack:
        thread.join()
    return time.perf_counter() - start


def _best_burst_elapsed(pool, burst, rounds=ROUNDS):
    return min(_threaded_burst(pool, burst) for _ in range(rounds))


def test_replica_scaling(benchmark, scaling_setup):
    registry_root, burst = scaling_setup

    with _pool(registry_root, replicas=1) as pool:
        pool.predict_many("demo", burst)  # warm the worker
        single_elapsed = _best_burst_elapsed(pool, burst)

    with _pool(registry_root, replicas=2) as pool:
        pool.predict_many("demo", burst)
        benchmark.pedantic(
            lambda: _threaded_burst(pool, burst), rounds=ROUNDS, iterations=1
        )
        multi_elapsed = min(
            benchmark.stats.stats.min, _best_burst_elapsed(pool, burst)
        )

    cores = os.cpu_count() or 1
    single_qps = len(burst) / single_elapsed
    multi_qps = len(burst) / multi_elapsed
    scaling = multi_qps / single_qps
    benchmark.extra_info["single_replica_qps"] = round(single_qps, 1)
    benchmark.extra_info["multi_replica_qps"] = round(multi_qps, 1)
    benchmark.extra_info["replica_scaling"] = round(scaling, 2)
    benchmark.extra_info["replicas"] = 2
    benchmark.extra_info["cores"] = cores
    print(
        f"\nreplica scaling: 1 replica {single_qps:.1f} qps, "
        f"2 replicas {multi_qps:.1f} qps ({scaling:.2f}x on {cores} cores)"
    )
    # On one core two worker processes only time-slice; the scaling gate
    # is meaningful (and enforced) only where parallelism is possible.
    assert cores < 2 or scaling >= MIN_SCALING, (
        f"2-replica pool reached only {scaling:.2f}x of one replica "
        f"on {cores} cores (floor {MIN_SCALING}x)"
    )
