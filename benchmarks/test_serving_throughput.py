"""Serving throughput: single-request vs micro-batched QPS and cache speedup.

Uses a trained fold predictor from the shared benchmark pipeline and replays
a 64-request burst of real region graphs through the prediction service
three ways: one request at a time, micro-batched, and cache-hot.  QPS and
speedup ratios land in the benchmark JSON via ``benchmark.extra_info``.

Speedup assertions compare best-of-N timings for *both* paths, so a GC
pause or scheduler hiccup in one round cannot fail the gate.
"""

import time

import numpy as np
import pytest

from repro.serving import PredictionService, ServiceConfig

BURST = 64
ROUNDS = 3


@pytest.fixture(scope="module")
def serving_setup(pipeline, skylake_evaluation):
    fold = skylake_evaluation.folds[0]
    samples = pipeline.region_samples(
        pipeline.region_names(), fold.explored_sequence
    )
    graphs = [sample.graph for sample in samples]
    # A 64-request burst of distinct graphs (regions repeat round-robin only
    # if the suite is smaller than the burst).
    burst = [graphs[i % len(graphs)] for i in range(BURST)]
    return fold.predictor, burst


def _service(predictor, **overrides):
    defaults = dict(max_batch_size=BURST, cache_capacity=2 * BURST)
    defaults.update(overrides)
    return PredictionService(
        model=predictor.model,
        encoder=predictor.encoder,
        config=ServiceConfig(**defaults),
    )


def _best_of(fn, rounds=ROUNDS):
    """(fastest elapsed seconds, last result) over ``rounds`` runs."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_single_vs_micro_batched_throughput(benchmark, serving_setup):
    predictor, burst = serving_setup

    def one_at_a_time():
        service = _service(predictor, enable_cache=False)
        return [service.predict(graph) for graph in burst]

    def micro_batched():
        service = _service(predictor, enable_cache=False)
        return service.predict_many(burst)

    single_elapsed, single_results = _best_of(one_at_a_time)
    # Record the serving-relevant number under the benchmark fixture, but
    # assert on symmetric best-of-N timings.
    batched_results = benchmark.pedantic(micro_batched, rounds=ROUNDS, iterations=1)
    batched_elapsed = min(benchmark.stats.stats.min, _best_of(micro_batched)[0])

    single_qps = len(burst) / single_elapsed
    batched_qps = len(burst) / batched_elapsed
    speedup = batched_qps / single_qps
    benchmark.extra_info["single_qps"] = round(single_qps, 1)
    benchmark.extra_info["micro_batched_qps"] = round(batched_qps, 1)
    benchmark.extra_info["batching_speedup"] = round(speedup, 2)
    print(
        f"\nserving throughput ({BURST}-request burst): "
        f"single {single_qps:.0f} QPS, micro-batched {batched_qps:.0f} QPS "
        f"({speedup:.1f}x)"
    )

    # Identical answers, and batching must amortise to >= 2x throughput.
    assert [r.label for r in single_results] == [r.label for r in batched_results]
    assert speedup >= 2.0


def test_cache_hit_speedup(benchmark, serving_setup):
    predictor, burst = serving_setup
    service = _service(predictor)

    start = time.perf_counter()
    cold = service.predict_many(burst)
    cold_elapsed = time.perf_counter() - start

    hot = benchmark.pedantic(service.predict_many, args=(burst,), rounds=ROUNDS, iterations=1)
    hot_elapsed = benchmark.stats.stats.min

    speedup = cold_elapsed / hot_elapsed
    benchmark.extra_info["cold_qps"] = round(len(burst) / cold_elapsed, 1)
    benchmark.extra_info["hot_qps"] = round(len(burst) / hot_elapsed, 1)
    benchmark.extra_info["cache_hit_speedup"] = round(speedup, 2)
    print(
        f"\ncache speedup ({BURST}-request burst): cold {cold_elapsed * 1e3:.1f} ms, "
        f"hot {hot_elapsed * 1e3:.1f} ms ({speedup:.1f}x), "
        f"hit rate {service.stats.cache_hit_rate:.2f}"
    )

    assert all(result.cache_hit for result in hot)
    assert np.array_equal(
        np.array([r.label for r in cold]), np.array([r.label for r in hot])
    )
    assert speedup >= 2.0
