"""Explore how NUMA and prefetcher settings interact for different kinds of
OpenMP regions on the simulated Sandy Bridge machine — the motivation section
of the paper in one script.

Run with:  python examples/explore_numa_space.py
"""

from repro.numasim import (
    NumaPrefetchSimulator,
    WorkloadProfile,
    build_configuration_space,
    default_configuration,
    sandy_bridge,
)

PROFILES = {
    "bandwidth-bound stream": WorkloadProfile(
        "stream", iterations=5e6, flops_per_iter=2, bytes_per_iter=24, footprint_mb=512,
        working_set_kb=16_384, sequential_fraction=0.9, strided_fraction=0.05,
        irregular_fraction=0.0, shared_fraction=0.05,
    ),
    "irregular graph kernel": WorkloadProfile(
        "graph", iterations=2e6, flops_per_iter=2, bytes_per_iter=16, footprint_mb=512,
        working_set_kb=65_536, sequential_fraction=0.1, strided_fraction=0.05,
        irregular_fraction=0.8, dependency_chain=0.6, shared_fraction=0.6,
    ),
    "synchronisation heavy": WorkloadProfile(
        "sync", iterations=2e5, flops_per_iter=10, bytes_per_iter=8, footprint_mb=4,
        working_set_kb=64, sequential_fraction=0.2, strided_fraction=0.1,
        irregular_fraction=0.0, atomics_per_iter=0.3, barriers_per_call=20,
        shared_fraction=0.6,
    ),
    "compute dense": WorkloadProfile(
        "compute", iterations=1e6, flops_per_iter=60, bytes_per_iter=8, footprint_mb=8,
        working_set_kb=128, sequential_fraction=0.3, strided_fraction=0.1,
        irregular_fraction=0.0, dependency_chain=0.1,
    ),
}


def main() -> None:
    machine = sandy_bridge()
    simulator = NumaPrefetchSimulator(machine)
    space = build_configuration_space(machine)
    default = default_configuration(machine)
    print(f"machine: {machine.name}, configuration space: {len(space)} points\n")
    print(f"{'workload':26s} {'best configuration':42s} {'speedup':>8s}")
    for name, profile in PROFILES.items():
        results = simulator.simulate_space(profile, space)
        best = min(results, key=lambda cfg: results[cfg].time_seconds)
        speedup = results[default].time_seconds / results[best].time_seconds
        print(f"{name:26s} {best.describe():42s} {speedup:7.2f}x")
    print("\nDifferent regions want very different configurations — exactly the")
    print("search space the paper's GNN learns to navigate from static IR alone.")


if __name__ == "__main__":
    main()
