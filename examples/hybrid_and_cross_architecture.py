"""Run the full pipeline on a reduced configuration, then show the paper's two
advanced use cases: the hybrid static/dynamic model (Figure 9) and the
cross-architecture transfer of a trained model (Figure 8).

Run with:  python examples/hybrid_and_cross_architecture.py
"""

import os

from repro.core import HybridModelConfig, PipelineConfig, ReproPipeline, StaticModelConfig
from repro.experiments import fig8_cross_architecture, fig9_hybrid_per_region, headline_claims

#: REPRO_EXAMPLE_FAST=1 shrinks the training run (used by the CI smoke test).
FAST = os.environ.get("REPRO_EXAMPLE_FAST") == "1"


def main() -> None:
    config = PipelineConfig(
        machines=("skylake", "sandy-bridge"),
        region_limit=10 if FAST else 30,
        num_flag_sequences=2 if FAST else 4,
        num_labels=8,
        folds=2 if FAST else 4,
        static_model=StaticModelConfig(
            hidden_dim=32, graph_vector_dim=32, epochs=2 if FAST else 10
        ),
        hybrid=HybridModelConfig(use_ga_selection=False),
    )
    pipeline = ReproPipeline(config).build()

    skylake_eval = pipeline.evaluate("skylake")
    sandy_eval = pipeline.evaluate("sandy-bridge")

    print("=== Hybrid model (Skylake) ===")
    claims = headline_claims(skylake_eval)
    for key, value in claims.items():
        print(f"  {key:36s} {value:.3f}")
    print("\n  regions profiled by the hybrid model:")
    for row in fig9_hybrid_per_region(skylake_eval):
        if row["profiled"]:
            print(f"    {row['region']:28s} hybrid {row['hybrid_speedup']}x dynamic {row['dynamic_speedup']}x")

    print("\n=== Cross-architecture transfer ===")
    cross = fig8_cross_architecture(pipeline, sandy_eval, skylake_eval)
    print("  train on Sandy Bridge, apply to Skylake:")
    for key, value in cross.items():
        print(f"    {key:16s} {value:.3f}x")


if __name__ == "__main__":
    main()
