"""Observability walkthrough: prediction journal, request tracing,
drift alerts and offline A/B replay.

Trains a small pipeline, exports two versions of a fold artifact, then
serves both from one hub with a prediction journal attached.  The demo:

* serves traffic over HTTP with per-request traces opted in
  (``"trace": true`` on the predict body) and prints the span breakdown;
* reads per-stage latency percentiles from ``/metrics`` and the
  Prometheus text exposition from ``/metrics?format=prometheus``;
* injects a synthetic fold-agreement collapse and watches
  ``GET /v1/models/<name>/drift`` flip from ``ok`` to ``drift``;
* after shutdown, queries the journal offline (the ``repro-journal`` CLI
  reads the same directory) and replays the recorded traffic through
  both model versions, diffing their answers.

Run with:  python examples/observe_hub.py

Set ``REPRO_JOURNAL_DIR`` to keep the journal after the run (CI uploads
it as a build artifact); by default it is written to a temporary
directory.  The same journal can then be queried from the shell::

    repro-journal stats --dir "$REPRO_JOURNAL_DIR"
    repro-journal tail  --dir "$REPRO_JOURNAL_DIR" -n 5 --no-graphs
    repro-journal query --dir "$REPRO_JOURNAL_DIR" --cache-miss --count
"""

import json
import os
import tempfile
import urllib.request

from repro.core import HybridModelConfig, PipelineConfig, ReproPipeline, StaticModelConfig
from repro.graphs import GraphBuilder
from repro.serving import (
    DeploymentSpec,
    DriftConfig,
    JournalReader,
    ModelHub,
    PredictionHTTPServer,
    PredictionService,
    ServiceConfig,
    ArtifactRegistry,
    program_graph_to_dict,
    replay_ab,
)
from repro.workloads import build_suite

#: REPRO_EXAMPLE_FAST=1 shrinks the training run (used by the CI smoke test).
FAST = os.environ.get("REPRO_EXAMPLE_FAST") == "1"


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read())


def get_text(url: str) -> str:
    with urllib.request.urlopen(url) as response:
        return response.read().decode("utf-8")


def run(root: str, journal_dir: str) -> None:
    # 1. Train small and export the fold artifacts twice — v0001 and v0002
    #    stand in for a release and its retrained successor.
    config = PipelineConfig(
        machines=("skylake",),
        families=["clomp", "lulesh"],
        region_limit=6 if FAST else 12,
        num_flag_sequences=2 if FAST else 3,
        num_labels=6,
        folds=2 if FAST else 3,
        static_model=StaticModelConfig(
            hidden_dim=16,
            graph_vector_dim=16,
            num_rgcn_layers=1,
            epochs=1 if FAST else 4,
        ),
        hybrid=HybridModelConfig(use_ga_selection=False),
    )
    pipeline = ReproPipeline(config).build()
    evaluation = pipeline.evaluate("skylake")
    refs = pipeline.export_artifacts(evaluation, root, name="skylake-demo")
    pipeline.export_artifacts(evaluation, root, name="skylake-demo")  # v0002
    fold0 = refs[0].name

    # 2. One hub, two versions of the same artifact, one journal.  Every
    #    served prediction is recorded asynchronously (fingerprint, label,
    #    cache hit, per-stage spans, and the request graph for replay).
    hub = ModelHub(
        root,
        journal_dir=journal_dir,
        drift_config=DriftConfig(recent_window=8, baseline_window=16, min_samples=8),
    )
    hub.load(DeploymentSpec(name="old", artifact=fold0, version="v0001"))
    hub.load(DeploymentSpec(name="new", artifact=fold0, version="v0002"))

    builder = GraphBuilder()
    regions = build_suite(families=["clomp", "lulesh"], limit=6 if FAST else 12)
    wire_graphs = [
        program_graph_to_dict(builder.build_module(region.module))
        for region in regions
    ]

    with PredictionHTTPServer(hub) as server:
        print(f"hub serving on {server.url} (journal: {journal_dir})")

        # 3. Traced requests: opt in per call, read the span breakdown.
        answer = post_json(
            server.url + "/v1/models/new/predict",
            {"graph": wire_graphs[0], "trace": True},
        )
        trace = answer["result"]["trace"]
        print(
            "traced predict: label={} decode={:.1f}us plan={:.1f}us "
            "infer={:.1f}us total={:.1f}us".format(
                answer["result"]["label"],
                trace["decode_s"] * 1e6,
                trace.get("plan_build_s", 0.0) * 1e6,
                trace.get("infer_s", 0.0) * 1e6,
                trace["total_s"] * 1e6,
            )
        )

        # Serve the rest of the traffic (a few repeats → cache hits too).
        for _ in range(3):
            post_json(
                server.url + "/v1/models/new/predict", {"graphs": wire_graphs}
            )
        post_json(server.url + "/v1/models/old/predict", {"graph": wire_graphs[0]})

        # 4. The spans aggregate into /metrics as per-stage percentiles —
        #    and the same payload renders as a Prometheus exposition.
        stages = get_json(server.url + "/v1/models/new/metrics")["stats"]["stages"]
        for stage in ("decode", "cache_lookup", "plan_build", "infer", "combine"):
            if stage in stages:
                print(
                    f"stage {stage:>12}: p50={stages[stage]['p50_s'] * 1e6:8.1f}us "
                    f"p95={stages[stage]['p95_s'] * 1e6:8.1f}us "
                    f"(n={stages[stage]['count']})"
                )
        exposition = get_text(server.url + "/metrics?format=prometheus")
        print(
            "prometheus exposition: "
            f"{sum(1 for line in exposition.splitlines() if not line.startswith('#'))}"
            " series"
        )

        # 5. Drift: stable traffic reads ok/insufficient-data; a synthetic
        #    fold-agreement collapse (injected straight into the journal's
        #    live window) trips the alert.
        print(
            "drift before:",
            get_json(server.url + "/v1/models/old/drift")["status"],
        )
        for i in range(16):
            hub.journal.record(
                {
                    "ts": float(i),
                    "model": "old",
                    "label": 0,
                    "agreement": 1.0 if i < 8 else 0.2,
                    "cache_hit": False,
                    "batch_size": 1,
                    "latency_s": 0.001,
                    "stages": {},
                    "graph": None,
                }
            )
        verdict = get_json(server.url + "/v1/models/old/drift")
        print(
            "drift after collapse:",
            verdict["status"],
            [alert["kind"] for alert in verdict["alerts"]],
        )

    hub.stop()  # final journal flush

    # 6. Offline: the journal is plain JSONL segments — query it, then
    #    replay the recorded traffic through both versions and diff.
    reader = JournalReader(journal_dir)
    stats = reader.stats(model="new")
    print(
        f"journal: {stats['records']} records for 'new', "
        f"hit rate {stats['cache_hit_rate']:.2f}, "
        f"label distribution {stats['label_distribution']}"
    )
    registry = ArtifactRegistry(root)
    side_a = PredictionService.from_artifact(
        registry.load(fold0, "v0001"), config=ServiceConfig(max_batch_size=32)
    )
    side_b = PredictionService.from_artifact(
        registry.load(fold0, "v0002"), config=ServiceConfig(max_batch_size=32)
    )
    report = replay_ab(
        reader.records(model="new"), side_a, side_b, names=("v0001", "v0002")
    )
    print(
        f"replay: {report['requests']} requests, "
        f"agreement {report['agreement_rate']:.2f}, "
        f"{len(report['disagreements'])} disagreement(s)"
    )
    for entry in report["disagreements"][:3]:
        print(
            f"  {entry['name']}: v0001={entry['v0001']} v0002={entry['v0002']} "
            f"(served: {entry['journalled_label']})"
        )


def main() -> None:
    journal_dir = os.environ.get("REPRO_JOURNAL_DIR")
    with tempfile.TemporaryDirectory(prefix="repro-observe-") as root:
        if journal_dir:
            run(root, journal_dir)
        else:
            run(root, os.path.join(root, "journal"))


if __name__ == "__main__":
    main()
