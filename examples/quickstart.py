"""Quickstart: build a region, compile it under flag sequences, inspect its
graph, simulate the NUMA/prefetcher space and find its best configuration.

Run with:  python examples/quickstart.py
"""

from repro.graphs import build_graph
from repro.ir import print_module
from repro.numasim import (
    NumaPrefetchSimulator,
    build_configuration_space,
    default_configuration,
    skylake,
)
from repro.passes import apply_flag_sequence, sample_flag_sequences
from repro.workloads import KernelSpec, Pattern, derive_profile, generate_region_module


def main() -> None:
    # 1. Describe an OpenMP parallel region (a streaming triad kernel).
    spec = KernelSpec(
        name="example triad",
        family="rodinia",
        pattern=Pattern.TRIAD,
        iterations=2e6,
        footprint_mb=256.0,
        working_set_kb=16_000.0,
    )

    # 2. Lower it to the mini-IR and look at the outlined region.
    module = generate_region_module(spec)
    print("=== generated IR (excerpt) ===")
    print("\n".join(print_module(module).splitlines()[:25]))

    # 3. Compile it under a couple of random flag sequences (augmentation).
    for sequence in sample_flag_sequences(3, seed=7):
        variant = apply_flag_sequence(module, list(sequence))
        graph = build_graph(variant)
        print(f"sequence {sequence.name}: {list(sequence)} -> {graph}")

    # 4. Simulate the NUMA x prefetcher space and report the best configuration.
    machine = skylake()
    simulator = NumaPrefetchSimulator(machine)
    profile = derive_profile(spec)
    space = build_configuration_space(machine)
    results = simulator.simulate_space(profile, space)
    default = default_configuration(machine)
    best = min(results, key=lambda cfg: results[cfg].time_seconds)
    print("\n=== configuration search on", machine.name, "===")
    print(f"default: {default.describe():45s} {results[default].time_ms:8.3f} ms")
    print(f"best:    {best.describe():45s} {results[best].time_ms:8.3f} ms")
    print(f"speedup over default: {results[default].time_seconds / results[best].time_seconds:.2f}x")


if __name__ == "__main__":
    main()
