"""Ensemble serving quickstart: train -> export -> ensemble -> gc -> warm-up.

Trains a small cross-validated pipeline, exports every fold's predictor,
then serves *all* folds behind one :class:`EnsemblePredictionService`
endpoint — comparing the mean-softmax and majority-vote combination
strategies and printing per-fold agreement per region.  Finally it
demonstrates the registry retention policy (``gc`` with pinning) and the
cache warm-up cycle that lets a restarted server answer its first repeated
request from cache.

Run with:  python examples/serve_ensemble.py
"""

import os
import tempfile

from repro.core import HybridModelConfig, PipelineConfig, ReproPipeline, StaticModelConfig
from repro.serving import ArtifactRegistry, EnsembleConfig, EnsemblePredictionService

#: REPRO_EXAMPLE_FAST=1 shrinks the training run (used by the CI smoke test).
FAST = os.environ.get("REPRO_EXAMPLE_FAST") == "1"


def main() -> None:
    # 1. Train: a deliberately small pipeline (one machine, three folds).
    config = PipelineConfig(
        machines=("skylake",),
        families=["clomp", "lulesh"],
        region_limit=6 if FAST else 12,
        num_flag_sequences=2 if FAST else 3,
        num_labels=6,
        folds=2 if FAST else 3,
        static_model=StaticModelConfig(
            hidden_dim=16,
            graph_vector_dim=16,
            num_rgcn_layers=1,
            epochs=1 if FAST else 4,
        ),
        hybrid=HybridModelConfig(use_ga_selection=False),
    )
    pipeline = ReproPipeline(config).build()
    evaluation = pipeline.evaluate("skylake")

    with tempfile.TemporaryDirectory(prefix="repro-ensemble-") as root:
        # 2. Export: every fold under one base name; the manifest metadata
        #    records the full membership.
        refs = pipeline.export_artifacts(evaluation, root, name="skylake-demo")
        registry = ArtifactRegistry(root)
        print("exported folds:", registry.fold_members("skylake-demo"))

        # 3. Ensemble: discover and load every fold, answer through both
        #    combination strategies.
        fold = evaluation.folds[0]
        samples = pipeline.region_samples(fold.validation_regions, fold.explored_sequence)
        graphs = [sample.graph for sample in samples]
        for strategy in ("mean-softmax", "majority-vote"):
            service = EnsemblePredictionService.from_registry(
                root, "skylake-demo", config=EnsembleConfig(strategy=strategy)
            )
            print(f"\n{strategy} over {service.num_members} folds:")
            for result in service.predict_many(graphs):
                configuration = (
                    result.configuration.describe() if result.configuration else "?"
                )
                print(
                    f"  {result.name:40s} label={result.label} "
                    f"agreement={result.agreement:.2f} "
                    f"votes={result.per_fold_labels} config={configuration}"
                )

        # 4. Warm-up: dump the (version-set keyed) cache, restart, start hot.
        warm_path = os.path.join(root, "warmup.npz")
        entries = service.dump_cache(warm_path)
        restarted = EnsemblePredictionService.from_registry(
            root, "skylake-demo", config=EnsembleConfig(warmup_path=warm_path)
        )
        first = restarted.predict(graphs[0])
        print(
            f"\nwarm restart: {entries} cached entries persisted, "
            f"first request cache_hit={first.cache_hit}"
        )

        # 5. Retention: re-export twice (new versions), pin a rollback
        #    target, then garbage-collect everything but the latest + pinned.
        pipeline.export_artifacts(evaluation, root, name="skylake-demo")
        pipeline.export_artifacts(evaluation, root, name="skylake-demo")
        name = refs[0].name
        registry.pin(name, "v0001")
        would_remove = registry.gc(name, keep_last=1, dry_run=True)
        removed = registry.gc(name, keep_last=1)
        print(
            f"\nretention for {name}: dry-run proposed {would_remove or 'nothing'}, "
            f"removed {removed or 'nothing'}, kept {registry.versions(name)} "
            f"(pinned: {registry.pinned_versions(name)})"
        )

        # 6. Telemetry.
        print("\nensemble stats:")
        for key, value in restarted.snapshot().items():
            print(f"  {key:20s} {value}")


if __name__ == "__main__":
    main()
