"""HTTP serving quickstart: train -> export -> serve over HTTP -> kill ->
restart warm from the background checkpoint.

Trains a small cross-validated pipeline, exports one fold into a registry,
puts a :class:`PredictionService` behind the JSON/HTTP front-end
(``repro.serving.http``) with a :class:`CheckpointDaemon` dumping the
embedding cache in the background, queries it over a real socket, then
kills the server and restarts it — the first burst after the restart is
answered from the checkpointed cache instead of re-paying the RGCN forward
passes.

Run with:  python examples/serve_http.py

The same server can be started from the command line against any registry
(``repro-serve`` is the installed alias)::

    python -m repro.serving --root /tmp/registry --name skylake-demo-fold0 \
        --port 8080 --checkpoint-path /tmp/repro-cache.npz

and queried with nothing but ``curl``::

    # identity + cache warmth
    curl -s http://127.0.0.1:8080/healthz

    # one prediction (wire-encoded ProgramGraph, schema_version 1)
    curl -s -X POST http://127.0.0.1:8080/v1/predict \
        -H 'Content-Type: application/json' \
        -d '{"graph": {"schema_version": 1, "name": "region", "metadata": {},
             "nodes": [{"kind": "instruction", "text": "br", "function": "f",
                        "block": "entry", "features": {}}],
             "edges": []}}'
    # -> {"result": {"label": 3, "configuration": {...}, "cache_hit": false, ...}}

    # serving telemetry (QPS, batch histogram, cache hit rate, checkpoints)
    curl -s http://127.0.0.1:8080/metrics
"""

import json
import os
import tempfile
import urllib.request

from repro.core import HybridModelConfig, PipelineConfig, ReproPipeline, StaticModelConfig
from repro.graphs import GraphBuilder
from repro.serving import (
    CheckpointDaemon,
    PredictionHTTPServer,
    PredictionService,
    ServiceConfig,
    program_graph_to_dict,
)
from repro.workloads import build_suite

#: REPRO_EXAMPLE_FAST=1 shrinks the training run (used by the CI smoke test).
FAST = os.environ.get("REPRO_EXAMPLE_FAST") == "1"


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read())


def main() -> None:
    # 1. Train: a deliberately small pipeline (one machine, few folds).
    config = PipelineConfig(
        machines=("skylake",),
        families=["clomp", "lulesh"],
        region_limit=6 if FAST else 12,
        num_flag_sequences=2 if FAST else 3,
        num_labels=6,
        folds=2 if FAST else 3,
        static_model=StaticModelConfig(
            hidden_dim=16,
            graph_vector_dim=16,
            num_rgcn_layers=1,
            epochs=1 if FAST else 4,
        ),
        hybrid=HybridModelConfig(use_ga_selection=False),
    )
    pipeline = ReproPipeline(config).build()
    evaluation = pipeline.evaluate("skylake")

    with tempfile.TemporaryDirectory(prefix="repro-http-") as root:
        # 2. Export one fold and wrap it in a service + HTTP front-end with
        #    background cache checkpointing.
        refs = pipeline.export_artifacts(evaluation, root, name="skylake-demo")
        checkpoint_path = os.path.join(root, "cache-checkpoint.npz")
        service = PredictionService.from_registry(
            root, refs[0].name, config=ServiceConfig(max_wait_s=0.01)
        )
        daemon = CheckpointDaemon(service.cache, checkpoint_path, interval_s=0.5)

        # Raw ProgramGraphs, exactly what a remote client would build and
        # wire-encode (the service encodes them with its own vocabulary).
        builder = GraphBuilder()
        regions = build_suite(families=["clomp", "lulesh"], limit=6 if FAST else 12)
        graphs = [builder.build_module(region.module) for region in regions]
        wire_graphs = [program_graph_to_dict(graph) for graph in graphs]
        in_process_labels = [r.label for r in service.predict_many(graphs)]
        service.cache.clear()  # the HTTP session below starts cold

        with PredictionHTTPServer(service, checkpoint=daemon) as server:
            print(f"serving on {server.url}")
            health = get_json(server.url + "/healthz")
            print(f"healthz: {health['status']}, serving {health['serving']['artifact']}")

            # 3. Query over a real socket: single requests ride the
            #    micro-batcher, the batch body goes through predict_many.
            http_labels = [
                post_json(server.url + "/v1/predict", {"graph": wire})["result"]["label"]
                for wire in wire_graphs
            ]
            batch = post_json(server.url + "/v1/predict", {"graphs": wire_graphs})
            print(f"HTTP labels:       {http_labels}")
            print(f"HTTP batch labels: {[r['label'] for r in batch['results']]}")
            print(f"in-process labels: {in_process_labels}")
            assert http_labels == in_process_labels
            metrics = get_json(server.url + "/metrics")
            print(
                f"metrics: {metrics['stats']['total_requests']} requests, "
                f"cache hit rate {metrics['stats']['cache_hit_rate']:.2f}"
            )
        # Leaving the ``with`` block killed the server; the daemon wrote a
        # final checkpoint on the way down.
        print(f"server down, checkpoint at {checkpoint_path}: "
              f"{os.path.getsize(checkpoint_path)} bytes")

        # 4. Restart: a brand-new process-worth of state, warmed from the
        #    checkpoint — the whole first burst is answered from cache.
        restarted = PredictionService.from_registry(
            root,
            refs[0].name,
            config=ServiceConfig(max_wait_s=0.01, warmup_path=checkpoint_path),
        )
        with PredictionHTTPServer(restarted) as server:
            burst = post_json(server.url + "/v1/predict", {"graphs": wire_graphs})
            hits = [r["cache_hit"] for r in burst["results"]]
            labels = [r["label"] for r in burst["results"]]
            print(f"warm restart: first burst cache hits = {hits}")
            assert labels == in_process_labels
            assert all(hits), "restart should answer its first burst from cache"


if __name__ == "__main__":
    main()
