"""Model-hub quickstart: two named deployments in one server + a
zero-downtime alias flip.

Trains a small cross-validated pipeline, exports its folds into a registry
twice (two versions of every artifact), then serves from ONE process:

* ``numa``     — a single-fold model, pinned to v0001;
* ``ens``      — the full fold ensemble (latest versions, soft voting);
* ``prod``     — an alias, initially pointing at ``numa``.

Everything shares one embedding cache (keys are namespaced per model) and
one micro-batch worker pool.  The demo queries both models over HTTP by
name, then performs the production version swap: load the v0002 artifact
as a new deployment, atomically flip ``prod`` onto it, and unload the old
one — all over the admin API, with the server up the whole time.

Run with:  python examples/serve_hub.py

The same hub can be started from the command line against any registry
(``repro-serve`` is the installed alias)::

    python -m repro.serving --root /tmp/registry \
        --model numa=skylake-demo-fold0@v0001 \
        --model ens=ensemble:skylake-demo \
        --alias prod=numa --port 8080

and driven with nothing but ``curl``::

    # what is deployed? (per-model health, aliases, default)
    curl -s http://127.0.0.1:8080/v1/models

    # query one model by name (or through the 'prod' alias)
    curl -s -X POST http://127.0.0.1:8080/v1/models/ens/predict \
        -H 'Content-Type: application/json' \
        -d '{"graph": {"schema_version": 1, "name": "region", "metadata": {},
             "nodes": [{"kind": "instruction", "text": "br", "function": "f",
                        "block": "entry", "features": {}}],
             "edges": []}}'

    # one model's serving stats; /metrics has a section per model
    curl -s http://127.0.0.1:8080/v1/models/ens/metrics

    # runtime mutation: deploy v0002, flip prod onto it, drop the old one
    curl -s -X POST http://127.0.0.1:8080/v1/models/numa-v2/load \
        -d '{"artifact": "skylake-demo-fold0", "version": "v0002"}'
    curl -s -X POST http://127.0.0.1:8080/v1/models/prod/alias \
        -d '{"target": "numa-v2"}'
    curl -s -X POST http://127.0.0.1:8080/v1/models/numa/unload
"""

import json
import os
import tempfile
import urllib.request

from repro.core import HybridModelConfig, PipelineConfig, ReproPipeline, StaticModelConfig
from repro.graphs import GraphBuilder
from repro.serving import (
    DeploymentSpec,
    ModelHub,
    PredictionHTTPServer,
    program_graph_to_dict,
)
from repro.workloads import build_suite

#: REPRO_EXAMPLE_FAST=1 shrinks the training run (used by the CI smoke test).
FAST = os.environ.get("REPRO_EXAMPLE_FAST") == "1"


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read())


def main() -> None:
    # 1. Train a deliberately small pipeline and export every fold twice —
    #    v0001 and v0002 of each artifact (a second export stands in for a
    #    retrained release).
    config = PipelineConfig(
        machines=("skylake",),
        families=["clomp", "lulesh"],
        region_limit=6 if FAST else 12,
        num_flag_sequences=2 if FAST else 3,
        num_labels=6,
        folds=2 if FAST else 3,
        static_model=StaticModelConfig(
            hidden_dim=16,
            graph_vector_dim=16,
            num_rgcn_layers=1,
            epochs=1 if FAST else 4,
        ),
        hybrid=HybridModelConfig(use_ga_selection=False),
    )
    pipeline = ReproPipeline(config).build()
    evaluation = pipeline.evaluate("skylake")

    with tempfile.TemporaryDirectory(prefix="repro-hub-") as root:
        refs = pipeline.export_artifacts(evaluation, root, name="skylake-demo")
        pipeline.export_artifacts(evaluation, root, name="skylake-demo")  # v0002
        fold0 = refs[0].name

        # 2. One hub, two declarative deployments, one alias.  The hub owns
        #    the shared cache and the batcher worker pool.
        hub = ModelHub(root, cache_capacity=2048, pool_workers=2)
        hub.load(DeploymentSpec(name="numa", artifact=fold0, version="v0001"))
        hub.load(DeploymentSpec(name="ens", fold_group="skylake-demo"))
        hub.alias("prod", "numa")

        # Raw ProgramGraphs, exactly what a remote client would wire-encode.
        builder = GraphBuilder()
        regions = build_suite(families=["clomp", "lulesh"], limit=6 if FAST else 12)
        graphs = [builder.build_module(region.module) for region in regions]
        wire_graphs = [program_graph_to_dict(graph) for graph in graphs]

        with PredictionHTTPServer(hub) as server:
            print(f"hub serving on {server.url}")
            listing = get_json(server.url + "/v1/models")
            print(
                f"deployed: {sorted(listing['models'])}, "
                f"aliases: {listing['aliases']}, default: {listing['default']}"
            )

            # 3. Query both models by name; single requests ride each
            #    deployment's micro-batch queue on the shared worker pool.
            single = post_json(
                server.url + "/v1/models/numa/predict", {"graphs": wire_graphs}
            )
            combined = post_json(
                server.url + "/v1/models/ens/predict", {"graph": wire_graphs[0]}
            )
            print(f"numa labels: {[r['label'] for r in single['results']]}")
            print(
                f"ens answer: label={combined['result']['label']} "
                f"agreement={combined['result']['agreement']:.2f} "
                f"per-fold={combined['result']['per_fold_labels']}"
            )
            via_alias = post_json(
                server.url + "/v1/models/prod/predict", {"graph": wire_graphs[0]}
            )
            assert via_alias["result"]["label"] == single["results"][0]["label"]

            # 4. Zero-downtime version swap over the admin API: load v0002
            #    under a new name, flip 'prod' atomically, unload v0001.
            loaded = post_json(
                server.url + "/v1/models/numa-v2/load",
                {"artifact": fold0, "version": "v0002"},
            )
            print(f"loaded {loaded['loaded']} -> {loaded['model']['serving']['artifact']}")
            post_json(server.url + "/v1/models/prod/alias", {"target": "numa-v2"})
            flipped = post_json(
                server.url + "/v1/models/prod/predict", {"graph": wire_graphs[0]}
            )
            print(f"prod now answers from numa-v2: label={flipped['result']['label']}")
            post_json(server.url + "/v1/models/numa/unload", {})
            listing = get_json(server.url + "/v1/models")
            assert sorted(listing["models"]) == ["ens", "numa-v2"]
            print(f"after swap: {sorted(listing['models'])}")

            # 5. Telemetry: per-model sections + hub-level aggregate.
            metrics = get_json(server.url + "/metrics")
            aggregate = metrics["hub"]["aggregate"]
            print(
                f"metrics: {aggregate['total_requests']} requests over "
                f"{aggregate['models']} models, shared cache "
                f"{metrics['hub']['cache']['size']:.0f} entries, pool dispatched "
                f"{metrics['hub']['pool']['batches_dispatched']} batches"
            )


if __name__ == "__main__":
    main()
