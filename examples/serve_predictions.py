"""Serving quickstart: train -> export -> serve -> query.

Trains a small cross-validated pipeline, exports every fold's predictor into
a versioned artifact registry, reloads one fold in a fresh
``PredictionService`` and answers region queries through the sync, batched
and async (micro-batching) front-ends — printing the serving telemetry at
the end.

Run with:  python examples/serve_predictions.py
"""

import os
import tempfile

from repro.core import HybridModelConfig, PipelineConfig, ReproPipeline, StaticModelConfig
from repro.serving import ArtifactRegistry, PredictionService, ServiceConfig

#: REPRO_EXAMPLE_FAST=1 shrinks the training run (used by the CI smoke test).
FAST = os.environ.get("REPRO_EXAMPLE_FAST") == "1"


def main() -> None:
    # 1. Train: a deliberately small pipeline (one machine, three folds).
    config = PipelineConfig(
        machines=("skylake",),
        families=["clomp", "lulesh"],
        region_limit=6 if FAST else 12,
        num_flag_sequences=2 if FAST else 3,
        num_labels=6,
        folds=2 if FAST else 3,
        static_model=StaticModelConfig(
            hidden_dim=16,
            graph_vector_dim=16,
            num_rgcn_layers=1,
            epochs=1 if FAST else 4,
        ),
        hybrid=HybridModelConfig(use_ga_selection=False),
    )
    pipeline = ReproPipeline(config).build()
    evaluation = pipeline.evaluate("skylake")

    with tempfile.TemporaryDirectory(prefix="repro-registry-") as root:
        # 2. Export: one versioned artifact per fold (weights + vocabulary +
        #    label space + hybrid classifier, all checksummed).
        refs = pipeline.export_artifacts(evaluation, root, name="skylake-demo")
        print("exported artifacts:")
        for ref in refs:
            print(f"  {ref} -> {ref.path}")

        # 3. Serve: reload the first fold in a fresh service. The registry
        #    verifies every checksum before deserialising a single weight.
        ref = refs[0]
        service = PredictionService.from_registry(
            root, ref.name, config=ServiceConfig(max_batch_size=16, max_wait_s=0.01)
        )

        # 4. Query: one region at a time (cold, then cache-hot) ...
        fold = evaluation.folds[0]
        samples = pipeline.region_samples(fold.validation_regions, fold.explored_sequence)
        graphs = [sample.graph for sample in samples]
        print("\nper-request predictions:")
        for graph in graphs:
            result = service.predict(graph)
            configuration = result.configuration.describe() if result.configuration else "?"
            print(
                f"  {result.name:40s} label={result.label} config={configuration} "
                f"cache_hit={result.cache_hit}"
            )
        repeat = service.predict(graphs[0])
        print(f"repeat query cache_hit={repeat.cache_hit}")

        # ... then a 3x burst through the async micro-batching front-end.
        burst = graphs * 3
        with service:
            futures = [service.submit(graph) for graph in burst]
            labels = [future.result(timeout=30).label for future in futures]
        print(f"\nasync burst of {len(burst)} answered, labels: {sorted(set(labels))}")

        # 5. Telemetry.
        print("\nserving stats:")
        for key, value in service.stats.snapshot().items():
            print(f"  {key:20s} {value}")


if __name__ == "__main__":
    main()
