"""Replica-pool walkthrough: scale one model across worker processes,
then kill a worker mid-traffic and watch zero requests fail.

Exports a small trained artifact, then serves it from a
:class:`~repro.serving.replica.ReplicaSupervisor` — three long-lived
worker processes, each hosting a full :class:`~repro.serving.ModelHub`
(own cache, batcher pool and journal), behind the same JSON/HTTP
front-end an in-process hub uses (``repro-serve --replicas 3`` is the
CLI spelling of the same wiring).  The demo:

* routes traffic by graph-content affinity (repeats of a region always
  land on the same replica, so its embedding cache stays hot);
* SIGKILLs one worker while client threads are mid-burst, and counts
  errors — the supervisor transparently retries the dead worker's
  in-flight requests on its siblings, so the count is zero;
* watches the supervisor respawn the killed slot (fresh PID, same
  per-slot journal directory) and rejoin rotation;
* reads ``/metrics`` for the pool-wide roll-up: pooled latency
  percentiles computed from the replicas' raw windows
  (``merged_from_raw_windows: true``), never averages of averages.

Run with:  python examples/serve_replicas.py
"""

import json
import os
import signal
import tempfile
import threading
import time
import urllib.request

from repro.core import HybridModelConfig, PipelineConfig, ReproPipeline, StaticModelConfig
from repro.graphs import GraphBuilder
from repro.serving import (
    DeploymentSpec,
    PredictionHTTPServer,
    ReplicaConfig,
    ReplicaSupervisor,
    deployment_spec_to_dict,
    program_graph_to_dict,
)
from repro.workloads import build_suite

#: REPRO_EXAMPLE_FAST=1 shrinks the training run (used by the CI smoke test).
FAST = os.environ.get("REPRO_EXAMPLE_FAST") == "1"
REPLICAS = 3


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read())


def export_artifact(root: str) -> str:
    config = PipelineConfig(
        machines=("skylake",),
        families=["clomp", "lulesh"],
        region_limit=6 if FAST else 12,
        num_flag_sequences=2,
        num_labels=6,
        folds=2,
        static_model=StaticModelConfig(
            hidden_dim=16,
            graph_vector_dim=16,
            num_rgcn_layers=1,
            epochs=1 if FAST else 4,
        ),
        hybrid=HybridModelConfig(use_ga_selection=False),
    )
    pipeline = ReproPipeline(config).build()
    evaluation = pipeline.evaluate("skylake")
    refs = pipeline.export_artifacts(evaluation, root, name="skylake-demo")
    return refs[0].name


def run(root: str) -> None:
    artifact = export_artifact(root)
    journal_dir = os.path.join(root, "journal")

    # 1. Three worker processes behind one supervisor.  Each slot journals
    #    into its own subdirectory and checkpoints its cache into its own
    #    dump, which the slot's next incarnation warm-starts from.
    config = ReplicaConfig(
        registry_root=root,
        replicas=REPLICAS,
        specs=(
            deployment_spec_to_dict(DeploymentSpec(name="demo", artifact=artifact)),
        ),
        journal_dir=journal_dir,
        checkpoint_dir=os.path.join(root, "checkpoints"),
        heartbeat_interval_s=0.2,
    )
    supervisor = ReplicaSupervisor(config).start()

    builder = GraphBuilder()
    regions = build_suite(families=["clomp", "lulesh"], limit=6 if FAST else 12)
    wire_graphs = [
        program_graph_to_dict(builder.build_module(region.module))
        for region in regions
    ]

    try:
        with PredictionHTTPServer(supervisor) as server:
            status = supervisor.replica_status()
            print(f"pool serving on {server.url}")
            print(
                "replicas:",
                ", ".join(f"slot {s['slot']} pid {s['pid']}" for s in status),
            )

            # 2. Kill a worker while client threads are mid-burst.  The
            #    supervisor notices the dead pipe, retries the lost
            #    requests on surviving replicas, and respawns the slot —
            #    the clients never see an error.
            errors, answered = [], []

            def client(offset: int) -> None:
                for i in range(40):
                    graph = wire_graphs[(offset + i) % len(wire_graphs)]
                    try:
                        answer = post_json(
                            server.url + "/v1/models/demo/predict",
                            {"graph": graph},
                        )
                        answered.append(answer["result"]["label"])
                    except Exception as exc:  # noqa: BLE001 - counted below
                        errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(offset,))
                for offset in range(4)
            ]
            for thread in threads:
                thread.start()
            victim = status[0]["pid"]
            os.kill(victim, signal.SIGKILL)
            print(f"killed worker pid {victim} mid-burst")
            for thread in threads:
                thread.join()
            print(
                f"burst finished: {len(answered)} answers, "
                f"{len(errors)} errors (expected 0)"
            )
            assert not errors, errors

            # 3. The killed slot rejoins with a fresh PID.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status = supervisor.replica_status()
                pids = {s["pid"] for s in status}
                if victim not in pids and all(
                    s["state"] == "ready" for s in status
                ):
                    break
                time.sleep(0.1)
            print(
                "after failover:",
                ", ".join(
                    f"slot {s['slot']} pid {s['pid']} gen {s['generation']}"
                    for s in status
                ),
            )
            assert victim not in {s["pid"] for s in status}

            # 4. Pool-wide metrics stay honest: percentiles are pooled
            #    from the replicas' raw latency windows.
            metrics = get_json(server.url + "/metrics")
            aggregate = metrics["hub"]["aggregate"]
            print(
                "pool metrics: {} requests, p95 {:.2f} ms, "
                "merged_from_raw_windows={}".format(
                    aggregate["total_requests"],
                    (aggregate["latency"]["p95_s"] or 0.0) * 1e3,
                    aggregate["latency"]["merged_from_raw_windows"],
                )
            )
    finally:
        supervisor.stop()

    slots = sorted(os.listdir(journal_dir))
    print("per-replica journals:", ", ".join(slots))


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-replicas-") as root:
        run(root)


if __name__ == "__main__":
    main()
