"""SLO walkthrough: calibrated cost model, admission control, capacity API.

Two co-tenant deployments share one hub.  ``tenant-a`` carries an SLO
with ``shed_policy="shed"``: when a burst exceeds its admission budget,
excess requests are shed with a structured ``429 over-capacity`` (and a
``Retry-After`` header) instead of queueing into everyone's latency.
``tenant-b`` has no budget and rides through the same burst untouched.

The demo:

* serves journalled traffic, fits a :class:`CostModelCalibrator` over
  the recorded per-stage spans, and persists the model in the registry;
* reloads the cost model into a live hub (``hub.reload_cost_model``) so
  batchers close batches before a predicted deadline miss;
* fires a concurrent burst at ``tenant-a`` and counts 200s vs shed 429s
  — with zero 500s, and the co-tenant's traffic all answered;
* prints the capacity report (``GET /v1/capacity``): predicted
  sustainable QPS per deployment from the calibrated model next to the
  measured p95.

Run with:  python examples/slo_hub.py
"""

import json
import os
import tempfile
import threading
import urllib.error
import urllib.request

from repro.core import HybridModelConfig, PipelineConfig, ReproPipeline, StaticModelConfig
from repro.graphs import GraphBuilder
from repro.serving import (
    ArtifactRegistry,
    BatchingConfig,
    CostModelCalibrator,
    DeploymentSpec,
    JournalReader,
    ModelHub,
    PredictionHTTPServer,
    SLOConfig,
    program_graph_to_dict,
    save_cost_model,
)
from repro.workloads import build_suite

#: REPRO_EXAMPLE_FAST=1 shrinks the training run (used by the CI smoke test).
FAST = os.environ.get("REPRO_EXAMPLE_FAST") == "1"


def post_json(url: str, payload: dict):
    """POST, returning (status, body) — shed 429s are an answer here,
    not an exception."""
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read())


def run(root: str) -> None:
    # 1. Train small and export a fold artifact for each tenant.
    config = PipelineConfig(
        machines=("skylake",),
        families=["clomp", "lulesh"],
        region_limit=6 if FAST else 12,
        num_flag_sequences=2 if FAST else 3,
        num_labels=6,
        folds=2 if FAST else 3,
        static_model=StaticModelConfig(
            hidden_dim=16,
            graph_vector_dim=16,
            num_rgcn_layers=1,
            epochs=1 if FAST else 4,
        ),
        hybrid=HybridModelConfig(use_ga_selection=False),
    )
    pipeline = ReproPipeline(config).build()
    evaluation = pipeline.evaluate("skylake")
    refs = pipeline.export_artifacts(evaluation, root, name="skylake-demo")
    fold0 = refs[0].name

    builder = GraphBuilder()
    regions = build_suite(families=["clomp", "lulesh"], limit=6 if FAST else 12)
    graphs = [builder.build_module(region.module) for region in regions]
    wire_graphs = [program_graph_to_dict(graph) for graph in graphs]

    # 2. Calibration pass: serve journalled traffic (cache off so every
    #    request really runs a batch), then fit the analytic latency model
    #    over the journal's per-stage spans and persist it.
    journal_dir = os.path.join(root, "calibration-journal")
    calibration_hub = ModelHub(root, enable_cache=False, journal_dir=journal_dir)
    calibration_hub.load(
        DeploymentSpec(name="calib", artifact=fold0, enable_cache=False)
    )
    with calibration_hub:
        for size in (1, 2, 3, len(graphs)):
            for _ in range(4):
                calibration_hub.predict_many("calib", graphs[:size])

    cost_model = CostModelCalibrator(min_batches=8).fit(
        JournalReader(journal_dir), model="calib"
    )
    registry = ArtifactRegistry(root)
    ref = save_cost_model(registry, cost_model)
    print(
        f"cost model calibrated over {cost_model.meta['batches']} journalled "
        f"batches (MAPE {cost_model.meta['mape']:.3f}) → saved as {ref}"
    )

    # 3. Two co-tenants on one hub.  tenant-a budgets one request in
    #    flight and sheds the excess; tenant-b has no SLO.  The registry's
    #    cost model is hot-loaded so batchers see their deadline targets.
    hub = ModelHub(root, enable_cache=False)
    hub.reload_cost_model()
    hub.load(
        DeploymentSpec(
            name="tenant-a",
            artifact=fold0,
            enable_cache=False,
            batching=BatchingConfig(max_batch_size=4),
            slo=SLOConfig(p95_ms=250.0, max_concurrency=1, shed_policy="shed"),
        )
    )
    hub.load(
        DeploymentSpec(
            name="tenant-b",
            artifact=fold0,
            enable_cache=False,
            batching=BatchingConfig(max_batch_size=4),
        )
    )

    with PredictionHTTPServer(hub) as server:
        print(f"hub serving on {server.url}")

        # 4. A concurrent burst at tenant-a: its admission budget admits
        #    what fits and sheds the rest with structured 429s — noisy
        #    neighbours get back-pressure, not queueing delay.
        results = []
        lock = threading.Lock()

        def fire(index: int, tenant: str):
            status, body, headers = post_json(
                f"{server.url}/v1/models/{tenant}/predict",
                {"graph": wire_graphs[index % len(wire_graphs)]},
            )
            with lock:
                results.append((tenant, status, body, headers))

        threads = [
            threading.Thread(target=fire, args=(i, "tenant-a")) for i in range(12)
        ] + [threading.Thread(target=fire, args=(i, "tenant-b")) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        a_statuses = [status for tenant, status, _, _ in results if tenant == "tenant-a"]
        b_statuses = [status for tenant, status, _, _ in results if tenant == "tenant-b"]
        shed = [
            (body, headers)
            for tenant, status, body, headers in results
            if tenant == "tenant-a" and status == 429
        ]
        print(
            f"burst at tenant-a: {a_statuses.count(200)} served, "
            f"{len(shed)} shed with 429"
        )
        if shed:
            body, headers = shed[0]
            print(
                f"  shed response: code={body['error']['code']!r} "
                f"Retry-After={headers.get('Retry-After')}s"
            )
            assert body["error"]["code"] == "over-capacity"
        # Shedding protects, it never breaks: no burst request 500s, and
        # the co-tenant without a budget answered everything.
        assert all(status in (200, 429) for status in a_statuses)
        assert b_statuses and all(status == 200 for status in b_statuses)
        print(f"co-tenant tenant-b: {len(b_statuses)}/{len(b_statuses)} served")

        # 5. The capacity API: predicted sustainable throughput per
        #    deployment from the calibrated model, next to the measured
        #    p95 and each deployment's admission counters.
        report = get_json(server.url + "/v1/capacity")
        for name, entry in sorted(report["models"].items()):
            predicted = entry["predicted"] or {}
            measured = entry["measured_p95_s"]
            print(
                f"capacity[{name}]: sustainable "
                f"{predicted.get('sustainable_qps', 0.0):.0f} QPS at batch "
                f"{predicted.get('optimal_batch')} | measured p95 "
                f"{(measured or 0.0) * 1e3:.1f} ms | "
                f"admission {entry['admission']}"
            )
        within = report["models"]["tenant-b"]["within_slo"]
        print(
            f"cost model {report['cost_model']['artifact']} "
            f"(MAPE {report['cost_model']['mape']:.3f}); "
            f"tenant-b within SLO: {within} (no SLO declared → None)"
        )

    hub.stop()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-slo-") as root:
        run(root)


if __name__ == "__main__":
    main()
