"""Train the static GNN model on a subset of the suite and predict the best
NUMA/prefetcher configuration for held-out regions (the paper's core loop).

Run with:  python examples/train_static_model.py
"""

import os

import numpy as np

from repro.core import Augmenter, MachineDataset, select_label_space
from repro.core.static_model import StaticConfigurationPredictor, StaticModelConfig
from repro.graphs import GraphEncoder
from repro.numasim import skylake
from repro.workloads import build_suite

#: REPRO_EXAMPLE_FAST=1 shrinks the training run (used by the CI smoke test).
FAST = os.environ.get("REPRO_EXAMPLE_FAST") == "1"


def main() -> None:
    # Dataset: 24 regions, timings simulated on the Skylake-like machine.
    regions = build_suite(
        families=["clomp", "lulesh", "rodinia"], limit=8 if FAST else 24
    )
    dataset = MachineDataset(skylake(), regions)
    label_space = select_label_space(dataset, num_labels=6)
    labels = label_space.labels_for(dataset)
    print(f"{len(regions)} regions, {label_space.num_labels} configuration labels")

    # Augment with compiler flag sequences and encode graphs.
    encoder = GraphEncoder()
    augmented = Augmenter(
        num_sequences=2 if FAST else 6, seed=0, encoder=encoder
    ).augment(regions)
    augmented.assign_labels(labels)

    # Hold out every fourth region for validation.
    names = [r.name for r in regions]
    validation = set(names[::4])
    train_samples = [s for s in augmented.samples if s.region_name not in validation]

    predictor = StaticConfigurationPredictor(
        num_labels=label_space.num_labels,
        encoder=encoder,
        config=StaticModelConfig(
            hidden_dim=32, graph_vector_dim=32, epochs=2 if FAST else 15
        ),
    )
    predictor.fit(train_samples)

    # Predict configurations for the held-out regions using their default-O2 IR.
    predictions = predictor.predict_region_labels(augmented, "default-O2", sorted(validation))
    speedups = []
    print("\nregion                         predicted-config                speedup  best")
    for name, label in predictions.items():
        config = label_space.configuration_of(label)
        timing = dataset.timing(name)
        speedup = timing.speedup_of(config)
        best = timing.default_time / timing.best_time(label_space.configurations)
        speedups.append(speedup)
        print(f"{name:30s} {config.describe():30s} {speedup:6.2f}x {best:6.2f}x")
    print(f"\naverage speedup over default: {np.mean(speedups):.2f}x")


if __name__ == "__main__":
    main()
