"""repro — reproduction of "Learning Intermediate Representations using
Graph Neural Networks for NUMA and Prefetchers Optimization" (IPDPS 2022).

The package is organised as a set of substrates plus the paper's pipeline:

- :mod:`repro.ir` — mini LLVM-like SSA intermediate representation.
- :mod:`repro.passes` — compiler transformations and flag-sequence sampling.
- :mod:`repro.graphs` — ProGraML-style program graphs.
- :mod:`repro.gnn` — NumPy graph neural network (RGCN) stack.
- :mod:`repro.engine` — stateless inference engine: execution plans and
  fold-stacked forward passes (one planned sweep per ensemble).
- :mod:`repro.ml` — decision trees, genetic feature selection, cross validation.
- :mod:`repro.numasim` — NUMA + hardware-prefetcher machine simulator.
- :mod:`repro.workloads` — synthetic OpenMP-region benchmark suite.
- :mod:`repro.core` — dataset construction, static/dynamic/hybrid models,
  flag selection, cross-architecture evaluation.
- :mod:`repro.experiments` — drivers regenerating every figure of the paper.
- :mod:`repro.serving` — online inference: artefact registry, micro-batched
  prediction service, embedding cache and telemetry.
- :mod:`repro.analysis` — project-invariant linter (``repro-lint``): lock
  discipline, inference purity, wire error registry, path hygiene, API
  surface.
- :mod:`repro.concurrency` — tracked locks; ``REPRO_LOCK_CHECK=1`` turns
  on runtime lock-order and blocking-under-lock validation.
"""

__version__ = "1.0.0"

__all__ = [
    "ir",
    "passes",
    "graphs",
    "gnn",
    "engine",
    "ml",
    "numasim",
    "workloads",
    "core",
    "experiments",
    "serving",
    "analysis",
    "concurrency",
]
