"""Correctness tooling: a project-invariant linter for the repro code base.

This package is the static half of the correctness gate (the runtime half
is :mod:`repro.concurrency`, enabled with ``REPRO_LOCK_CHECK=1``).  It is
not a style checker — every rule encodes an invariant this project relies
on for correct results, and CI fails when one is violated.

The rules
---------

``lock-discipline``
    No blocking operation (file/socket I/O, ``time.sleep``, subprocess
    spawns, thread joins, bounded-queue puts, serialisation dumps) may
    execute while a lock is held, and lexically nested acquisitions must
    not form a lock-order cycle anywhere in the project.  Mirrors the
    runtime graph built by :mod:`repro.concurrency`.

``engine-purity``
    Nothing reachable from any ``infer()`` call graph may mutate
    ``self`` — inference is shared across batcher threads and replayed
    from the prediction journal, so it must be deterministic and
    side-effect free.

``wire-errors``
    Every structured error code raised by the serving HTTP layer is
    unique, documented in its module's ``ERROR_CODES`` registry, actually
    raised, and referenced by at least one test.

``path-hygiene``
    No ``str()`` coercion or object-interpolating f-string may feed a
    filesystem call; ``os.fspath()`` raises on non-path objects where
    ``str()`` would happily mint a repr-named directory.

``api-surface``
    ``__all__`` entries are bound and unique, and legacy config shims
    (``ServiceConfig``/``EnsembleConfig``) carry deprecation notes.

Adding a rule
-------------

1. Create ``rules/<name>.py`` with a class exposing ``name`` (kebab-case
   string), ``description``, and ``check(project) -> list[Finding]``.
   The :class:`~repro.analysis.walker.Project` argument gives you every
   parsed module plus the shared AST helpers in
   :mod:`repro.analysis.walker`.
2. Register it in ``rules/__init__.py`` via
   :func:`~repro.analysis.engine.register_rule`.
3. Add a fixture module under ``tests/fixtures/lint/`` that the rule
   flags, and a test in ``tests/test_analysis.py`` asserting the finding
   appears in the JSON report.  A rule without a fixture is a rule
   nobody knows works.

Deliberate exceptions are waived per line with ``# lint: allow(<rule>)``;
``git grep 'lint: allow'`` inventories every waiver.

Reports
-------

``repro-lint src/`` prints a text report and exits ``1`` on findings.
``--format json`` / ``--json-report PATH`` emit the stable JSON schema
(``{"version": 1, "modules": N, "rules": [...], "findings": [{"rule",
"path", "line", "message"}, ...]}``) that CI uploads as an artifact.
"""

from .engine import (
    Finding,
    LintReport,
    all_rules,
    register_rule,
    render_json,
    render_text,
    run_rules,
)
from .walker import ModuleInfo, Project, load_project

__all__ = [
    "Finding",
    "LintReport",
    "ModuleInfo",
    "Project",
    "all_rules",
    "load_project",
    "register_rule",
    "render_json",
    "render_text",
    "run_rules",
]
