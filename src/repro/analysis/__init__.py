"""Correctness tooling: a project-invariant linter for the repro code base.

This package is the static half of the correctness gate (the runtime half
is :mod:`repro.concurrency`, enabled with ``REPRO_LOCK_CHECK=1``).  It is
not a style checker — every rule encodes an invariant this project relies
on for correct results, and CI fails when one is violated.

The rules
---------

``lock-discipline``
    No blocking operation (file/socket I/O, ``time.sleep``, subprocess
    spawns, thread joins, bounded-queue puts, serialisation dumps) may
    execute while a lock is held, and lexically nested acquisitions must
    not form a lock-order cycle anywhere in the project.  Mirrors the
    runtime graph built by :mod:`repro.concurrency`.

``engine-purity``
    Nothing reachable from any ``infer()`` call graph may mutate
    ``self`` — inference is shared across batcher threads and replayed
    from the prediction journal, so it must be deterministic and
    side-effect free.

``wire-errors``
    Every structured error code raised by the serving HTTP layer is
    unique, documented in its module's ``ERROR_CODES`` registry, actually
    raised, and referenced by at least one test.

``path-hygiene``
    No ``str()`` coercion or object-interpolating f-string may feed a
    filesystem call; ``os.fspath()`` raises on non-path objects where
    ``str()`` would happily mint a repr-named directory.

``api-surface``
    ``__all__`` entries are bound and unique, and legacy config shims
    (``ServiceConfig``/``EnsembleConfig``) carry deprecation notes.

``rpc-parity``
    The replica pool stays a faithful hub mirror: every public
    ``ModelHub`` method has a call-compatible ``ReplicaSupervisor``
    counterpart (deliberate gaps declared in ``MIRROR_EXEMPT`` /
    ``MIRROR_EXTRA`` on the supervisor class, themselves audited for
    staleness), and every ``OP_*`` constant, admin action, and
    introspection question dispatched supervisor-side is handled
    worker-side — and vice versa, so dead protocol surface is drift too.

``exception-codec``
    Every exception type raise-reachable from the replica worker's op
    handlers has its own ``_KINDS`` entry, kinds are unique, subclass
    entries precede their bases (first ``isinstance`` match wins when
    encoding), and ``decode_exception`` covers every encode kind — so a
    typed error is never silently demoted crossing the pipe.

``pickle-safety``
    The pipe RPC surface is declared in ``WIRE_TYPES`` next to the
    codec, and each declared class (transitively, through instance
    attributes and dataclass field annotations) is free of process-local
    state — locks, threads, executors, open files, lambdas, generators —
    that would explode inside a pickle call under load.

``route-registry``
    Every route the HTTP dispatcher serves is declared in the
    ``ROUTES`` table in :mod:`repro.serving.http` with a non-empty
    description, every table entry is actually served, and every route
    template is referenced by at least one test — the ``wire-errors``
    registry idiom extended to the URL surface.

Adding a cross-boundary rule
----------------------------

The last four rules share a recipe worth copying: pick the *declarative
anchor* (a table like ``_KINDS``/``WIRE_TYPES``/``ROUTES``, or a class
pair like hub/supervisor), parse both sides of the boundary with the
class/signature index in :mod:`repro.analysis.walker`
(:class:`~repro.analysis.walker.ClassIndex` for hierarchy questions,
:func:`~repro.analysis.walker.public_surface` for API shape,
:class:`~repro.analysis.walker.MethodIndex` for reachability), and
report drift in *both* directions — a handler nobody dispatches is as
much a bug as a dispatch nobody handles.  Keep resolution name-based and
conservative: ambiguous names resolve to nothing, because a rule that
false-positives on the real tree gets waived into uselessness.

Adding a rule
-------------

1. Create ``rules/<name>.py`` with a class exposing ``name`` (kebab-case
   string), ``description``, and ``check(project) -> list[Finding]``.
   The :class:`~repro.analysis.walker.Project` argument gives you every
   parsed module plus the shared AST helpers in
   :mod:`repro.analysis.walker`.
2. Register it in ``rules/__init__.py`` via
   :func:`~repro.analysis.engine.register_rule`.
3. Add a fixture module under ``tests/fixtures/lint/`` that the rule
   flags, and a test in ``tests/test_analysis.py`` asserting the finding
   appears in the JSON report.  A rule without a fixture is a rule
   nobody knows works.

Deliberate exceptions are waived per line with ``# lint: allow(<rule>)``;
``repro-lint --waivers <paths>`` inventories every pragma with its
rule, path, line, and verdict.  A waiver that no longer suppresses
anything — or names a rule that does not exist — is reported as a
``stale-waiver`` finding, so exceptions rot loudly.

Incremental engine
------------------

The cache under ``.repro-lint-cache/`` (gitignored) is on by default:
per-module ASTs are keyed on ``(content_hash, parser_version)`` and the
full findings report on the project fingerprint (file hashes + active
rules + a digest of this package's own sources), so a byte-identical
re-run is answered without parsing or rule execution.  Knobs:
``--cache-dir DIR`` relocates it, ``--no-cache`` bypasses it, and
``--changed-only`` intersects the targets with ``git diff HEAD`` plus
untracked files for fast pre-commit sweeps.  Cache effectiveness is
observable (and CI-asserted) via the ``cache`` counters in the JSON
report — never via wall clock.

Reports
-------

``repro-lint src/`` prints a text report and exits ``1`` on findings.
``--format json`` / ``--json-report PATH`` emit the stable JSON schema
(``{"version": 2, "modules": N, "rules": [...], "findings": [{"rule",
"path", "line", "message"}, ...], "waivers": [{"path", "line", "rule",
"active"}, ...], "cache": {"enabled", "findings_hit", "ast_hits",
"ast_misses"}}``) that CI uploads as an artifact.
"""

from .cache import CacheStats, LintCache
from .engine import (
    Finding,
    LintReport,
    Waiver,
    all_rules,
    register_rule,
    render_json,
    render_text,
    render_waivers,
    run_rules,
)
from .walker import ModuleInfo, Project, load_project

__all__ = [
    "CacheStats",
    "Finding",
    "LintCache",
    "LintReport",
    "ModuleInfo",
    "Project",
    "Waiver",
    "all_rules",
    "load_project",
    "register_rule",
    "render_json",
    "render_text",
    "render_waivers",
    "run_rules",
]
