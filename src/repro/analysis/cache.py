"""Content-hash incremental cache for the lint engine.

Two layers, both keyed so that *any* relevant change misses cleanly:

* **AST cache** — one pickled ``ast.Module`` per source file, keyed on
  ``(content_hash, parser_version)``: the ck3raven ``ast_cache`` idiom.
  The parser version folds in the Python minor version (AST shapes
  change between releases), so an interpreter upgrade invalidates
  everything instead of unpickling stale node classes.
* **Findings cache** — the full JSON report of one run, keyed on the
  *project fingerprint*: the sorted ``(path, content_hash)`` list of
  every linted file, the active rule names, and ``rules_version`` — a
  digest of the :mod:`repro.analysis` package sources themselves, so
  editing a rule (or the engine) invalidates every cached verdict.

A findings hit answers the whole run from one file read per source (the
hash pass) with zero parsing and zero rule execution — that is the
measurable speedup CI asserts via the ``cache`` counters in the JSON
report, never via wall clock.

Cache files live under ``.repro-lint-cache/`` (gitignored), are written
atomically (tmp + ``os.replace``), and every load tolerates a corrupt or
concurrently-pruned file by treating it as a miss — the cache can only
make a run faster, never wrong or failing.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import pickle
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: bump to invalidate every cache entry on disk (format changes).
CACHE_FORMAT_VERSION = 1

#: default cache location, relative to the repo root (or cwd).
DEFAULT_CACHE_DIR = ".repro-lint-cache"

#: soft ceiling on cached entries per layer; oldest (by mtime) pruned.
_MAX_ENTRIES = 4096


@dataclass
class CacheStats:
    """Counters of one run, surfaced in the JSON report (``"cache"``)."""

    enabled: bool = False
    findings_hit: bool = False
    ast_hits: int = 0
    ast_misses: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "enabled": self.enabled,
            "findings_hit": self.findings_hit,
            "ast_hits": self.ast_hits,
            "ast_misses": self.ast_misses,
        }


def content_hash(source: str) -> str:
    """The content key of one source file."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _analysis_package_fingerprint() -> str:
    """Digest of every ``.py`` file of :mod:`repro.analysis` itself —
    the ``rules_version`` half of the cache key."""
    package_dir = os.path.dirname(os.path.abspath(__file__))
    hasher = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(package_dir):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            hasher.update(os.path.relpath(path, package_dir).encode("utf-8"))
            try:
                with open(path, "rb") as handle:
                    hasher.update(handle.read())
            except OSError:
                hasher.update(b"<unreadable>")
    return hasher.hexdigest()


class LintCache:
    """The on-disk incremental cache one :func:`run_rules` call consults."""

    def __init__(self, root: str):
        self.root = os.fspath(root)
        self.parser_version = (
            f"py{sys.version_info[0]}.{sys.version_info[1]}-v{CACHE_FORMAT_VERSION}"
        )
        self.rules_version = _analysis_package_fingerprint()

    # ----------------------------------------------------------- plumbing
    def _path(self, kind: str, key: str, suffix: str) -> str:
        return os.path.join(self.root, f"{kind}-{key}{suffix}")

    def _write_atomic(self, path: str, data: bytes) -> None:
        try:
            os.makedirs(self.root, exist_ok=True)
            tmp = f"{path}.tmp-{os.getpid()}"
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except OSError:
            return  # a failed store is a future miss, never an error
        self._prune()

    def _prune(self) -> None:
        try:
            entries = [
                os.path.join(self.root, name)
                for name in os.listdir(self.root)
                if name.startswith(("ast-", "findings-"))
            ]
            if len(entries) <= _MAX_ENTRIES:
                return
            entries.sort(key=lambda path: os.path.getmtime(path))
            for path in entries[: len(entries) - _MAX_ENTRIES]:
                os.unlink(path)
        except OSError:
            return

    # ---------------------------------------------------------- AST layer
    def load_ast(self, source_hash: str) -> Optional[ast.Module]:
        path = self._path("ast", f"{source_hash}-{self.parser_version}", ".pkl")
        try:
            with open(path, "rb") as handle:
                tree = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError, ValueError):
            return None
        return tree if isinstance(tree, ast.Module) else None

    def store_ast(self, source_hash: str, tree: ast.Module) -> None:
        path = self._path("ast", f"{source_hash}-{self.parser_version}", ".pkl")
        try:
            data = pickle.dumps(tree, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, RecursionError):
            return
        self._write_atomic(path, data)

    # ----------------------------------------------------- findings layer
    def findings_key(
        self, rule_names: Sequence[str], entries: Sequence[Tuple[str, str]]
    ) -> str:
        hasher = hashlib.sha256()
        hasher.update(self.rules_version.encode("utf-8"))
        hasher.update(self.parser_version.encode("utf-8"))
        for name in sorted(rule_names):
            hasher.update(b"\x1f" + name.encode("utf-8"))
        for path, source_hash in sorted(entries):
            hasher.update(b"\x1e" + path.encode("utf-8", "replace"))
            hasher.update(b"\x1f" + source_hash.encode("utf-8"))
        return hasher.hexdigest()

    def load_findings(self, key: str) -> Optional[Dict[str, object]]:
        path = self._path("findings", key, ".json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def store_findings(self, key: str, payload: Dict[str, object]) -> None:
        path = self._path("findings", key, ".json")
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._write_atomic(path, data)


def default_cache_dir(paths: Sequence[str]) -> str:
    """``<repo root>/.repro-lint-cache`` for the first lintable path (the
    cwd's root when none resolves)."""
    from .walker import find_repo_root

    for path in paths:
        if os.path.exists(path):
            root = find_repo_root(path)
            if root is not None:
                return os.path.join(root, DEFAULT_CACHE_DIR)
    return os.path.join(os.getcwd(), DEFAULT_CACHE_DIR)


__all__ = [
    "CacheStats",
    "LintCache",
    "DEFAULT_CACHE_DIR",
    "content_hash",
    "default_cache_dir",
]
