"""``repro-lint`` — the command-line front end of :mod:`repro.analysis`.

Usage::

    repro-lint src/                      # text report, exit 1 on findings
    repro-lint --format json src/        # JSON report on stdout
    repro-lint --json-report out.json src/   # text to stdout, JSON to file
    repro-lint --rule lock-discipline src/   # run a subset of rules
    repro-lint --list-rules              # show the registered rules

Exit codes: ``0`` no findings, ``1`` findings reported, ``2`` usage
error (unknown rule, no such path).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from .engine import all_rules, render_json, render_text, run_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Project-invariant linter: lock discipline, inference purity, "
            "wire error-code registry, path hygiene, API surface."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format written to stdout (default: text)",
    )
    parser.add_argument(
        "--json-report",
        metavar="PATH",
        default=None,
        help="also write the JSON report to PATH",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="NAME",
        default=None,
        help="run only the named rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.name}: {rule.description}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2

    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        for path in missing:
            print(f"repro-lint: error: no such path: {path}", file=sys.stderr)
        return 2

    if args.rule:
        by_name = {rule.name: rule for rule in rules}
        unknown = [name for name in args.rule if name not in by_name]
        if unknown:
            known = ", ".join(sorted(by_name))
            for name in unknown:
                print(
                    f"repro-lint: error: unknown rule {name!r} (known: {known})",
                    file=sys.stderr,
                )
            return 2
        rules = [by_name[name] for name in args.rule]

    report = run_rules(args.paths, rules=rules)

    if args.json_report:
        directory = os.path.dirname(os.path.abspath(args.json_report))
        os.makedirs(directory, exist_ok=True)
        with open(args.json_report, "w", encoding="utf-8") as handle:
            json.dump(render_json(report), handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.format == "json":
        json.dump(render_json(report), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(render_text(report))

    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
