"""``repro-lint`` — the command-line front end of :mod:`repro.analysis`.

Usage::

    repro-lint src/                      # text report, exit 1 on findings
    repro-lint --format json src/        # JSON report on stdout
    repro-lint --json-report out.json src/   # text to stdout, JSON to file
    repro-lint --rule lock-discipline src/   # run a subset of rules
    repro-lint --changed-only src/       # only files the git diff touches
    repro-lint --waivers src/            # inventory the allow() pragmas
    repro-lint --no-cache src/           # bypass .repro-lint-cache/
    repro-lint --list-rules              # show the registered rules

The incremental cache is on by default (``.repro-lint-cache/`` under the
repo root); a byte-identical re-run is answered from it without parsing
or re-checking anything — the ``cache`` section of the JSON report says
which path was taken.  ``--changed-only`` intersects the targets with
``git diff HEAD`` plus untracked files: right for a fast pre-commit
sweep, while CI keeps linting the full tree (project-wide rules only see
the subset they are given).

Exit codes: ``0`` no findings, ``1`` findings reported, ``2`` usage
error (unknown rule, no such path, ``--changed-only`` outside git).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import List, Optional, Sequence, Set

from .cache import LintCache, default_cache_dir
from .engine import (
    all_rules,
    render_json,
    render_text,
    render_waivers,
    run_rules,
)
from .walker import find_repo_root, iter_python_files


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Project-invariant linter: lock discipline, inference purity, "
            "wire error-code registry, path hygiene, API surface, and the "
            "cross-process contracts (rpc-parity, exception-codec, "
            "pickle-safety, route-registry)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format written to stdout (default: text)",
    )
    parser.add_argument(
        "--json-report",
        metavar="PATH",
        default=None,
        help="also write the JSON report to PATH",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="NAME",
        default=None,
        help="run only the named rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only files touched by the git diff (plus untracked)",
    )
    parser.add_argument(
        "--waivers",
        action="store_true",
        help="inventory every 'lint: allow' pragma (rule/path/line) and exit 0",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="incremental cache location (default: <repo>/.repro-lint-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache for this run",
    )
    return parser


def _git_changed_files(root: str) -> Optional[Set[str]]:
    """Absolute paths of files changed vs HEAD plus untracked files, or
    ``None`` when git is unavailable / not a checkout."""
    changed: Set[str] = set()
    for args in (
        ["git", "-C", root, "diff", "--name-only", "HEAD", "--"],
        ["git", "-C", root, "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            result = subprocess.run(
                args, capture_output=True, text=True, check=True, timeout=30
            )
        except (OSError, subprocess.SubprocessError):
            return None
        for line in result.stdout.splitlines():
            line = line.strip()
            if line:
                changed.add(os.path.abspath(os.path.join(root, line)))
    return changed


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.name}: {rule.description}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2

    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        for path in missing:
            print(f"repro-lint: error: no such path: {path}", file=sys.stderr)
        return 2

    if args.rule:
        by_name = {rule.name: rule for rule in rules}
        unknown = [name for name in args.rule if name not in by_name]
        if unknown:
            known = ", ".join(sorted(by_name))
            for name in unknown:
                print(
                    f"repro-lint: error: unknown rule {name!r} (known: {known})",
                    file=sys.stderr,
                )
            return 2
        rules = [by_name[name] for name in args.rule]

    lint_paths: List[str] = list(args.paths)
    if args.changed_only:
        root = find_repo_root(args.paths[0]) or os.getcwd()
        changed = _git_changed_files(root)
        if changed is None:
            print(
                "repro-lint: error: --changed-only needs a git checkout",
                file=sys.stderr,
            )
            return 2
        lint_paths = [
            path for path in iter_python_files(args.paths) if path in changed
        ]
        if not lint_paths:
            print("0 changed files under the given paths — nothing to lint")
            return 0

    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or default_cache_dir(args.paths)
        cache = LintCache(cache_dir)

    report = run_rules(lint_paths, rules=rules, cache=cache)

    if args.json_report:
        directory = os.path.dirname(os.path.abspath(args.json_report))
        os.makedirs(directory, exist_ok=True)
        with open(args.json_report, "w", encoding="utf-8") as handle:
            json.dump(render_json(report), handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.waivers:
        if args.format == "json":
            json.dump(render_json(report), sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
        else:
            print(render_waivers(report))
        return 0

    if args.format == "json":
        json.dump(render_json(report), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(render_text(report))

    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
