"""Rule engine for :mod:`repro.analysis`.

A *rule* is any object with a ``name``, a ``description``, and a
``check(project) -> list[Finding]`` method.  The engine parses the target
tree once (:func:`repro.analysis.walker.load_project`), hands the shared
:class:`~repro.analysis.walker.Project` to every registered rule, filters
suppressed findings, and renders the survivors as text or JSON.

Suppression
-----------
A finding is dropped when the flagged source line carries the pragma::

    something_deliberate()  # lint: allow(rule-name)

The pragma names one rule; it never silences the whole line.  Deliberate
exceptions therefore stay greppable — ``git grep 'lint: allow'`` is the
complete inventory of waived invariants.

JSON report schema (``render_json``)::

    {
      "version": 1,
      "modules": <int files scanned>,
      "rules": ["lock-discipline", ...],
      "findings": [
        {"rule": ..., "path": ..., "line": <int>, "message": ...},
        ...
      ]
    }
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .walker import Project, load_project

__all__ = [
    "Finding",
    "LintReport",
    "all_rules",
    "register_rule",
    "run_rules",
    "render_json",
    "render_text",
]

_ALLOW_PRAGMA = re.compile(r"lint:\s*allow\(([A-Za-z0-9_*,\s-]+)\)")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source line."""

    rule: str
    path: str
    line: int
    message: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding]
    modules_scanned: int
    rules: List[str]

    @property
    def ok(self) -> bool:
        return not self.findings


_REGISTRY: "Dict[str, object]" = {}


def register_rule(rule: object) -> object:
    """Add a rule to the default set (usable as a class decorator)."""
    instance = rule() if isinstance(rule, type) else rule
    name = getattr(instance, "name", None)
    if not name:
        raise ValueError("rules must expose a non-empty 'name'")
    _REGISTRY[name] = instance
    return rule


def all_rules() -> List[object]:
    """The registered rules, importing the built-in set on first use."""
    from . import rules as _builtin  # noqa: F401  (import registers them)

    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def _suppressed(finding: Finding, sources: Dict[str, List[str]]) -> bool:
    lines = sources.get(finding.path)
    if not lines or not (1 <= finding.line <= len(lines)):
        return False
    match = _ALLOW_PRAGMA.search(lines[finding.line - 1])
    if match is None:
        return False
    allowed = {part.strip() for part in match.group(1).split(",")}
    return finding.rule in allowed or "*" in allowed


def run_rules(
    paths: Sequence[str], rules: Optional[Sequence[object]] = None
) -> LintReport:
    """Lint ``paths`` with ``rules`` (default: every registered rule)."""
    active = list(rules) if rules is not None else all_rules()
    project, failures = load_project(paths)
    findings: List[Finding] = [
        Finding(
            rule="syntax",
            path=path,
            line=exc.lineno or 1,
            message=f"syntax error: {exc.msg}",
        )
        for path, exc in failures
    ]
    for rule in active:
        findings.extend(rule.check(project))
    sources = {module.path: module.lines for module in project.modules}
    findings = [f for f in findings if not _suppressed(f, sources)]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return LintReport(
        findings=findings,
        modules_scanned=len(project.modules),
        rules=[getattr(rule, "name", "?") for rule in active],
    )


def render_text(report: LintReport) -> str:
    lines = [
        f"{finding.path}:{finding.line}: [{finding.rule}] {finding.message}"
        for finding in report.findings
    ]
    noun = "finding" if len(report.findings) == 1 else "findings"
    lines.append(
        f"{len(report.findings)} {noun} in {report.modules_scanned} modules "
        f"({len(report.rules)} rules)"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> Dict[str, object]:
    return {
        "version": 1,
        "modules": report.modules_scanned,
        "rules": list(report.rules),
        "findings": [finding.as_dict() for finding in report.findings],
    }


def dump_json(report: LintReport) -> str:
    return json.dumps(render_json(report), indent=2, sort_keys=True)


# Re-exported so rules can do ``from ..engine import Finding, Project``.
Project = Project
