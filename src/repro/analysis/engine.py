"""Rule engine for :mod:`repro.analysis`.

A *rule* is any object with a ``name``, a ``description``, and a
``check(project) -> list[Finding]`` method.  The engine parses the target
tree once, hands the shared :class:`~repro.analysis.walker.Project` to
every registered rule, filters suppressed findings, and renders the
survivors as text or JSON.  With a :class:`~repro.analysis.cache.LintCache`
attached, parsing is answered from the AST cache per unchanged file and a
byte-identical re-run is answered entirely from the findings cache —
see :mod:`repro.analysis.cache` for the keying.

Suppression
-----------
A finding is dropped when the flagged source line carries the pragma
(in a real comment — docstrings do not count)::

    something_deliberate()  # lint: allow(rule-name)

The pragma names one rule; it never silences the whole line.  Deliberate
exceptions therefore stay greppable — ``git grep 'lint: allow'`` is the
complete inventory of waived invariants — and *audited*: a pragma that no
longer suppresses anything is reported as a ``stale-waiver`` finding (as
is one naming a rule that does not exist), so waivers rot loudly instead
of outliving the code they excused.  Stale-waiver findings are not
themselves waivable.

JSON report schema (``render_json``)::

    {
      "version": 2,
      "modules": <int files scanned>,
      "rules": ["lock-discipline", ...],
      "findings": [
        {"rule": ..., "path": ..., "line": <int>, "message": ...},
        ...
      ],
      "waivers": [
        {"path": ..., "line": <int>, "rule": ..., "active": <bool>},
        ...
      ],
      "cache": {"enabled": ..., "findings_hit": ..., "ast_hits": ...,
                "ast_misses": ...}
    }
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .cache import CacheStats, LintCache, content_hash
from .walker import (
    ModuleInfo,
    Project,
    find_repo_root,
    iter_python_files,
    module_name_for,
)

__all__ = [
    "Finding",
    "LintReport",
    "Waiver",
    "STALE_WAIVER_RULE",
    "all_rules",
    "register_rule",
    "run_rules",
    "render_json",
    "render_text",
    "render_waivers",
]

_ALLOW_PRAGMA = re.compile(r"lint:\s*allow\(([A-Za-z0-9_*,\s-]+)\)")

#: pseudo-rule (like ``syntax``) under which rotted pragmas are reported.
STALE_WAIVER_RULE = "stale-waiver"


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source line."""

    rule: str
    path: str
    line: int
    message: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class Waiver:
    """One rule name waived by a ``# lint: allow(...)`` pragma."""

    path: str
    line: int
    rule: str
    #: did this waiver suppress at least one finding this run?
    active: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "active": self.active,
        }


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding]
    modules_scanned: int
    rules: List[str]
    waivers: List[Waiver] = field(default_factory=list)
    cache: CacheStats = field(default_factory=CacheStats)

    @property
    def ok(self) -> bool:
        return not self.findings


_REGISTRY: "Dict[str, object]" = {}


def register_rule(rule: object) -> object:
    """Add a rule to the default set (usable as a class decorator)."""
    instance = rule() if isinstance(rule, type) else rule
    name = getattr(instance, "name", None)
    if not name:
        raise ValueError("rules must expose a non-empty 'name'")
    _REGISTRY[name] = instance
    return rule


def all_rules() -> List[object]:
    """The registered rules, importing the built-in set on first use."""
    from . import rules as _builtin  # noqa: F401  (import registers them)

    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def _collect_waivers(module: ModuleInfo) -> List[Waiver]:
    """Every rule name waived by a *comment* pragma in the module.

    Tokenizing (rather than grepping lines) keeps docstrings that merely
    talk about the pragma syntax from counting as waivers."""
    waivers: List[Waiver] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(module.source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return waivers
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_PRAGMA.search(token.string)
        if match is None:
            continue
        for part in match.group(1).split(","):
            name = part.strip()
            if name:
                waivers.append(
                    Waiver(path=module.path, line=token.start[0], rule=name)
                )
    return waivers


def _apply_waivers(
    findings: List[Finding],
    modules: List[ModuleInfo],
    active_rule_names: Sequence[str],
) -> Tuple[List[Finding], List[Waiver]]:
    """Drop suppressed findings, mark the waivers that earned their keep,
    and report the stale ones."""
    waivers: List[Waiver] = []
    for module in modules:
        waivers.extend(_collect_waivers(module))
    by_site: Dict[Tuple[str, int], List[Waiver]] = {}
    for waiver in waivers:
        by_site.setdefault((waiver.path, waiver.line), []).append(waiver)

    kept: List[Finding] = []
    for finding in findings:
        suppressed = False
        for waiver in by_site.get((finding.path, finding.line), []):
            if waiver.rule == finding.rule or waiver.rule == "*":
                waiver.active = True
                suppressed = True
        if not suppressed:
            kept.append(finding)

    active_names = set(active_rule_names)
    registered = {getattr(rule, "name", "?") for rule in all_rules()}
    full_run = registered <= active_names
    for waiver in waivers:
        if waiver.active:
            continue
        if waiver.rule == "*":
            if full_run:
                kept.append(
                    Finding(
                        rule=STALE_WAIVER_RULE,
                        path=waiver.path,
                        line=waiver.line,
                        message=(
                            "stale waiver: 'lint: allow(*)' no longer "
                            "suppresses anything — remove the pragma"
                        ),
                    )
                )
        elif waiver.rule not in registered:
            kept.append(
                Finding(
                    rule=STALE_WAIVER_RULE,
                    path=waiver.path,
                    line=waiver.line,
                    message=(
                        f"waiver names unknown rule {waiver.rule!r} — "
                        "fix the pragma or remove it"
                    ),
                )
            )
        elif waiver.rule in active_names:
            kept.append(
                Finding(
                    rule=STALE_WAIVER_RULE,
                    path=waiver.path,
                    line=waiver.line,
                    message=(
                        f"stale waiver: {waiver.rule!r} no longer fires on "
                        "this line — remove the pragma"
                    ),
                )
            )
    return kept, waivers


def _read_sources(paths: Sequence[str]) -> List[Tuple[str, str]]:
    sources: List[Tuple[str, str]] = []
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                sources.append((path, handle.read()))
        except OSError:
            continue
    return sources


def _report_from_payload(
    payload: Dict[str, object], stats: CacheStats
) -> Optional[LintReport]:
    """Rebuild a :class:`LintReport` from a cached JSON payload (None when
    the payload does not have the expected shape)."""
    try:
        findings = [
            Finding(
                rule=str(entry["rule"]),
                path=str(entry["path"]),
                line=int(entry["line"]),
                message=str(entry["message"]),
            )
            for entry in payload["findings"]
        ]
        waivers = [
            Waiver(
                path=str(entry["path"]),
                line=int(entry["line"]),
                rule=str(entry["rule"]),
                active=bool(entry["active"]),
            )
            for entry in payload["waivers"]
        ]
        return LintReport(
            findings=findings,
            modules_scanned=int(payload["modules"]),
            rules=[str(name) for name in payload["rules"]],
            waivers=waivers,
            cache=stats,
        )
    except (KeyError, TypeError, ValueError):
        return None


def run_rules(
    paths: Sequence[str],
    rules: Optional[Sequence[object]] = None,
    cache: Optional[LintCache] = None,
) -> LintReport:
    """Lint ``paths`` with ``rules`` (default: every registered rule),
    optionally answering from / filling ``cache``."""
    active = list(rules) if rules is not None else all_rules()
    rule_names = [getattr(rule, "name", "?") for rule in active]
    stats = CacheStats(enabled=cache is not None)

    sources = _read_sources(paths)
    findings_key = None
    hashes: Dict[str, str] = {}
    if cache is not None:
        hashes = {path: content_hash(text) for path, text in sources}
        findings_key = cache.findings_key(rule_names, sorted(hashes.items()))
        payload = cache.load_findings(findings_key)
        if payload is not None:
            stats.findings_hit = True
            report = _report_from_payload(payload, stats)
            if report is not None:
                return report
            stats.findings_hit = False  # malformed entry: recompute

    modules: List[ModuleInfo] = []
    failures: List[Tuple[str, SyntaxError]] = []
    for path, text in sources:
        tree = None
        if cache is not None:
            tree = cache.load_ast(hashes[path])
        if tree is not None:
            stats.ast_hits += 1
        else:
            try:
                tree = ast.parse(text, filename=path)
            except SyntaxError as exc:
                failures.append((path, exc))
                continue
            if cache is not None:
                stats.ast_misses += 1
                cache.store_ast(hashes[path], tree)
        modules.append(
            ModuleInfo(
                path=path,
                name=module_name_for(path),
                tree=tree,
                source=text,
                lines=text.splitlines(),
            )
        )
    root = find_repo_root(modules[0].path) if modules else None
    project = Project(modules=modules, root=root)

    findings: List[Finding] = [
        Finding(
            rule="syntax",
            path=path,
            line=exc.lineno or 1,
            message=f"syntax error: {exc.msg}",
        )
        for path, exc in failures
    ]
    for rule in active:
        findings.extend(rule.check(project))
    findings, waivers = _apply_waivers(findings, modules, rule_names)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    waivers.sort(key=lambda w: (w.path, w.line, w.rule))
    report = LintReport(
        findings=findings,
        modules_scanned=len(modules),
        rules=rule_names,
        waivers=waivers,
        cache=stats,
    )
    if cache is not None and findings_key is not None:
        cache.store_findings(findings_key, render_json(report))
    return report


def render_text(report: LintReport) -> str:
    lines = [
        f"{finding.path}:{finding.line}: [{finding.rule}] {finding.message}"
        for finding in report.findings
    ]
    noun = "finding" if len(report.findings) == 1 else "findings"
    summary = (
        f"{len(report.findings)} {noun} in {report.modules_scanned} modules "
        f"({len(report.rules)} rules)"
    )
    if report.cache.enabled and report.cache.findings_hit:
        summary += " [cached]"
    lines.append(summary)
    return "\n".join(lines)


def render_waivers(report: LintReport) -> str:
    """The ``--waivers`` inventory: every pragma with its verdict."""
    lines = [
        f"{waiver.path}:{waiver.line}: allow({waiver.rule}) — "
        f"{'active' if waiver.active else 'stale'}"
        for waiver in report.waivers
    ]
    active = sum(1 for waiver in report.waivers if waiver.active)
    noun = "waiver" if len(report.waivers) == 1 else "waivers"
    lines.append(
        f"{len(report.waivers)} {noun} "
        f"({active} active, {len(report.waivers) - active} stale)"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> Dict[str, object]:
    return {
        "version": 2,
        "modules": report.modules_scanned,
        "rules": list(report.rules),
        "findings": [finding.as_dict() for finding in report.findings],
        "waivers": [waiver.as_dict() for waiver in report.waivers],
        "cache": report.cache.as_dict(),
    }


def dump_json(report: LintReport) -> str:
    return json.dumps(render_json(report), indent=2, sort_keys=True)


# Re-exported so rules can do ``from ..engine import Finding, Project``.
Project = Project
