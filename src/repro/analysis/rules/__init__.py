"""Built-in rules for :mod:`repro.analysis`.

Importing this package registers every built-in rule with the engine
(:func:`repro.analysis.engine.register_rule`), so ``all_rules()`` sees
them without any explicit wiring.  Adding a rule is: write a class with
``name``/``description``/``check(project)``, instantiate it here via
``register_rule``, add a fixture under ``tests/fixtures/lint/`` that it
flags, and assert on the fixture in ``tests/test_analysis.py``.

The cross-boundary rules (rpc-parity, exception-codec, pickle-safety,
route-registry) additionally lean on the class/signature index in
:mod:`repro.analysis.walker` — see the package docstring for the recipe.
"""

from ..engine import register_rule
from .api_surface import ApiSurfaceRule
from .exception_codec import ExceptionCodecRule
from .lock_discipline import LockDisciplineRule
from .path_hygiene import PathHygieneRule
from .pickle_safety import PickleSafetyRule
from .purity import EnginePurityRule
from .route_registry import RouteRegistryRule
from .rpc_parity import RpcParityRule
from .wire_errors import WireErrorsRule

__all__ = [
    "ApiSurfaceRule",
    "EnginePurityRule",
    "ExceptionCodecRule",
    "LockDisciplineRule",
    "PathHygieneRule",
    "PickleSafetyRule",
    "RouteRegistryRule",
    "RpcParityRule",
    "WireErrorsRule",
]

for _rule in (
    ApiSurfaceRule,
    EnginePurityRule,
    ExceptionCodecRule,
    LockDisciplineRule,
    PathHygieneRule,
    PickleSafetyRule,
    RouteRegistryRule,
    RpcParityRule,
    WireErrorsRule,
):
    register_rule(_rule)
del _rule
