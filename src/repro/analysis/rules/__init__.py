"""Built-in rules for :mod:`repro.analysis`.

Importing this package registers every built-in rule with the engine
(:func:`repro.analysis.engine.register_rule`), so ``all_rules()`` sees
them without any explicit wiring.  Adding a rule is: write a class with
``name``/``description``/``check(project)``, instantiate it here via
``register_rule``, add a fixture under ``tests/fixtures/lint/`` that it
flags, and assert on the fixture in ``tests/test_analysis.py``.
"""

from ..engine import register_rule
from .api_surface import ApiSurfaceRule
from .lock_discipline import LockDisciplineRule
from .path_hygiene import PathHygieneRule
from .purity import EnginePurityRule
from .wire_errors import WireErrorsRule

__all__ = [
    "ApiSurfaceRule",
    "EnginePurityRule",
    "LockDisciplineRule",
    "PathHygieneRule",
    "WireErrorsRule",
]

for _rule in (
    ApiSurfaceRule,
    EnginePurityRule,
    LockDisciplineRule,
    PathHygieneRule,
    WireErrorsRule,
):
    register_rule(_rule)
del _rule
