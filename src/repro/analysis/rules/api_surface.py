"""``api-surface``: ``__all__`` tells the truth, deprecations are labelled.

Two checks:

* **``__all__`` consistency** — every name exported via a module's
  ``__all__`` must be bound at module top level (a def, class,
  assignment, or import).  For package ``__init__`` files a name also
  counts as bound when a sibling submodule of that name exists on disk,
  matching how ``from package import *`` resolves submodule names.
  Duplicate entries are flagged too: they usually mean a merge went
  sideways.

* **Deprecation notes** — legacy config shims (``ServiceConfig``,
  ``EnsembleConfig``) must say so in their docstring.  Anyone reading
  the class should learn it is a compatibility surface, not the API to
  build on.
"""

from __future__ import annotations

import ast
import os
from typing import List, Optional, Set

from ..engine import Finding
from ..walker import ModuleInfo, Project

_DEPRECATED_SHIMS = {"ServiceConfig", "EnsembleConfig"}


def _exported_names(module: ModuleInfo) -> Optional[List[ast.Constant]]:
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in node.targets
        ):
            if isinstance(node.value, (ast.List, ast.Tuple)):
                return [
                    element
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ]
    return None


def _top_level_bindings(module: ModuleInfo) -> Set[str]:
    bound: Set[str] = set()
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            bound.add(element.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.If, ast.Try)):
            # typing/compat guards: collect bindings from every branch
            for sub in ast.walk(node):
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    bound.add(sub.name)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            bound.add(target.id)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name != "*":
                            bound.add(alias.asname or alias.name.split(".")[0])
    return bound


def _sibling_submodule_exists(module: ModuleInfo, name: str) -> bool:
    if not module.path.endswith("__init__.py"):
        return False
    package_dir = os.path.dirname(module.path)
    return os.path.isfile(os.path.join(package_dir, f"{name}.py")) or os.path.isdir(
        os.path.join(package_dir, name)
    )


class ApiSurfaceRule:
    name = "api-surface"
    description = (
        "__all__ entries are bound and unique; legacy config shims carry a "
        "deprecation note"
    )

    def check(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            exported = _exported_names(module)
            if exported is not None:
                bound = _top_level_bindings(module)
                seen: Set[str] = set()
                for element in exported:
                    name = element.value
                    if name in seen:
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=module.path,
                                line=element.lineno,
                                message=f"duplicate __all__ entry {name!r}",
                            )
                        )
                        continue
                    seen.add(name)
                    if name not in bound and not _sibling_submodule_exists(
                        module, name
                    ):
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=module.path,
                                line=element.lineno,
                                message=(
                                    f"__all__ exports {name!r} but the module "
                                    "never binds it"
                                ),
                            )
                        )
            findings.extend(self._check_deprecations(module))
        return findings

    def _check_deprecations(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name in _DEPRECATED_SHIMS
            ):
                docstring = ast.get_docstring(node) or ""
                if "deprecat" not in docstring.lower():
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=module.path,
                            line=node.lineno,
                            message=(
                                f"{node.name} is a legacy config shim but its "
                                "docstring carries no deprecation note"
                            ),
                        )
                    )
        return findings
