"""``exception-codec``: the pipe error codec must cover what workers raise.

Exceptions cross the replica pipe as ``{"kind": ..., "message": ...}``
payloads encoded by walking the ``_KINDS`` table in
:mod:`repro.serving.replica.transport` and taking the *first*
``isinstance`` match.  That design has three silent failure modes, each
of which demotes a typed error to a generic one so hub-side handling
(HTTP status mapping, retry hints) quietly degrades:

* an exception type raise-reachable from the worker's op handlers with
  no ``_KINDS`` entry of its own decodes as whichever base class matches
  first (or as the catch-all internal kind);
* a subclass listed *after* its base class can never win the isinstance
  scan — the entry is dead on arrival;
* an encode kind with no decoder falls into the unknown-kind fallback.

This rule parses ``_KINDS`` wherever it is defined, checks kind
uniqueness and subclass-before-base ordering against the project class
hierarchy, checks that ``decode_exception`` covers every encode kind,
and walks the call graph from the worker's methods to every ``raise``
site, flagging raised project exception types that are encodable only
via a base class.  The fix is always an explicit ``_KINDS`` entry (or
making the type a non-wire detail), never a waiver.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..engine import Finding
from ..walker import (
    ClassIndex,
    MethodIndex,
    ModuleInfo,
    Project,
    raised_names,
    terminal_attr,
)

KINDS_NAME = "_KINDS"
WORKER_CLASS = "ReplicaWorker"
ENCODE_FUNC = "encode_exception"
DECODE_FUNC = "decode_exception"


def _find_kinds(
    module: ModuleInfo,
) -> Optional[Tuple[ast.AST, List[Tuple[str, str, int]]]]:
    """The top-level ``_KINDS`` table as ``(node, [(kind, type name, line)])``.

    Handles both plain and annotated assignments; malformed entries are
    skipped rather than crashing the rule."""
    for node in module.tree.body:
        value = None
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == KINDS_NAME for t in node.targets
            ):
                value = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == KINDS_NAME:
                value = node.value
        if value is None:
            continue
        entries: List[Tuple[str, str, int]] = []
        if isinstance(value, (ast.Tuple, ast.List)):
            for element in value.elts:
                if not isinstance(element, (ast.Tuple, ast.List)):
                    continue
                if len(element.elts) != 2:
                    continue
                kind_node, type_node = element.elts
                type_name = terminal_attr(type_node)
                if (
                    isinstance(kind_node, ast.Constant)
                    and isinstance(kind_node.value, str)
                    and type_name is not None
                ):
                    entries.append((kind_node.value, type_name, element.lineno))
        return node, entries
    return None


def _decode_covered_kinds(module: ModuleInfo) -> Optional[Set[str]]:
    """The kinds ``decode_exception`` can map back to a type, or ``None``
    when decode iterates ``_KINDS`` itself (full coverage by construction).

    Full coverage is recognised when decode reads a module-level mapping
    built by comprehension over ``_KINDS`` — the shipped idiom."""
    derived: Set[str] = set()
    for node in module.tree.body:
        value = None
        targets: List[str] = []
        if isinstance(node, ast.Assign):
            value = node.value
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            value = node.value
            targets = [node.target.id]
        if value is None or not targets:
            continue
        for sub in ast.walk(value):
            if isinstance(sub, (ast.DictComp, ast.ListComp, ast.SetComp)):
                for gen in sub.generators:
                    if (
                        isinstance(gen.iter, ast.Name)
                        and gen.iter.id == KINDS_NAME
                    ):
                        derived.update(targets)

    decode = None
    for node in module.tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == DECODE_FUNC:
            decode = node
            break
    if decode is None:
        return set()
    kinds: Set[str] = set()
    for sub in ast.walk(decode):
        if isinstance(sub, ast.Name) and sub.id in (derived | {KINDS_NAME}):
            return None  # decode walks the table: covered by construction
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            kinds.add(sub.value)
    return kinds


class ExceptionCodecRule:
    name = "exception-codec"
    description = (
        "every worker-raised exception type has its own _KINDS entry, "
        "ordered subclass-before-base, and decode covers every kind"
    )

    def check(self, project: Project) -> List[Finding]:
        codec_module = None
        found = None
        for module in project.modules:
            found = _find_kinds(module)
            if found is not None:
                codec_module = module
                break
        if codec_module is None or found is None:
            return []
        kinds_node, entries = found
        index = ClassIndex(project)
        findings: List[Finding] = []

        seen_kinds: Dict[str, int] = {}
        for kind, type_name, line in entries:
            if kind in seen_kinds:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=codec_module.path,
                        line=line,
                        message=(
                            f"duplicate codec kind {kind!r} (first defined on "
                            f"line {seen_kinds[kind]}) — the second entry can "
                            "never decode"
                        ),
                    )
                )
            else:
                seen_kinds[kind] = line

        # Subclass-before-base: entry j is dead if an earlier entry's type
        # already matches every instance of entry j's type.
        for j, (kind_j, type_j, line_j) in enumerate(entries):
            for kind_i, type_i, _line_i in entries[:j]:
                if type_i != type_j and index.is_subclass(type_j, type_i):
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=codec_module.path,
                            line=line_j,
                            message=(
                                f"codec entry ({kind_j!r}, {type_j}) is "
                                f"unreachable: earlier entry ({kind_i!r}, "
                                f"{type_i}) matches first because {type_j} "
                                f"subclasses {type_i} — move the subclass "
                                "entry before its base"
                            ),
                        )
                    )
                    break

        decode_kinds = _decode_covered_kinds(codec_module)
        if decode_kinds is not None:
            has_decode = any(
                isinstance(node, ast.FunctionDef) and node.name == DECODE_FUNC
                for node in codec_module.tree.body
            )
            if not has_decode:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=codec_module.path,
                        line=getattr(kinds_node, "lineno", 1),
                        message=(
                            f"{KINDS_NAME} is defined but {DECODE_FUNC} is "
                            "missing — encoded errors cannot be rebuilt"
                        ),
                    )
                )
            else:
                for kind, _type_name, line in entries:
                    if kind not in decode_kinds:
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=codec_module.path,
                                line=line,
                                message=(
                                    f"encode kind {kind!r} has no decoder in "
                                    f"{DECODE_FUNC} — it round-trips as the "
                                    "unknown-kind fallback"
                                ),
                            )
                        )

        findings.extend(
            self._reachability_findings(project, index, codec_module, entries)
        )
        return findings

    def _reachability_findings(
        self,
        project: Project,
        index: ClassIndex,
        codec_module: ModuleInfo,
        entries: List[Tuple[str, str, int]],
    ) -> List[Finding]:
        """Raised-but-unlisted types reachable from the worker's handlers."""
        worker = index.get(WORKER_CLASS)
        if worker is None:
            return []
        entry_types = {type_name for _kind, type_name, _line in entries}
        method_index = MethodIndex(project.modules)
        entry_refs = list(
            method_index.by_class.get(
                (worker.module.name, WORKER_CLASS), {}
            ).values()
        )
        by_module_name = {module.name: module for module in project.modules}
        findings: List[Finding] = []
        flagged: Set[str] = set()
        for ref in method_index.reachable_from(entry_refs):
            ref_module = by_module_name.get(ref.module)
            if ref_module is None:
                continue
            for type_name, line in raised_names(ref.node):
                if type_name in entry_types or type_name in flagged:
                    continue
                info = index.resolve(type_name, ref_module)
                if info is None:
                    continue  # not a project class (or ambiguous): skip
                base = next(
                    (
                        entry
                        for entry in entry_types
                        if index.is_subclass(type_name, entry)
                    ),
                    None,
                )
                if base is None:
                    continue  # not an encodable family: crosses as internal
                flagged.add(type_name)
                findings.append(
                    Finding(
                        rule=self.name,
                        path=ref_module.path,
                        line=line,
                        message=(
                            f"{type_name} is raised on a worker-reachable "
                            f"path but has no {KINDS_NAME} entry — it crosses "
                            f"the pipe demoted to its base class {base}; add "
                            f"an entry before the {base} one"
                        ),
                    )
                )
        return findings
