"""``lock-discipline``: no blocking calls under a lock, no lock-order cycles.

The rule finds every ``with self.<lock>:`` region (any attribute that is
assigned from a lock factory anywhere in the project counts as a lock) and
checks two invariants inside each region:

1. **No blocking operations while the lock is held.**  File and socket
   I/O, ``time.sleep``, subprocess spawns, thread joins, bounded-queue
   puts and serialisation dumps all stall every other thread queued on
   the lock.  The genuinely deliberate cases (a lock whose whole job is
   serialising I/O) carry a ``# lint: allow(lock-discipline)`` pragma and
   an ``allow_blocking=True`` tracked lock, so both the static and the
   runtime checker agree on the waiver.

2. **No static lock-order inversions.**  Lexically nested ``with`` blocks
   contribute ``outer -> inner`` edges to a project-wide acquisition
   graph; a cycle means two call paths can acquire the same pair of locks
   in opposite orders — a deadlock waiting for the right interleaving.
   This is the compile-time twin of the runtime graph built by
   :mod:`repro.concurrency` under ``REPRO_LOCK_CHECK=1``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..engine import Finding
from ..walker import (
    ModuleInfo,
    Project,
    dotted_name,
    lock_attribute_names,
    terminal_attr,
    walk_body,
)

#: dotted call targets that block the calling thread.
_BLOCKING_DOTTED_PREFIXES = (
    "time.sleep",
    "subprocess.run",
    "subprocess.Popen",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "socket.create_connection",
    "os.makedirs",
    "os.replace",
    "os.rename",
    "os.remove",
    "os.unlink",
    "os.listdir",
    "os.fsync",
    "json.dump",
    "json.load",
    "pickle.dump",
    "pickle.load",
    "shutil.copy",
    "shutil.move",
    "shutil.rmtree",
)

#: method names that block when invoked on the obvious receiver kinds.
_BLOCKING_METHODS = {"dump", "load", "sendall", "recv", "flush"}


def _is_lock_context(item: ast.withitem, lock_names: Set[str]) -> Optional[str]:
    expr = item.context_expr
    if isinstance(expr, ast.Call):  # with self._lock.acquire_timeout(...) style
        expr = expr.func if isinstance(expr.func, ast.Attribute) else expr
    name = dotted_name(expr)
    if name is None:
        return None
    terminal = name.split(".")[-1]
    if terminal in lock_names:
        return name
    return None


def _blocking_reason(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open()"
        return None
    dotted = dotted_name(func)
    if dotted is not None:
        for prefix in _BLOCKING_DOTTED_PREFIXES:
            if dotted == prefix:
                return f"{dotted}()"
    attr = terminal_attr(func)
    if attr is None:
        return None
    receiver = dotted_name(func.value) if isinstance(func, ast.Attribute) else None
    receiver_hint = (receiver or "").lower()
    if attr == "join" and "thread" in receiver_hint:
        return f"{receiver}.join()"
    if attr in {"put"} and "queue" in receiver_hint:
        return f"{receiver}.put()"
    if attr in _BLOCKING_METHODS and receiver is not None:
        # Only treat these as blocking on receivers whose name suggests a
        # resource (cache/file/socket/handle); plain data objects with a
        # ``dump``-style helper would otherwise drown the rule in noise.
        if any(
            hint in receiver_hint
            for hint in ("cache", "file", "socket", "handle", "conn", "stream")
        ):
            return f"{receiver}.{attr}()"
    return None


def _node_for(lock_expr: str, class_name: Optional[str]) -> str:
    # Per-class qualification keeps identically named locks on different
    # classes distinct while still letting the same textual pair collide.
    if lock_expr.startswith("self.") and class_name:
        return f"{class_name}.{lock_expr[len('self.'):]}"
    return lock_expr


class LockDisciplineRule:
    name = "lock-discipline"
    description = (
        "no blocking I/O inside lock regions; no static lock-order inversions"
    )

    def check(self, project: Project) -> List[Finding]:
        lock_names = lock_attribute_names(project)
        if not lock_names:
            return []
        findings: List[Finding] = []
        # edge -> (path, line) of the inner acquisition that created it
        edges: Dict[Tuple[str, str], Tuple[str, int]] = {}
        for module in project.modules:
            self._check_module(module, lock_names, findings, edges)
        findings.extend(self._cycle_findings(edges))
        return findings

    # ------------------------------------------------------------- helpers

    def _check_module(
        self,
        module: ModuleInfo,
        lock_names: Set[str],
        findings: List[Finding],
        edges: Dict[Tuple[str, str], Tuple[str, int]],
    ) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            class_name = self._enclosing_class(module.tree, node)
            self._walk_function(
                node.body, [], module, class_name, lock_names, findings, edges
            )

    @staticmethod
    def _enclosing_class(
        tree: ast.Module, target: ast.AST
    ) -> Optional[str]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if item is target:
                        return node.name
        return None

    def _walk_function(
        self,
        body: List[ast.stmt],
        held: List[str],
        module: ModuleInfo,
        class_name: Optional[str],
        lock_names: Set[str],
        findings: List[Finding],
        edges: Dict[Tuple[str, str], Tuple[str, int]],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.With):
                acquired: List[str] = []
                for item in stmt.items:
                    lock_expr = _is_lock_context(item, lock_names)
                    if lock_expr is None:
                        continue
                    node_name = _node_for(lock_expr, class_name)
                    for holder in held + acquired:
                        edge = (holder, node_name)
                        if holder != node_name and edge not in edges:
                            edges[edge] = (module.path, stmt.lineno)
                    acquired.append(node_name)
                if acquired:
                    self._scan_region(
                        stmt, acquired[-1], module, findings
                    )
                self._walk_function(
                    stmt.body,
                    held + acquired,
                    module,
                    class_name,
                    lock_names,
                    findings,
                    edges,
                )
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            else:
                # recurse into compound statements (if/try/for/while bodies)
                for field_name in ("body", "orelse", "finalbody", "handlers"):
                    sub = getattr(stmt, field_name, None)
                    if isinstance(sub, list):
                        items: List[ast.stmt] = []
                        for entry in sub:
                            if isinstance(entry, ast.ExceptHandler):
                                items.extend(entry.body)
                            elif isinstance(entry, ast.stmt):
                                items.append(entry)
                        if items:
                            self._walk_function(
                                items,
                                held,
                                module,
                                class_name,
                                lock_names,
                                findings,
                                edges,
                            )

    def _scan_region(
        self,
        with_stmt: ast.With,
        lock_name: str,
        module: ModuleInfo,
        findings: List[Finding],
    ) -> None:
        for node in walk_body(with_stmt.body):
            if isinstance(node, ast.Call):
                reason = _blocking_reason(node)
                if reason is not None:
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=module.path,
                            line=node.lineno,
                            message=(
                                f"blocking call {reason} while holding "
                                f"lock {lock_name}"
                            ),
                        )
                    )

    def _cycle_findings(
        self, edges: Dict[Tuple[str, str], Tuple[str, int]]
    ) -> List[Finding]:
        graph: Dict[str, Set[str]] = {}
        for src, dst in edges:
            graph.setdefault(src, set()).add(dst)
        findings: List[Finding] = []
        reported: Set[Tuple[str, str]] = set()
        for (src, dst), (path, line) in sorted(edges.items()):
            if (dst, src) in reported:
                continue
            if self._reaches(graph, dst, src):
                findings.append(
                    Finding(
                        rule=self.name,
                        path=path,
                        line=line,
                        message=(
                            f"lock-order inversion: {src} -> {dst} here, but "
                            f"{dst} -> ... -> {src} elsewhere (deadlock risk)"
                        ),
                    )
                )
                reported.add((src, dst))
        return findings

    @staticmethod
    def _reaches(graph: Dict[str, Set[str]], start: str, goal: str) -> bool:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            for nxt in graph.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False
