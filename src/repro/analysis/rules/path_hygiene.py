"""``path-hygiene``: no stringified objects smuggled into filesystem paths.

This rule exists because of a real bug: a miswired constructor argument
was passed through ``str()`` on its way to ``os.makedirs``, and the repo
grew a directory literally named
``<repro.serving.registry.ArtifactRegistry object at 0x...>``.
``str()`` happily coerces *anything*; ``os.fspath()`` raises on objects
that are not path-like, which turns the miswiring into an immediate
``TypeError`` instead of a junk directory.

Flagged patterns:

* ``str(x)`` (for non-constant ``x``) used as an argument to a
  filesystem call — ``open``, ``os.makedirs``/``replace``/``rename``/
  ``remove``/``unlink``, ``os.path.join``, ``Path`` — use
  ``os.fspath(x)`` instead;
* f-strings passed to those calls that interpolate an attribute access
  or call result (``f"{self.registry}/x"``) — objects sneak into paths
  through exactly those two node shapes, while ``f"segment-{index}"``
  style formatting of locals stays legal;
* ``str(x)`` assigned to a path-named attribute or variable
  (``*path``/``*dir``/``*directory``/``*root``/``*file``) — the value is
  destined for the filesystem even if the call site is elsewhere.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional

from ..engine import Finding
from ..walker import Project, dotted_name

_PATH_CALLS = {
    "open",
    "Path",
    "os.makedirs",
    "os.replace",
    "os.rename",
    "os.remove",
    "os.unlink",
    "os.mkdir",
    "os.path.join",
    "os.path.exists",
    "os.path.isdir",
    "os.path.isfile",
}

_PATH_NAME = re.compile(r"(path|dir|directory|root|file|filename)$", re.IGNORECASE)

#: scalar-returning calls that are idiomatic inside temp-file names —
#: interpolating these can never smuggle an object repr into a path.
_SAFE_FSTRING_CALLS = {
    "os.getpid",
    "os.getppid",
    "time.time_ns",
    "time.monotonic_ns",
}


def _is_str_coercion(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "str"
        and len(node.args) == 1
        and not isinstance(node.args[0], ast.Constant)
    )


def _fstring_object_part(node: ast.AST) -> Optional[ast.AST]:
    if not isinstance(node, ast.JoinedStr):
        return None
    for value in node.values:
        if isinstance(value, ast.FormattedValue) and isinstance(
            value.value, (ast.Attribute, ast.Call)
        ):
            if (
                isinstance(value.value, ast.Call)
                and dotted_name(value.value.func) in _SAFE_FSTRING_CALLS
            ):
                continue
            return value.value
    return None


class PathHygieneRule:
    name = "path-hygiene"
    description = (
        "no str()/f-string coercion of objects into filesystem paths — "
        "use os.fspath()"
    )

    def check(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    target = dotted_name(node.func)
                    if target in _PATH_CALLS:
                        findings.extend(
                            self._check_path_call(module.path, node, target)
                        )
                elif isinstance(node, ast.Assign):
                    findings.extend(self._check_assignment(module.path, node))
        return findings

    def _check_path_call(
        self, path: str, node: ast.Call, target: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if _is_str_coercion(arg):
                findings.append(
                    Finding(
                        rule=self.name,
                        path=path,
                        line=arg.lineno,
                        message=(
                            f"str() coercion passed to {target}() — str() "
                            "accepts any object; use os.fspath() so "
                            "non-path arguments fail loudly"
                        ),
                    )
                )
            part = _fstring_object_part(arg)
            if part is not None:
                rendered = ast.unparse(part)
                findings.append(
                    Finding(
                        rule=self.name,
                        path=path,
                        line=arg.lineno,
                        message=(
                            f"f-string passed to {target}() interpolates "
                            f"{rendered!r} — an object repr can end up in the "
                            "path; convert with os.fspath() first"
                        ),
                    )
                )
        return findings

    def _check_assignment(self, path: str, node: ast.Assign) -> List[Finding]:
        if not _is_str_coercion(node.value):
            return []
        findings: List[Finding] = []
        for target in node.targets:
            name: Optional[str] = None
            if isinstance(target, ast.Attribute):
                name = target.attr
            elif isinstance(target, ast.Name):
                name = target.id
            if name is not None and _PATH_NAME.search(name):
                findings.append(
                    Finding(
                        rule=self.name,
                        path=path,
                        line=node.lineno,
                        message=(
                            f"str() coercion assigned to path-like name "
                            f"{name!r} — use os.fspath() so a miswired object "
                            "raises instead of becoming a repr-named path"
                        ),
                    )
                )
        return findings
