"""``pickle-safety``: nothing unpicklable may ride the replica pipe.

Requests, results, and configs cross the supervisor/worker boundary as
pickles.  A type that transitively holds a lock, a thread, an open file,
a lambda, or a generator pickles *sometimes* — it works in the unit test
that never populated the offending attribute and then dies in production
with an opaque ``TypeError: cannot pickle '_thread.lock' object`` from
deep inside the transport.  This rule makes the wire surface explicit
and auditable:

* the module defining the exception codec (``_KINDS``) must also declare
  ``WIRE_TYPES`` — a tuple naming every class sent through the pipe RPC;
  the declaration *is* the contract, exactly like the wire error-code
  registry;
* each declared class (and, transitively, every project class reachable
  through its instance attributes and dataclass field annotations) is
  scanned for unpicklable state: calls to lock/thread/executor/file
  factories, ``lambda``, and generator expressions assigned to
  attributes.

The walk is name-based and conservative: ambiguous class names are
skipped, and only assignments visible in the class body are considered.
The point is catching the easy-to-make mistake — parking a
``threading.Lock()`` on a config object that later rides the pipe — at
lint time instead of under load.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..engine import Finding
from ..walker import (
    ClassIndex,
    ClassInfo,
    ModuleInfo,
    Project,
    annotation_names,
    field_annotations,
    imported_names,
    instance_attribute_values,
    terminal_attr,
)

KINDS_NAME = "_KINDS"
WIRE_DECL = "WIRE_TYPES"

#: call targets whose result must never be pickled.
UNPICKLABLE_FACTORIES = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "Event",
        "Barrier",
        "Thread",
        "Timer",
        "local",
        "TrackedLock",
        "TrackedRLock",
        "TrackedCondition",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "open",
        "socket",
        "Queue",
        "SimpleQueue",
        "LifoQueue",
        "PriorityQueue",
        "Future",
        "Popen",
        "memoryview",
    }
)


def _wire_declaration(
    module: ModuleInfo,
) -> Optional[Tuple[int, List[str]]]:
    """The top-level ``WIRE_TYPES = (...)`` declaration as
    ``(line, [class names])`` — plain or annotated assignment."""
    for node in module.tree.body:
        value = None
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == WIRE_DECL for t in node.targets
            ):
                value = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == WIRE_DECL:
                value = node.value
        if value is None:
            continue
        names: List[str] = []
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for element in value.elts:
                name = terminal_attr(element)
                if name is not None:
                    names.append(name)
        return node.lineno, names
    return None


def _defines_kinds(module: ModuleInfo) -> bool:
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == KINDS_NAME for t in node.targets
        ):
            return True
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == KINDS_NAME
        ):
            return True
    return False


def _attribute_hazard(value: ast.expr) -> Optional[str]:
    """Why ``value`` cannot be pickled, or ``None`` when it looks safe."""
    for sub in ast.walk(value):
        if isinstance(sub, ast.Lambda):
            return "a lambda (functions pickle by name; lambdas have none)"
        if isinstance(sub, ast.GeneratorExp):
            return "a generator (generators never pickle)"
        if isinstance(sub, ast.Call):
            factory = terminal_attr(sub.func)
            if factory in UNPICKLABLE_FACTORIES:
                return f"{factory}() (process-local state never pickles)"
    return None


def _referenced_classes(value: ast.expr) -> Set[str]:
    """Class names an attribute value might instantiate or hold."""
    names: Set[str] = set()
    for sub in ast.walk(value):
        if isinstance(sub, ast.Call):
            name = terminal_attr(sub.func)
            if name is not None and name[:1].isupper():
                names.add(name)
    return names


class PickleSafetyRule:
    name = "pickle-safety"
    description = (
        "types declared in WIRE_TYPES (the pipe RPC surface) must not "
        "transitively hold locks, threads, files, lambdas, or generators"
    )

    def check(self, project: Project) -> List[Finding]:
        codec_module = None
        for module in project.modules:
            if _defines_kinds(module):
                codec_module = module
                break
        if codec_module is None:
            return []
        declaration = _wire_declaration(codec_module)
        if declaration is None:
            return [
                Finding(
                    rule=self.name,
                    path=codec_module.path,
                    line=1,
                    message=(
                        f"transport module defines {KINDS_NAME} but no "
                        f"{WIRE_DECL} declaration — the pipe RPC surface "
                        "must be explicit to be checkable"
                    ),
                )
            ]
        decl_line, declared = declaration
        index = ClassIndex(project)
        findings: List[Finding] = []
        seen: Set[str] = set()
        # chain: how we got here, for the finding message.
        queue: List[Tuple[str, Optional[ModuleInfo], Tuple[str, ...]]] = [
            (name, codec_module, ()) for name in declared
        ]
        # A declared name that resolves nowhere is stale — unless the codec
        # module *imports* it, in which case the class merely lives outside
        # the lint scope (a --changed-only subset run) and the import keeps
        # it honest: deleting the class breaks the import at runtime.
        imports = imported_names(codec_module)
        missing = [
            name
            for name in declared
            if index.resolve(name, codec_module) is None
            and index.get(name) is None
            and name not in imports
        ]
        for name in missing:
            findings.append(
                Finding(
                    rule=self.name,
                    path=codec_module.path,
                    line=decl_line,
                    message=(
                        f"{WIRE_DECL} names {name!r} but no project class "
                        "with that name exists — stale declaration"
                    ),
                )
            )
        while queue:
            name, origin, chain = queue.pop()
            if name in seen:
                continue
            seen.add(name)
            info = index.resolve(name, origin)
            if info is None:
                info = index.get(name) if len(index.by_name.get(name, [])) == 1 else None
            if info is None:
                continue  # ambiguous or external: skip rather than guess
            via = " (held via " + " -> ".join(chain + (name,)) + ")" if chain else ""
            findings.extend(self._class_findings(info, via, chain, name, index, queue))
        return findings

    def _class_findings(
        self,
        info: ClassInfo,
        via: str,
        chain: Tuple[str, ...],
        name: str,
        index: ClassIndex,
        queue: List[Tuple[str, Optional[ModuleInfo], Tuple[str, ...]]],
    ) -> List[Finding]:
        findings: List[Finding] = []
        for attr, value, line in instance_attribute_values(info):
            hazard = _attribute_hazard(value)
            if hazard is not None:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=info.module.path,
                        line=line,
                        message=(
                            f"wire type {name}{via} stores {hazard} in "
                            f"self.{attr} — it cannot cross the replica pipe"
                        ),
                    )
                )
                continue
            for ref in _referenced_classes(value):
                queue.append((ref, info.module, chain + (name,)))
        for _field, annotation, _line in field_annotations(info):
            for ref in annotation_names(annotation):
                if ref != name and index.by_name.get(ref):
                    queue.append((ref, info.module, chain + (name,)))
        return findings
