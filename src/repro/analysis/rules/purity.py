"""``engine-purity``: nothing reachable from ``infer()`` may mutate ``self``.

Inference is the replayable, thread-shared path of the model stack: the
serving hub fans a single model instance out across batcher workers, and
the prediction journal assumes identical inputs give identical outputs.
A stray ``self.<attr> = ...`` anywhere in the ``infer()`` call graph
breaks both properties silently — results start depending on request
interleaving, and journal replay diverges from the live run.

The rule collects every method named ``infer``, computes the functions
reachable from them with the name-based call graph in
:class:`repro.analysis.walker.MethodIndex` (resolution is restricted to
the modules that define an ``infer`` themselves, so utility classes in
unrelated modules cannot leak into the graph), and flags any store into
``self`` — plain assignment, augmented assignment, annotated assignment,
subscript/attribute writes, and ``del self.<attr>``.

Training-path mutation (``forward``/``fit`` caching activations for the
backward pass) is untouched: those methods are only flagged if an
``infer`` graph actually reaches them.
"""

from __future__ import annotations

import ast
from typing import List

from ..engine import Finding
from ..walker import MethodIndex, Project


def _self_store_targets(node: ast.AST) -> List[ast.AST]:
    """Return the sub-targets of ``node`` that write through ``self``."""
    stores: List[ast.AST] = []
    if isinstance(node, (ast.Attribute, ast.Subscript)):
        base = node
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        if isinstance(base, ast.Name) and base.id == "self":
            stores.append(node)
    elif isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            stores.extend(_self_store_targets(element))
    return stores


class EnginePurityRule:
    name = "engine-purity"
    description = "no self.<attr> mutation reachable from any infer() call graph"

    def check(self, project: Project) -> List[Finding]:
        target_modules = [
            module
            for module in project.modules
            if any(
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == "infer"
                for node in ast.walk(module.tree)
            )
        ]
        if not target_modules:
            return []
        index = MethodIndex(target_modules)
        entries = [
            ref
            for ref in index.functions
            if ref.qualname.split(".")[-1] == "infer"
        ]
        module_paths = {module.name: module.path for module in target_modules}
        findings: List[Finding] = []
        for ref in index.reachable_from(entries):
            path = module_paths.get(ref.module, ref.module)
            for node in ast.walk(ref.node):
                targets: List[ast.AST] = []
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        targets.extend(_self_store_targets(target))
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets.extend(_self_store_targets(node.target))
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        targets.extend(_self_store_targets(target))
                for target in targets:
                    description = ast.unparse(target)
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=path,
                            line=node.lineno,
                            message=(
                                f"{ref.qualname} mutates {description} but is "
                                "reachable from an infer() call graph — "
                                "inference must be replayable and thread-safe"
                            ),
                        )
                    )
        return findings
