"""``route-registry``: every HTTP route lives in a declarative table.

The wire error-code registry (``wire-errors``) exists because grepping
handler code is not an API contract.  Routes have the same problem: the
``ServingApp._route`` dispatcher *is* the routing table, but nothing
forces a new branch to be documented or exercised.  This rule extends
the registry idiom to routes:

* the module defining ``_route`` must declare a module-level ``ROUTES``
  mapping of ``"<METHOD> <template>"`` keys (templates spell dynamic
  segments ``{name}``) to non-empty human descriptions;
* every route the dispatcher actually serves — fixed ``path == "..."``
  branches, the bare ``{name}`` lookup, and ``action == "..."``
  sub-resource branches, each crossed with the HTTP methods of the view
  dict it returns — must be registered, and every registered entry must
  be served (a dead registry entry is drift, exactly like a dead error
  code);
* every registered template must appear in at least one test under the
  repo's ``tests/`` tree (f-strings count, with formatted segments
  treated as wildcards), so the public surface cannot grow untested.

The dispatcher model it parses is deliberately the one this repo uses:
literal compares against ``path``/``action`` plus a ``prefix`` local for
the collection root.  That narrowness is fine — the rule only fires in
modules that define ``_route`` at all.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, List, Optional, Set, Tuple

from ..engine import Finding
from ..walker import ModuleInfo, Project

ROUTES_NAME = "ROUTES"
DISPATCHER = "_route"
KNOWN_METHODS = frozenset({"GET", "POST", "PUT", "DELETE", "PATCH", "HEAD"})


def _find_dispatcher(module: ModuleInfo) -> Optional[ast.AST]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.FunctionDef) and node.name == DISPATCHER:
            return node
    return None


def _find_routes(module: ModuleInfo) -> Optional[Tuple[int, ast.Dict]]:
    for node in module.tree.body:
        value = None
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == ROUTES_NAME
                for t in node.targets
            ):
                value = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == ROUTES_NAME:
                value = node.value
        if isinstance(value, ast.Dict):
            return node.lineno, value
    return None


def _return_methods(body: List[ast.stmt]) -> Set[str]:
    """HTTP method keys of every ``return {"GET": view, ...}`` in ``body``."""
    methods: Set[str] = set()
    for stmt in body:
        for sub in ast.walk(stmt):
            if not isinstance(sub, ast.Return) or not isinstance(
                sub.value, ast.Dict
            ):
                continue
            for key in sub.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    methods.add(key.value)
    return methods


def _compare_literal(test: ast.expr, variable: str) -> Optional[str]:
    """The string ``lit`` when ``test`` is ``<variable> == "lit"`` (either
    side), else ``None``."""
    if not isinstance(test, ast.Compare) or len(test.comparators) != 1:
        return None
    if not (len(test.ops) == 1 and isinstance(test.ops[0], ast.Eq)):
        return None
    exprs = [test.left, test.comparators[0]]
    names = [e for e in exprs if isinstance(e, ast.Name) and e.id == variable]
    consts = [
        e for e in exprs if isinstance(e, ast.Constant) and isinstance(e.value, str)
    ]
    if names and consts:
        return consts[0].value
    return None


def _is_single_segment_test(test: ast.expr) -> bool:
    """``len(segments) == 1`` — the bare ``{name}`` collection-item route."""
    if not isinstance(test, ast.Compare) or len(test.comparators) != 1:
        return False
    if not (len(test.ops) == 1 and isinstance(test.ops[0], ast.Eq)):
        return False
    call, const = test.left, test.comparators[0]
    return (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id == "len"
        and isinstance(const, ast.Constant)
        and const.value == 1
    )


def _served_routes(dispatcher: ast.AST) -> Dict[str, int]:
    """``{"METHOD template": line}`` for every route ``_route`` serves."""
    prefix = "/v1/models/"
    for sub in ast.walk(dispatcher):
        if (
            isinstance(sub, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "prefix" for t in sub.targets
            )
            and isinstance(sub.value, ast.Constant)
            and isinstance(sub.value.value, str)
        ):
            prefix = sub.value.value
    served: Dict[str, int] = {}
    for stmt in ast.walk(dispatcher):
        if not isinstance(stmt, ast.If):
            continue
        template = None
        fixed = _compare_literal(stmt.test, "path")
        action = _compare_literal(stmt.test, "action")
        if fixed is not None:
            template = fixed
        elif action is not None:
            template = f"{prefix}{{name}}/{action}"
        elif _is_single_segment_test(stmt.test):
            template = f"{prefix}{{name}}"
        if template is not None:
            for method in _return_methods(stmt.body):
                served.setdefault(f"{method} {template}", stmt.lineno)
    return served


def _rendered_test_strings(root: str) -> Optional[Set[str]]:
    """Every string literal (f-strings rendered with ``•`` wildcards)
    in the repo's tests, or ``None`` when there is no tests tree."""
    tests_dir = os.path.join(root, "tests")
    if not os.path.isdir(tests_dir):
        return None
    strings: Set[str] = set()
    for dirpath, dirnames, filenames in os.walk(tests_dir):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    tree = ast.parse(handle.read(), filename=path)
            except (OSError, SyntaxError):
                continue
            for node in ast.walk(tree):
                if isinstance(node, ast.Constant) and isinstance(node.value, str):
                    strings.add(node.value)
                elif isinstance(node, ast.JoinedStr):
                    parts: List[str] = []
                    for value in node.values:
                        if isinstance(value, ast.Constant) and isinstance(
                            value.value, str
                        ):
                            parts.append(value.value)
                        else:
                            parts.append("•")
                    strings.add("".join(parts))
    return strings


def _template_regex(template: str) -> "re.Pattern[str]":
    pattern = re.escape(template).replace(re.escape("{name}"), "[^/]+")
    return re.compile(f"^{pattern}$")


class RouteRegistryRule:
    name = "route-registry"
    description = (
        "every served HTTP route is declared in the ROUTES table, every "
        "table entry is served, and every template appears in a test"
    )

    def check(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            dispatcher = _find_dispatcher(module)
            if dispatcher is None:
                continue
            findings.extend(self._module_findings(project, module, dispatcher))
        return findings

    def _module_findings(
        self, project: Project, module: ModuleInfo, dispatcher: ast.AST
    ) -> List[Finding]:
        routes = _find_routes(module)
        if routes is None:
            return [
                Finding(
                    rule=self.name,
                    path=module.path,
                    line=dispatcher.lineno,
                    message=(
                        f"module dispatches routes ({DISPATCHER}) but declares "
                        f"no module-level {ROUTES_NAME} table — the route "
                        "surface must be explicit to be checkable"
                    ),
                )
            ]
        decl_line, table = routes
        findings: List[Finding] = []

        registered: Dict[str, int] = {}
        for key_node, value_node in zip(table.keys, table.values):
            if not (
                isinstance(key_node, ast.Constant)
                and isinstance(key_node.value, str)
            ):
                continue
            key = key_node.value
            line = key_node.lineno
            method, _, template = key.partition(" ")
            if method not in KNOWN_METHODS or not template.startswith("/"):
                findings.append(
                    Finding(
                        rule=self.name,
                        path=module.path,
                        line=line,
                        message=(
                            f"{ROUTES_NAME} key {key!r} is not of the form "
                            "'<METHOD> /path' with a known HTTP method"
                        ),
                    )
                )
                continue
            if key in registered:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=module.path,
                        line=line,
                        message=f"duplicate {ROUTES_NAME} entry {key!r}",
                    )
                )
                continue
            registered[key] = line
            if not (
                isinstance(value_node, ast.Constant)
                and isinstance(value_node.value, str)
                and value_node.value.strip()
            ):
                findings.append(
                    Finding(
                        rule=self.name,
                        path=module.path,
                        line=line,
                        message=(
                            f"{ROUTES_NAME} entry {key!r} needs a non-empty "
                            "description string"
                        ),
                    )
                )

        served = _served_routes(dispatcher)
        for key, line in sorted(served.items()):
            if key not in registered:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=module.path,
                        line=line,
                        message=(
                            f"route {key!r} is served by {DISPATCHER} but "
                            f"missing from {ROUTES_NAME} — register and "
                            "document it"
                        ),
                    )
                )
        for key, line in sorted(registered.items()):
            if key not in served:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=module.path,
                        line=line,
                        message=(
                            f"{ROUTES_NAME} entry {key!r} is not served by "
                            f"{DISPATCHER} — dead registry entry"
                        ),
                    )
                )

        if project.root is not None:
            test_strings = _rendered_test_strings(project.root)
            if test_strings is not None:
                candidates = test_strings | {
                    s.partition("?")[0].rstrip("/") or "/" for s in test_strings
                }
                for key, line in sorted(registered.items()):
                    _method, _, template = key.partition(" ")
                    regex = _template_regex(template)
                    if not any(regex.match(candidate) for candidate in candidates):
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=module.path,
                                line=line,
                                message=(
                                    f"{ROUTES_NAME} entry {key!r} is never "
                                    "referenced by any test under tests/ — "
                                    "the route surface must stay exercised"
                                ),
                            )
                        )
        return findings
