"""``rpc-parity``: the replica pool must stay a faithful hub mirror.

The :class:`~repro.serving.replica.supervisor.ReplicaSupervisor` works by
*duck-typing* the :class:`~repro.serving.hub.ModelHub` surface, and the
pipe protocol works by the supervisor dispatching exactly the ``OP_*``
ops, admin actions, and introspection questions the worker handles.
None of that is enforced by Python — a new hub method, op constant, or
admin action silently drifts — so this rule machine-checks the contract
wherever the three anchor classes appear in the linted tree:

* every public ``ModelHub`` method has a ``ReplicaSupervisor`` method of
  the same name and a call-compatible signature (same parameters,
  defaults, and property-ness).  Deliberate one-process-only surface is
  declared on the supervisor class — ``MIRROR_EXEMPT`` names hub methods
  without a mirror, ``MIRROR_EXTRA`` names supervisor-only additions —
  and a declaration that no longer matches reality is itself a finding;
* every ``OP_*`` constant defined next to the transport is dispatched
  somewhere in the ``ReplicaSupervisor`` class and compared against in
  the ``ReplicaWorker`` class — drift in either direction is a finding;
* every admin action the supervisor dispatches (the first argument of
  ``_admin_broadcast(...)`` calls and ``{"action": ...}`` literals) is
  handled by a ``action == "..."`` branch worker-side, and vice versa —
  a dead handler is drift exactly like a missing one.  Introspection
  ``what`` literals get the same two-way check.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from ..engine import Finding
from ..walker import (
    ClassIndex,
    ClassInfo,
    ModuleInfo,
    Project,
    class_string_set,
    public_surface,
    terminal_attr,
)

HUB_CLASS = "ModelHub"
MIRROR_CLASS = "ReplicaSupervisor"
WORKER_CLASS = "ReplicaWorker"
EXEMPT_DECL = "MIRROR_EXEMPT"
EXTRA_DECL = "MIRROR_EXTRA"

#: dispatch helpers whose first string argument names an admin action /
#: introspection question.
_ADMIN_DISPATCHERS = {"_admin_broadcast"}
_INTROSPECT_DISPATCHERS = {"_introspect_one", "_introspect_broadcast"}


def _op_definitions(project: Project) -> Dict[str, Tuple[ModuleInfo, int]]:
    """Top-level ``OP_* = "..."`` constants anywhere in the project."""
    ops: Dict[str, Tuple[ModuleInfo, int]] = {}
    for module in project.modules:
        for node in module.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Constant) or not isinstance(
                node.value.value, str
            ):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id.startswith("OP_"):
                    ops.setdefault(target.id, (module, node.lineno))
    return ops


def _op_loads(node: ast.AST) -> Set[str]:
    """``OP_*`` names read (Load context) anywhere under ``node``."""
    return {
        sub.id
        for sub in ast.walk(node)
        if isinstance(sub, ast.Name)
        and isinstance(sub.ctx, ast.Load)
        and sub.id.startswith("OP_")
    }


def _op_compares(node: ast.AST) -> Set[str]:
    """``OP_*`` names used in an equality comparison under ``node``."""
    handled: Set[str] = set()
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Compare):
            continue
        for expr in [sub.left, *sub.comparators]:
            if isinstance(expr, ast.Name) and expr.id.startswith("OP_"):
                handled.add(expr.id)
    return handled


def _dispatched_literals(
    module: ModuleInfo, helper_names: Set[str], dict_key: str
) -> Dict[str, int]:
    """String literals the supervisor module sends as actions/questions:
    first arguments of the dispatch helpers plus ``{dict_key: "..."}``
    literals.  ``{literal: first line}``."""
    dispatched: Dict[str, int] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            if terminal_attr(node.func) not in helper_names or not node.args:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                dispatched.setdefault(first.value, node.lineno)
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == dict_key
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    dispatched.setdefault(value.value, value.lineno)
    return dispatched


def _handled_literals(worker: ClassInfo, variable: str) -> Dict[str, int]:
    """String literals compared against ``variable`` (``action``/``what``)
    inside the worker class.  ``{literal: first line}``."""
    handled: Dict[str, int] = {}
    for node in ast.walk(worker.node):
        if not isinstance(node, ast.Compare):
            continue
        exprs = [node.left, *node.comparators]
        if not any(
            isinstance(expr, ast.Name) and expr.id == variable for expr in exprs
        ):
            continue
        for expr in exprs:
            if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
                handled.setdefault(expr.value, node.lineno)
    return handled


class RpcParityRule:
    name = "rpc-parity"
    description = (
        "the replica supervisor mirrors the hub surface, and every "
        "dispatched op/admin action is handled worker-side (and vice versa)"
    )

    def check(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        index = ClassIndex(project)
        hub = index.get(HUB_CLASS)
        mirror = index.get(MIRROR_CLASS)
        worker = index.get(WORKER_CLASS)
        if hub is not None and mirror is not None:
            findings.extend(self._surface_findings(hub, mirror))
        if mirror is not None and worker is not None:
            findings.extend(self._op_findings(project, mirror, worker))
            findings.extend(
                self._literal_findings(
                    mirror,
                    worker,
                    helper_names=_ADMIN_DISPATCHERS,
                    dict_key="action",
                    handler="_admin",
                    noun="admin action",
                )
            )
            findings.extend(
                self._literal_findings(
                    mirror,
                    worker,
                    helper_names=_INTROSPECT_DISPATCHERS,
                    dict_key="what",
                    handler="_introspect",
                    noun="introspection",
                )
            )
        return findings

    # -------------------------------------------------------- hub mirroring
    def _surface_findings(self, hub: ClassInfo, mirror: ClassInfo) -> List[Finding]:
        findings: List[Finding] = []
        hub_surface = public_surface(hub)
        mirror_surface = public_surface(mirror)
        exempt_decl = class_string_set(mirror, EXEMPT_DECL)
        extra_decl = class_string_set(mirror, EXTRA_DECL)
        exempt = exempt_decl[1] if exempt_decl else set()
        extra = extra_decl[1] if extra_decl else set()

        hub_methods = hub.methods()
        for name in sorted(hub_surface):
            if name in mirror_surface or name in exempt:
                continue
            findings.append(
                Finding(
                    rule=self.name,
                    path=hub.module.path,
                    line=hub_methods[name].lineno,
                    message=(
                        f"public {HUB_CLASS} method {name!r} has no "
                        f"{MIRROR_CLASS} mirror — add one, or declare it in "
                        f"{MIRROR_CLASS}.{EXEMPT_DECL}"
                    ),
                )
            )
        mirror_methods = mirror.methods()
        for name in sorted(mirror_surface):
            if name in hub_surface or name in extra:
                continue
            findings.append(
                Finding(
                    rule=self.name,
                    path=mirror.module.path,
                    line=mirror_methods[name].lineno,
                    message=(
                        f"public {MIRROR_CLASS} method {name!r} does not exist "
                        f"on {HUB_CLASS} — callers routed through the hub lose "
                        f"it; declare it in {MIRROR_CLASS}.{EXTRA_DECL} if "
                        "supervisor-only"
                    ),
                )
            )
        for name in sorted(hub_surface.keys() & mirror_surface.keys()):
            hub_sig = hub_surface[name]
            mirror_sig = mirror_surface[name]
            if not hub_sig.compatible_with(mirror_sig):
                findings.append(
                    Finding(
                        rule=self.name,
                        path=mirror.module.path,
                        line=mirror_methods[name].lineno,
                        message=(
                            f"{MIRROR_CLASS}.{mirror_sig.render()} is not "
                            f"call-compatible with {HUB_CLASS}."
                            f"{hub_sig.render()}"
                        ),
                    )
                )
        # Declarations that no longer match reality rot exactly like
        # waiver pragmas do — keep them honest.
        if exempt_decl is not None:
            for name in sorted(exempt):
                if name not in hub_surface or name in mirror_surface:
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=mirror.module.path,
                            line=exempt_decl[0],
                            message=(
                                f"stale {EXEMPT_DECL} entry {name!r}: it must "
                                f"name a public {HUB_CLASS} method that "
                                f"{MIRROR_CLASS} does not implement"
                            ),
                        )
                    )
        if extra_decl is not None:
            for name in sorted(extra):
                if name not in mirror_surface or name in hub_surface:
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=mirror.module.path,
                            line=extra_decl[0],
                            message=(
                                f"stale {EXTRA_DECL} entry {name!r}: it must "
                                f"name a public {MIRROR_CLASS} method that "
                                f"{HUB_CLASS} does not implement"
                            ),
                        )
                    )
        return findings

    # ------------------------------------------------------------ op parity
    def _op_findings(
        self, project: Project, mirror: ClassInfo, worker: ClassInfo
    ) -> List[Finding]:
        findings: List[Finding] = []
        dispatched = _op_loads(mirror.node)
        handled = _op_compares(worker.node)
        for op, (module, line) in sorted(_op_definitions(project).items()):
            if op not in dispatched:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=module.path,
                        line=line,
                        message=(
                            f"op constant {op} is defined but never dispatched "
                            f"by {MIRROR_CLASS}"
                        ),
                    )
                )
            if op not in handled:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=module.path,
                        line=line,
                        message=(
                            f"op constant {op} is never handled by "
                            f"{WORKER_CLASS}'s request loop — a dispatch "
                            "would come back as an unknown-op error"
                        ),
                    )
                )
        return findings

    # ------------------------------------------- admin/introspection parity
    def _literal_findings(
        self,
        mirror: ClassInfo,
        worker: ClassInfo,
        helper_names: Set[str],
        dict_key: str,
        handler: str,
        noun: str,
    ) -> List[Finding]:
        findings: List[Finding] = []
        dispatched = _dispatched_literals(mirror.module, helper_names, dict_key)
        handled = _handled_literals(worker, dict_key)
        if not dispatched and not handled:
            return findings
        for literal, line in sorted(dispatched.items()):
            if literal not in handled:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=mirror.module.path,
                        line=line,
                        message=(
                            f"{noun} {literal!r} is dispatched supervisor-side "
                            f"but {WORKER_CLASS}.{handler} has no branch for it"
                        ),
                    )
                )
        for literal, line in sorted(handled.items()):
            if literal not in dispatched:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=worker.module.path,
                        line=line,
                        message=(
                            f"{noun} {literal!r} is handled by "
                            f"{WORKER_CLASS}.{handler} but never dispatched "
                            "supervisor-side — dead protocol surface"
                        ),
                    )
                )
        return findings
