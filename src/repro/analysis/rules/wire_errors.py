"""``wire-errors``: the structured error-code registry must stay honest.

The serving HTTP layer returns machine-readable errors of the shape
``{"error": {"status": ..., "code": ..., "message": ...}}``.  Those codes
are wire contract: clients branch on them, and the journal records them.
This rule keeps the contract auditable for any module that declares a
top-level ``ERROR_CODES`` mapping (``code -> human description``):

* every code raised in the module (second positional argument of
  ``error_payload(...)`` / ``RequestError(...)``) must appear in
  ``ERROR_CODES``;
* every registered code must actually be raised somewhere in the module
  (no zombie documentation);
* codes must be unique and carry a non-empty description;
* when a repo root with a ``tests/`` directory is visible, every
  registered code must be referenced (as a quoted literal) by at least
  one test — an error path nobody asserts on is an error path that
  silently changes shape.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Optional, Set, Tuple

from ..engine import Finding
from ..walker import ModuleInfo, Project, terminal_attr

_RAISE_CALLS = {"error_payload", "RequestError"}


def _registry_literal(
    module: ModuleInfo,
) -> Optional[Tuple[ast.Dict, Dict[str, Tuple[int, str]], List[Tuple[str, int]]]]:
    """The module's top-level ``ERROR_CODES`` dict literal, if any.

    Returns ``(node, {code: (line, description)}, [(duplicate, line)])``.
    """
    for node in module.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "ERROR_CODES"
            for target in node.targets
        ):
            continue
        if not isinstance(node.value, ast.Dict):
            return None
        codes: Dict[str, Tuple[int, str]] = {}
        duplicates: List[Tuple[str, int]] = []
        for key, value in zip(node.value.keys, node.value.values):
            if not isinstance(key, ast.Constant) or not isinstance(key.value, str):
                continue
            description = (
                value.value
                if isinstance(value, ast.Constant) and isinstance(value.value, str)
                else ""
            )
            if key.value in codes:
                duplicates.append((key.value, key.lineno))
            else:
                codes[key.value] = (key.lineno, description)
        return node.value, codes, duplicates
    return None


def _raised_codes(module: ModuleInfo) -> Dict[str, int]:
    """Every string literal passed as the ``code`` argument of an error
    constructor in the module, with the first line it appears on."""
    raised: Dict[str, int] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = terminal_attr(node.func)
        if name not in _RAISE_CALLS:
            continue
        code_arg: Optional[ast.expr] = None
        if len(node.args) >= 2:
            code_arg = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "code":
                code_arg = keyword.value
        if isinstance(code_arg, ast.Constant) and isinstance(code_arg.value, str):
            raised.setdefault(code_arg.value, node.lineno)
    return raised


def _test_referenced_codes(root: str) -> Optional[Set[str]]:
    """Quoted string literals appearing anywhere under ``<root>/tests``."""
    tests_dir = os.path.join(root, "tests")
    if not os.path.isdir(tests_dir):
        return None
    seen: Set[str] = set()
    for dirpath, dirnames, filenames in os.walk(tests_dir):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    tree = ast.parse(handle.read(), filename=path)
            except (OSError, SyntaxError):
                continue
            for node in ast.walk(tree):
                if isinstance(node, ast.Constant) and isinstance(node.value, str):
                    seen.add(node.value)
    return seen


class WireErrorsRule:
    name = "wire-errors"
    description = (
        "structured error codes are unique, documented in ERROR_CODES, "
        "raised, and referenced by a test"
    )

    def check(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        test_literals: Optional[Set[str]] = None
        test_literals_loaded = False
        for module in project.modules:
            registry = _registry_literal(module)
            raised = _raised_codes(module)
            if registry is None:
                if raised and module.path.replace("\\", "/").endswith(
                    "serving/http.py"
                ):
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=module.path,
                            line=1,
                            message=(
                                "module raises structured error codes but "
                                "declares no ERROR_CODES registry"
                            ),
                        )
                    )
                continue
            _, codes, duplicates = registry
            for code, line in duplicates:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=module.path,
                        line=line,
                        message=f"duplicate error code {code!r} in ERROR_CODES",
                    )
                )
            for code, (line, description) in sorted(codes.items()):
                if not description.strip():
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=module.path,
                            line=line,
                            message=(
                                f"error code {code!r} has no description in "
                                "ERROR_CODES"
                            ),
                        )
                    )
                if code not in raised:
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=module.path,
                            line=line,
                            message=(
                                f"error code {code!r} is registered but never "
                                "raised in this module"
                            ),
                        )
                    )
            for code, line in sorted(raised.items()):
                if code not in codes:
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=module.path,
                            line=line,
                            message=(
                                f"error code {code!r} is raised but missing "
                                "from ERROR_CODES"
                            ),
                        )
                    )
            if project.root is not None:
                if not test_literals_loaded:
                    test_literals = _test_referenced_codes(project.root)
                    test_literals_loaded = True
                if test_literals is not None:
                    for code, (line, _) in sorted(codes.items()):
                        if code not in test_literals:
                            findings.append(
                                Finding(
                                    rule=self.name,
                                    path=module.path,
                                    line=line,
                                    message=(
                                        f"error code {code!r} is not referenced "
                                        "by any test under tests/ — add an "
                                        "assertion covering this error path"
                                    ),
                                )
                            )
        return findings
