"""Shared AST infrastructure for the :mod:`repro.analysis` rules.

Every rule consumes the same pre-parsed view of the code base — a list of
:class:`ModuleInfo` records (path, dotted module name, AST, raw source
lines) bundled into one :class:`Project` — so the source tree is read and
parsed exactly once per lint run, no matter how many rules inspect it.

The helpers here are the vocabulary the rules share:

* :func:`dotted_name` — the ``a.b.c`` source text of a ``Name``/
  ``Attribute`` chain (``None`` for anything dynamic);
* :func:`lock_attribute_names` — attribute names assigned from a lock
  factory (``threading.Lock``/``Condition`` or the tracked wrappers in
  :mod:`repro.concurrency`) anywhere in the project;
* :func:`walk_body` — ``ast.walk`` that does **not** descend into nested
  function/class definitions, for "lexically inside this block" queries;
* :class:`MethodIndex` — a name-based call-graph approximation: which
  functions are reachable from a set of entry methods, resolving calls by
  method name across a chosen module set (conservative, no type
  inference — exactly right for "nothing reachable from ``infer()`` may
  mutate ``self``").
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: constructors whose result is a lock (or lock-like condition) object.
LOCK_FACTORIES = {
    "Lock",
    "RLock",
    "Condition",
    "TrackedLock",
    "TrackedRLock",
    "TrackedCondition",
}


@dataclass
class ModuleInfo:
    """One parsed source file plus everything the rules need to cite it."""

    path: str
    name: str
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass
class Project:
    """Everything one lint run looks at."""

    modules: List[ModuleInfo]
    #: nearest enclosing directory holding a ``pyproject.toml`` (the repo
    #: root), used by rules that cross-reference ``tests/``.
    root: Optional[str]

    def module_by_suffix(self, suffix: str) -> List[ModuleInfo]:
        normalised = suffix.replace("\\", "/")
        return [
            module
            for module in self.modules
            if module.path.replace("\\", "/").endswith(normalised)
        ]


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name
                    for name in dirnames
                    if name not in {"__pycache__", ".git", ".venv"}
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        found.append(os.path.join(dirpath, filename))
        elif path.endswith(".py"):
            found.append(path)
    return sorted(dict.fromkeys(os.path.abspath(path) for path in found))


def module_name_for(path: str) -> str:
    """Dotted module name inferred from the package layout on disk."""
    path = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(path))[0]]
    directory = os.path.dirname(path)
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parts.append(os.path.basename(directory))
        directory = os.path.dirname(directory)
    if parts[0] == "__init__":
        parts = parts[1:] or parts
    return ".".join(reversed(parts))


def find_repo_root(path: str) -> Optional[str]:
    """Nearest ancestor directory containing a ``pyproject.toml``."""
    directory = os.path.abspath(path)
    if os.path.isfile(directory):
        directory = os.path.dirname(directory)
    while True:
        if os.path.isfile(os.path.join(directory, "pyproject.toml")):
            return directory
        parent = os.path.dirname(directory)
        if parent == directory:
            return None
        directory = parent


def load_module(path: str) -> ModuleInfo:
    """Parse one file (raises :class:`SyntaxError` on unparsable source)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=path)
    return ModuleInfo(
        path=os.path.abspath(path),
        name=module_name_for(path),
        tree=tree,
        source=source,
        lines=source.splitlines(),
    )


def load_project(paths: Sequence[str]) -> Tuple[Project, List[Tuple[str, SyntaxError]]]:
    """Parse every file under ``paths``; unparsable files are returned
    separately (the engine reports them as findings, not a crash)."""
    modules: List[ModuleInfo] = []
    failures: List[Tuple[str, SyntaxError]] = []
    for path in iter_python_files(paths):
        try:
            modules.append(load_module(path))
        except SyntaxError as exc:
            failures.append((path, exc))
    root = find_repo_root(modules[0].path) if modules else None
    return Project(modules=modules, root=root), failures


# ------------------------------------------------------------------ helpers


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain; ``None`` for dynamic bases."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_attr(node: ast.AST) -> Optional[str]:
    """The final attribute of a call target (``c`` in ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def walk_body(nodes: Iterable[ast.AST]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested def/class/lambda —
    "lexically inside this block" for lock-region queries."""
    stack = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def lock_attribute_names(project: Project) -> Set[str]:
    """Attribute names bound to a lock factory anywhere in the project
    (``self._lock = threading.Lock()`` → ``_lock``)."""
    names: Set[str] = set()
    for module in project.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            factory = terminal_attr(value.func)
            if factory not in LOCK_FACTORIES:
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    names.add(target.attr)
                elif isinstance(target, ast.Name):
                    names.add(target.id)
    return names


@dataclass(frozen=True)
class FunctionRef:
    """One function/method definition, addressable for reachability."""

    module: str
    qualname: str  # "ClassName.method" or "function"
    node: ast.AST  # FunctionDef


class MethodIndex:
    """Name-based call-graph over a module set.

    Resolution is deliberately conservative: ``self.m(...)`` resolves to
    ``m`` on the same class, ``anything.m(...)`` resolves to *every*
    method named ``m`` in the indexed modules, and a bare ``f(...)``
    resolves to every module-level ``f``.  No type inference — which is
    the right bias for an invariant checker: an over-approximate
    reachable set can only make the purity rule stricter, never blind.
    """

    def __init__(self, modules: Iterable[ModuleInfo]):
        self.functions: List[FunctionRef] = []
        self.by_method_name: Dict[str, List[FunctionRef]] = {}
        self.by_class: Dict[Tuple[str, str], Dict[str, FunctionRef]] = {}
        self.module_level: Dict[str, List[FunctionRef]] = {}
        for module in modules:
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    ref = FunctionRef(module.name, node.name, node)
                    self.functions.append(ref)
                    self.module_level.setdefault(node.name, []).append(ref)
                elif isinstance(node, ast.ClassDef):
                    methods: Dict[str, FunctionRef] = {}
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            ref = FunctionRef(
                                module.name, f"{node.name}.{item.name}", item
                            )
                            self.functions.append(ref)
                            methods[item.name] = ref
                            self.by_method_name.setdefault(item.name, []).append(ref)
                    self.by_class[(module.name, node.name)] = methods

    def reachable_from(self, entries: Iterable[FunctionRef]) -> List[FunctionRef]:
        """Every function transitively callable from ``entries``."""
        seen: Dict[Tuple[str, str], FunctionRef] = {}
        queue = list(entries)
        for ref in queue:
            seen[(ref.module, ref.qualname)] = ref
        while queue:
            ref = queue.pop()
            for callee in self._callees(ref):
                key = (callee.module, callee.qualname)
                if key not in seen:
                    seen[key] = callee
                    queue.append(callee)
        return list(seen.values())

    def _callees(self, ref: FunctionRef) -> List[FunctionRef]:
        callees: List[FunctionRef] = []
        class_name = ref.qualname.split(".")[0] if "." in ref.qualname else None
        for node in ast.walk(ref.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                receiver = func.value
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id == "self"
                    and class_name is not None
                ):
                    own = self.by_class.get((ref.module, class_name), {})
                    if func.attr in own:
                        callees.append(own[func.attr])
                        continue
                callees.extend(self.by_method_name.get(func.attr, []))
            elif isinstance(func, ast.Name):
                callees.extend(self.module_level.get(func.id, []))
        return callees
