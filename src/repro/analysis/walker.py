"""Shared AST infrastructure for the :mod:`repro.analysis` rules.

Every rule consumes the same pre-parsed view of the code base — a list of
:class:`ModuleInfo` records (path, dotted module name, AST, raw source
lines) bundled into one :class:`Project` — so the source tree is read and
parsed exactly once per lint run, no matter how many rules inspect it.

The helpers here are the vocabulary the rules share:

* :func:`dotted_name` — the ``a.b.c`` source text of a ``Name``/
  ``Attribute`` chain (``None`` for anything dynamic);
* :func:`lock_attribute_names` — attribute names assigned from a lock
  factory (``threading.Lock``/``Condition`` or the tracked wrappers in
  :mod:`repro.concurrency`) anywhere in the project;
* :func:`walk_body` — ``ast.walk`` that does **not** descend into nested
  function/class definitions, for "lexically inside this block" queries;
* :class:`MethodIndex` — a name-based call-graph approximation: which
  functions are reachable from a set of entry methods, resolving calls by
  method name across a chosen module set (conservative, no type
  inference — exactly right for "nothing reachable from ``infer()`` may
  mutate ``self``");
* :class:`ClassIndex` — every top-level class by name, with name-based
  base-class resolution (``ancestors``/``is_subclass``), feeding the
  cross-boundary contract rules (exception codecs order subclasses before
  bases, RPC payload types are audited transitively);
* :func:`method_signature` / :func:`public_surface` — the public method
  surface of a class as comparable :class:`MethodSignature` records, for
  "this class must mirror that one" checks;
* :func:`raised_names` / :func:`instance_attribute_values` /
  :func:`field_annotations` / :func:`annotation_names` — raise-site and
  attribute-type extraction shared by the codec and pickle rules.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: constructors whose result is a lock (or lock-like condition) object.
LOCK_FACTORIES = {
    "Lock",
    "RLock",
    "Condition",
    "TrackedLock",
    "TrackedRLock",
    "TrackedCondition",
}


@dataclass
class ModuleInfo:
    """One parsed source file plus everything the rules need to cite it."""

    path: str
    name: str
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass
class Project:
    """Everything one lint run looks at."""

    modules: List[ModuleInfo]
    #: nearest enclosing directory holding a ``pyproject.toml`` (the repo
    #: root), used by rules that cross-reference ``tests/``.
    root: Optional[str]

    def module_by_suffix(self, suffix: str) -> List[ModuleInfo]:
        normalised = suffix.replace("\\", "/")
        return [
            module
            for module in self.modules
            if module.path.replace("\\", "/").endswith(normalised)
        ]


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name
                    for name in dirnames
                    if name not in {"__pycache__", ".git", ".venv"}
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        found.append(os.path.join(dirpath, filename))
        elif path.endswith(".py"):
            found.append(path)
    return sorted(dict.fromkeys(os.path.abspath(path) for path in found))


def module_name_for(path: str) -> str:
    """Dotted module name inferred from the package layout on disk."""
    path = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(path))[0]]
    directory = os.path.dirname(path)
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parts.append(os.path.basename(directory))
        directory = os.path.dirname(directory)
    if parts[0] == "__init__":
        parts = parts[1:] or parts
    return ".".join(reversed(parts))


def find_repo_root(path: str) -> Optional[str]:
    """Nearest ancestor directory containing a ``pyproject.toml``."""
    directory = os.path.abspath(path)
    if os.path.isfile(directory):
        directory = os.path.dirname(directory)
    while True:
        if os.path.isfile(os.path.join(directory, "pyproject.toml")):
            return directory
        parent = os.path.dirname(directory)
        if parent == directory:
            return None
        directory = parent


def load_module(path: str) -> ModuleInfo:
    """Parse one file (raises :class:`SyntaxError` on unparsable source)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=path)
    return ModuleInfo(
        path=os.path.abspath(path),
        name=module_name_for(path),
        tree=tree,
        source=source,
        lines=source.splitlines(),
    )


def load_project(paths: Sequence[str]) -> Tuple[Project, List[Tuple[str, SyntaxError]]]:
    """Parse every file under ``paths``; unparsable files are returned
    separately (the engine reports them as findings, not a crash)."""
    modules: List[ModuleInfo] = []
    failures: List[Tuple[str, SyntaxError]] = []
    for path in iter_python_files(paths):
        try:
            modules.append(load_module(path))
        except SyntaxError as exc:
            failures.append((path, exc))
    root = find_repo_root(modules[0].path) if modules else None
    return Project(modules=modules, root=root), failures


# ------------------------------------------------------------------ helpers


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain; ``None`` for dynamic bases."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_attr(node: ast.AST) -> Optional[str]:
    """The final attribute of a call target (``c`` in ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def imported_names(module: ModuleInfo) -> Set[str]:
    """Every name bound by an ``import``/``from ... import`` in the module
    (the as-name when aliased).  Lets cross-boundary rules distinguish "this
    name exists outside the lint scope" from "this name exists nowhere" when
    only a subset of the project is being linted (``--changed-only``)."""
    names: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def walk_body(nodes: Iterable[ast.AST]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested def/class/lambda —
    "lexically inside this block" for lock-region queries."""
    stack = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def lock_attribute_names(project: Project) -> Set[str]:
    """Attribute names bound to a lock factory anywhere in the project
    (``self._lock = threading.Lock()`` → ``_lock``)."""
    names: Set[str] = set()
    for module in project.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            factory = terminal_attr(value.func)
            if factory not in LOCK_FACTORIES:
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    names.add(target.attr)
                elif isinstance(target, ast.Name):
                    names.add(target.id)
    return names


@dataclass(frozen=True)
class FunctionRef:
    """One function/method definition, addressable for reachability."""

    module: str
    qualname: str  # "ClassName.method" or "function"
    node: ast.AST  # FunctionDef


class MethodIndex:
    """Name-based call-graph over a module set.

    Resolution is deliberately conservative: ``self.m(...)`` resolves to
    ``m`` on the same class, ``anything.m(...)`` resolves to *every*
    method named ``m`` in the indexed modules, and a bare ``f(...)``
    resolves to every module-level ``f``.  No type inference — which is
    the right bias for an invariant checker: an over-approximate
    reachable set can only make the purity rule stricter, never blind.
    """

    def __init__(self, modules: Iterable[ModuleInfo]):
        self.functions: List[FunctionRef] = []
        self.by_method_name: Dict[str, List[FunctionRef]] = {}
        self.by_class: Dict[Tuple[str, str], Dict[str, FunctionRef]] = {}
        self.module_level: Dict[str, List[FunctionRef]] = {}
        for module in modules:
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    ref = FunctionRef(module.name, node.name, node)
                    self.functions.append(ref)
                    self.module_level.setdefault(node.name, []).append(ref)
                elif isinstance(node, ast.ClassDef):
                    methods: Dict[str, FunctionRef] = {}
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            ref = FunctionRef(
                                module.name, f"{node.name}.{item.name}", item
                            )
                            self.functions.append(ref)
                            methods[item.name] = ref
                            self.by_method_name.setdefault(item.name, []).append(ref)
                    self.by_class[(module.name, node.name)] = methods

    def reachable_from(self, entries: Iterable[FunctionRef]) -> List[FunctionRef]:
        """Every function transitively callable from ``entries``."""
        seen: Dict[Tuple[str, str], FunctionRef] = {}
        queue = list(entries)
        for ref in queue:
            seen[(ref.module, ref.qualname)] = ref
        while queue:
            ref = queue.pop()
            for callee in self._callees(ref):
                key = (callee.module, callee.qualname)
                if key not in seen:
                    seen[key] = callee
                    queue.append(callee)
        return list(seen.values())

    def _callees(self, ref: FunctionRef) -> List[FunctionRef]:
        callees: List[FunctionRef] = []
        class_name = ref.qualname.split(".")[0] if "." in ref.qualname else None
        for node in ast.walk(ref.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                receiver = func.value
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id == "self"
                    and class_name is not None
                ):
                    own = self.by_class.get((ref.module, class_name), {})
                    if func.attr in own:
                        callees.append(own[func.attr])
                        continue
                callees.extend(self.by_method_name.get(func.attr, []))
            elif isinstance(func, ast.Name):
                callees.extend(self.module_level.get(func.id, []))
        return callees


# ------------------------------------------------------- class/signature index


@dataclass(frozen=True)
class MethodSignature:
    """The comparable shape of one method definition.

    ``params`` excludes the ``self``/``cls`` receiver; ``defaults`` counts
    trailing positional defaults, so two signatures are call-compatible
    exactly when these fields agree.
    """

    name: str
    params: Tuple[str, ...]
    defaults: int
    kwonly: Tuple[str, ...]
    vararg: bool
    kwarg: bool
    is_property: bool

    def compatible_with(self, other: "MethodSignature") -> bool:
        return (
            self.params == other.params
            and self.defaults == other.defaults
            and self.kwonly == other.kwonly
            and self.vararg == other.vararg
            and self.kwarg == other.kwarg
            and self.is_property == other.is_property
        )

    def render(self) -> str:
        if self.is_property:
            return f"{self.name} (property)"
        parts = list(self.params)
        for offset in range(self.defaults):
            index = len(parts) - self.defaults + offset
            parts[index] = f"{parts[index]}=..."
        if self.vararg:
            parts.append("*args")
        elif self.kwonly:
            parts.append("*")
        parts.extend(self.kwonly)
        if self.kwarg:
            parts.append("**kwargs")
        return f"{self.name}({', '.join(parts)})"


@dataclass
class ClassInfo:
    """One top-level class definition, addressable across the project."""

    module: ModuleInfo
    node: ast.ClassDef
    name: str
    bases: Tuple[str, ...]

    def methods(self) -> Dict[str, ast.AST]:
        found: Dict[str, ast.AST] = {}
        for item in self.node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found.setdefault(item.name, item)
        return found


class ClassIndex:
    """Top-level classes by name, with name-based hierarchy resolution.

    Like :class:`MethodIndex`, resolution is deliberately conservative
    and type-inference free: a base written ``hub.HubError`` resolves by
    its terminal name, and ``ancestors`` chases names transitively
    through the indexed modules (builtins simply resolve to nothing).
    """

    def __init__(self, project: Project):
        self.by_name: Dict[str, List[ClassInfo]] = {}
        for module in project.modules:
            for node in module.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                bases = tuple(
                    name
                    for name in (terminal_attr(base) for base in node.bases)
                    if name is not None
                )
                self.by_name.setdefault(node.name, []).append(
                    ClassInfo(module=module, node=node, name=node.name, bases=bases)
                )
        for infos in self.by_name.values():
            infos.sort(key=lambda info: info.module.path)

    def get(self, name: str) -> Optional[ClassInfo]:
        infos = self.by_name.get(name)
        return infos[0] if infos else None

    def resolve(self, name: str, module: Optional[ModuleInfo] = None) -> Optional[ClassInfo]:
        """The class ``name`` refers to — same-module definitions win;
        an ambiguous cross-module name resolves to nothing rather than
        guessing (rules must stay false-positive free on the real tree)."""
        infos = self.by_name.get(name)
        if not infos:
            return None
        if module is not None:
            for info in infos:
                if info.module.path == module.path:
                    return info
        return infos[0] if len(infos) == 1 else None

    def ancestors(self, name: str) -> Set[str]:
        seen: Set[str] = set()
        stack = [name]
        while stack:
            info = self.get(stack.pop())
            if info is None:
                continue
            for base in info.bases:
                if base not in seen:
                    seen.add(base)
                    stack.append(base)
        return seen

    def is_subclass(self, name: str, base: str) -> bool:
        """``name`` is ``base`` or transitively derives from it (by name)."""
        return name == base or base in self.ancestors(name)


def method_signature(node: ast.AST) -> MethodSignature:
    """The comparable :class:`MethodSignature` of one def node."""
    args = node.args
    params = tuple(arg.arg for arg in list(args.posonlyargs) + list(args.args))
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    is_property = any(
        terminal_attr(decorator) == "property" for decorator in node.decorator_list
    )
    return MethodSignature(
        name=node.name,
        params=params,
        defaults=len(args.defaults),
        kwonly=tuple(arg.arg for arg in args.kwonlyargs),
        vararg=args.vararg is not None,
        kwarg=args.kwarg is not None,
        is_property=is_property,
    )


def public_surface(info: ClassInfo) -> Dict[str, MethodSignature]:
    """``{name: signature}`` for every public method (no leading ``_``)."""
    return {
        name: method_signature(node)
        for name, node in info.methods().items()
        if not name.startswith("_")
    }


def class_string_set(info: ClassInfo, attribute: str) -> Optional[Tuple[int, Set[str]]]:
    """A class-level ``ATTRIBUTE = frozenset({...})``-style declaration:
    ``(line, {string members})``, or ``None`` when undeclared."""
    for item in info.node.body:
        if not isinstance(item, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == attribute
            for target in item.targets
        ):
            continue
        members = {
            sub.value
            for sub in ast.walk(item.value)
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
        }
        return item.lineno, members
    return None


def raised_names(node: ast.AST) -> List[Tuple[str, int]]:
    """``(terminal name, line)`` of every ``raise X``/``raise X(...)``
    under ``node`` (bare re-raises and dynamic targets are skipped)."""
    out: List[Tuple[str, int]] = []
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Raise) or sub.exc is None:
            continue
        target = sub.exc.func if isinstance(sub.exc, ast.Call) else sub.exc
        name = terminal_attr(target)
        if name is not None:
            out.append((name, sub.lineno))
    return out


def instance_attribute_values(info: ClassInfo) -> List[Tuple[str, ast.expr, int]]:
    """``(attr, value, line)`` for every ``self.<attr> = <value>`` in any
    method of the class."""
    out: List[Tuple[str, ast.expr, int]] = []
    for method in info.methods().values():
        for sub in ast.walk(method):
            if isinstance(sub, ast.Assign):
                targets, value = sub.targets, sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                targets, value = [sub.target], sub.value
            else:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    out.append((target.attr, value, sub.lineno))
    return out


def field_annotations(info: ClassInfo) -> List[Tuple[str, ast.expr, int]]:
    """``(field, annotation, line)`` for class-body annotated fields —
    the dataclass field inventory."""
    return [
        (item.target.id, item.annotation, item.lineno)
        for item in info.node.body
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name)
    ]


def annotation_names(node: ast.expr) -> Set[str]:
    """Every terminal name mentioned by a type annotation, unwrapping
    subscripts (``Optional[List[Node]]`` → ``Optional, List, Node``) and
    string forward references."""
    names: Set[str] = set()
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        for sub in ast.walk(current):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                names.add(sub.attr)
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                try:
                    stack.append(ast.parse(sub.value, mode="eval").body)
                except SyntaxError:
                    continue
    return names
