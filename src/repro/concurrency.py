"""Runtime lock-order validation for the serving stack.

The serving layer is deeply concurrent — batcher worker pools, the async
journal writer, the checkpoint daemon, hub alias flips racing in-flight
predicts — and its correctness rests on two invariants that a normal test
run cannot see being violated:

* **No lock-order inversions.**  If thread A ever acquires lock X under
  lock Y while thread B acquires Y under X, the process can deadlock; the
  schedule that actually deadlocks may be astronomically rare in tests and
  common under production load.
* **No blocking operations under a lock.**  File/socket I/O, sleeps or
  bounded-queue puts made while holding a lock convert one slow syscall
  into a stall of every thread behind that lock.

This module makes both checkable at runtime without taxing production:

* :func:`TrackedLock` / :func:`TrackedRLock` / :func:`TrackedCondition`
  are drop-in factories for the :mod:`threading` primitives.  By default
  they return the **raw** primitive — zero overhead, nothing recorded.
* Under ``REPRO_LOCK_CHECK=1`` they return checked wrappers that record
  per-thread acquisition stacks into one process-global lock-order graph.
  An acquisition that closes a cycle in that graph raises
  :class:`LockOrderError` (a potential deadlock, caught on the *first*
  schedule that exhibits the ordering, not the rare one that hangs).
* :func:`declare_blocking` marks a region as a blocking operation; under
  the same knob it raises :class:`HeldLockBlockingError` when entered
  while the calling thread holds any tracked lock not explicitly
  constructed with ``allow_blocking=True``.

The static half of the same contract lives in
:mod:`repro.analysis.rules.lock_discipline`; CI runs the serving
concurrency tests once with ``REPRO_LOCK_CHECK=1`` so the dynamic checker
sees real schedules every commit.
"""

from __future__ import annotations

import os
import threading
import traceback
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "HeldLockBlockingError",
    "LockOrderError",
    "TrackedCondition",
    "TrackedLock",
    "TrackedRLock",
    "declare_blocking",
    "held_locks",
    "lock_check_enabled",
    "lock_order_graph",
    "reset_lock_state",
]

_TRUTHY = {"1", "true", "yes", "on"}


def lock_check_enabled() -> bool:
    """True when ``REPRO_LOCK_CHECK`` opts this process into validation.

    Read at *construction* time of each tracked primitive, so a process
    decides once per lock, and the common (unset) case pays nothing —
    the factories return raw :mod:`threading` objects.
    """
    return os.environ.get("REPRO_LOCK_CHECK", "").strip().lower() in _TRUTHY


class LockOrderError(RuntimeError):
    """Two locks were acquired in opposite orders — a potential deadlock."""


class HeldLockBlockingError(RuntimeError):
    """A declared-blocking operation ran while a tracked lock was held."""


# One process-global order graph: edge (A -> B) means "B was acquired
# while A was held" by some thread at some point.  A cycle means two
# orderings coexist, i.e. a deadlock is schedulable.
_state_lock = threading.Lock()
_edges: Dict[Tuple[int, str], Dict[Tuple[int, str], str]] = {}
_tls = threading.local()

# Node identity must outlive the lock object: id() values are recycled by
# the allocator, and a recycled id would graft a dead lock's edges onto an
# unrelated new lock.  A process-wide monotonic serial never collides.
_serial_lock = threading.Lock()
_next_serial = 0


def _allocate_serial() -> int:
    global _next_serial
    with _serial_lock:
        _next_serial += 1
        return _next_serial


def _held_stack() -> List["_CheckedLock"]:
    stack = getattr(_tls, "held", None)
    if stack is None:
        stack = _tls.held = []
    return stack


def reset_lock_state() -> None:
    """Drop the recorded order graph (test isolation helper)."""
    with _state_lock:
        _edges.clear()
    _tls.held = []
    _tls.depths = {}


def held_locks() -> List[str]:
    """Names of the tracked locks the calling thread currently holds."""
    return [lock.name for lock in _held_stack()]


def lock_order_graph() -> Dict[str, List[str]]:
    """Snapshot of the recorded acquired-under graph, by lock name."""
    with _state_lock:
        return {
            source[1]: sorted(target[1] for target in targets)
            for source, targets in _edges.items()
        }


def _capture_site() -> str:
    # The two innermost frames are this module's bookkeeping; the caller's
    # frame is what a human needs to see in a cycle report.
    frames = traceback.format_stack(limit=8)[:-3]
    return "".join(frames[-2:]).rstrip()


def _find_path(
    start: Tuple[int, str], goal: Tuple[int, str]
) -> Optional[List[Tuple[int, str]]]:
    """DFS path start -> goal through the edge map (caller holds state lock)."""
    stack = [(start, [start])]
    seen = {start}
    while stack:
        node, path = stack.pop()
        if node == goal:
            return path
        for neighbour in _edges.get(node, {}):
            if neighbour not in seen:
                seen.add(neighbour)
                stack.append((neighbour, path + [neighbour]))
    return None


def _record_acquisition(lock: "_CheckedLock") -> None:
    """Add held->lock edges; raise :class:`LockOrderError` on a cycle."""
    held = _held_stack()
    if not held:
        return
    site = _capture_site()
    with _state_lock:
        for holder in held:
            if holder.node == lock.node:
                continue
            targets = _edges.setdefault(holder.node, {})
            if lock.node in targets:
                continue
            # Before committing the edge holder -> lock, see whether the
            # graph already orders them the other way around.
            path = _find_path(lock.node, holder.node)
            if path is not None:
                cycle = " -> ".join(node[1] for node in path + [lock.node])
                raise LockOrderError(
                    f"lock-order inversion: acquiring {lock.name!r} while "
                    f"holding {holder.name!r}, but the opposite order "
                    f"{cycle} was already recorded.\n"
                    f"Acquisition site:\n{site}\n"
                    f"Earlier ordering recorded at:\n"
                    + _edges[lock.node][path[1]]
                )
            targets[lock.node] = site


class _CheckedLock:
    """Validating wrapper over one :class:`threading.Lock`/``RLock``."""

    def __init__(self, raw, name: str, allow_blocking: bool, reentrant: bool):
        self._raw = raw
        self.name = name
        self.allow_blocking = allow_blocking
        self.reentrant = reentrant
        self.node: Tuple[int, str] = (_allocate_serial(), name)

    def _depth(self) -> int:
        depths = getattr(_tls, "depths", None)
        if depths is None:
            depths = _tls.depths = {}
        return depths.get(self.node, 0)

    def _set_depth(self, depth: int) -> None:
        _tls.depths[self.node] = depth

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        first = self._depth() == 0
        if first:
            _record_acquisition(self)
        acquired = (
            self._raw.acquire(blocking, timeout)
            if timeout != -1
            else self._raw.acquire(blocking)
        )
        if acquired:
            self._note_acquired()
        return acquired

    def release(self) -> None:
        self._note_released()
        self._raw.release()

    def locked(self) -> bool:
        return self._raw.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    # Shared with _CheckedCondition, which releases/reacquires the lock
    # around wait() without going through acquire()/release().
    def _note_acquired(self) -> None:
        depth = self._depth()
        self._set_depth(depth + 1)
        if depth == 0:
            _held_stack().append(self)

    def _note_released(self) -> None:
        depth = self._depth()
        self._set_depth(max(0, depth - 1))
        if depth <= 1:
            held = _held_stack()
            if self in held:
                held.remove(self)


class _CheckedCondition:
    """Validating condition sharing its (checked) lock's graph node.

    Two conditions built over one lock — the journal writer's wakeup and
    drained signals — are one node in the order graph, exactly like the
    raw primitives where both conditions guard the same critical section.
    """

    def __init__(self, lock: Optional[_CheckedLock], name: str):
        if lock is None:
            lock = _CheckedLock(
                threading.Lock(), name, allow_blocking=False, reentrant=False
            )
        self._lock = lock
        self._cond = threading.Condition(lock._raw)
        self.name = name

    def acquire(self, *args) -> bool:
        return self._lock.acquire(*args)

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> bool:
        return self._lock.__enter__()

    def __exit__(self, *exc_info) -> None:
        self._lock.__exit__(*exc_info)

    def wait(self, timeout: Optional[float] = None) -> bool:
        # wait() releases the underlying lock for its whole sleep; the
        # held-stack must say so, or every waiter would look like it holds
        # the lock across a blocking sleep.
        self._lock._note_released()
        try:
            return self._cond.wait(timeout)
        finally:
            self._lock._note_acquired()

    def wait_for(self, predicate, timeout: Optional[float] = None):
        self._lock._note_released()
        try:
            return self._cond.wait_for(predicate, timeout)
        finally:
            self._lock._note_acquired()

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()


def _raw_lock_of(lock) -> Optional[object]:
    if lock is None:
        return None
    if isinstance(lock, _CheckedLock):
        return lock._raw
    return lock


def TrackedLock(name: str, *, allow_blocking: bool = False):
    """A named :class:`threading.Lock` — checked under ``REPRO_LOCK_CHECK=1``.

    ``allow_blocking=True`` opts this one lock out of the held-lock
    blocking check, for locks whose *job* is serialising a blocking
    operation (the checkpoint daemon's dump lock); it still participates
    in lock-order validation.
    """
    if not lock_check_enabled():
        return threading.Lock()
    return _CheckedLock(
        threading.Lock(), name, allow_blocking=allow_blocking, reentrant=False
    )


def TrackedRLock(name: str, *, allow_blocking: bool = False):
    """A named :class:`threading.RLock` — checked under ``REPRO_LOCK_CHECK=1``."""
    if not lock_check_enabled():
        return threading.RLock()
    return _CheckedLock(
        threading.RLock(), name, allow_blocking=allow_blocking, reentrant=True
    )


def TrackedCondition(lock=None, *, name: str = "condition"):
    """A named :class:`threading.Condition`, optionally over a tracked lock.

    Passing the same tracked lock to several conditions gives them one
    shared graph node, mirroring how raw conditions share a raw lock.
    """
    if isinstance(lock, _CheckedLock):
        return _CheckedCondition(lock, name)
    if lock_check_enabled() and lock is None:
        return _CheckedCondition(None, name)
    return threading.Condition(_raw_lock_of(lock))


@contextmanager
def declare_blocking(operation: str) -> Iterator[None]:
    """Mark a region as a blocking operation (file I/O, sleep, ...).

    Free when validation is off.  Under ``REPRO_LOCK_CHECK=1``, entering
    the region while holding any tracked lock not constructed with
    ``allow_blocking=True`` raises :class:`HeldLockBlockingError` — the
    runtime twin of the static lock-discipline lint rule.
    """
    if lock_check_enabled():
        offenders = [
            lock.name for lock in _held_stack() if not lock.allow_blocking
        ]
        if offenders:
            raise HeldLockBlockingError(
                f"blocking operation {operation!r} entered while holding "
                f"lock(s) {offenders}; release them first (or construct the "
                f"lock with allow_blocking=True if serialising this "
                f"operation is its purpose)"
            )
    yield
