"""The paper's pipeline: dataset construction, models, evaluation."""

from .augmentation import AugmentedDataset, AugmentedSample, Augmenter
from .cross_arch import (
    CrossArchitectureOutcome,
    native_speedups,
    summarize_cross_architecture,
    translated_speedups,
)
from .dynamic_model import DynamicConfigurationPredictor, DynamicModelConfig
from .evaluation import EvaluationSummary, RegionOutcome, evaluate_label_choice, format_table
from .flag_selection import (
    FlagSequencePredictor,
    FlagSelectionResult,
    oracle_sequence_speedup,
    per_region_sequence_speedups,
    select_explored_sequence,
    select_overall_sequence,
    select_sequence_shortlist,
    sequence_speedup,
)
from .hybrid_model import (
    HybridModelConfig,
    HybridStaticDynamicClassifier,
    combine_predictions,
)
from .labeling import (
    LabelSpace,
    MachineDataset,
    RegionTiming,
    label_space_quality,
    select_label_space,
)
from .pipeline import (
    FoldArtifacts,
    MachineEvaluation,
    PipelineConfig,
    ReproPipeline,
)
from .static_model import StaticConfigurationPredictor, StaticModelConfig

__all__ = [
    "AugmentedDataset",
    "AugmentedSample",
    "Augmenter",
    "CrossArchitectureOutcome",
    "native_speedups",
    "summarize_cross_architecture",
    "translated_speedups",
    "DynamicConfigurationPredictor",
    "DynamicModelConfig",
    "EvaluationSummary",
    "RegionOutcome",
    "evaluate_label_choice",
    "format_table",
    "FlagSequencePredictor",
    "FlagSelectionResult",
    "oracle_sequence_speedup",
    "per_region_sequence_speedups",
    "select_explored_sequence",
    "select_overall_sequence",
    "select_sequence_shortlist",
    "sequence_speedup",
    "HybridModelConfig",
    "HybridStaticDynamicClassifier",
    "combine_predictions",
    "LabelSpace",
    "MachineDataset",
    "RegionTiming",
    "label_space_quality",
    "select_label_space",
    "FoldArtifacts",
    "MachineEvaluation",
    "PipelineConfig",
    "ReproPipeline",
    "StaticConfigurationPredictor",
    "StaticModelConfig",
]
