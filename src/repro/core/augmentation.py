"""Dataset augmentation by compiler flag sequences (step A + B of the paper).

Each region's module is compiled under many sampled flag sequences; every
resulting IR variant is extracted (the OpenMP outlined function plus its
callees), turned into a ProGraML-style graph, encoded and tagged with the
region's configuration label.  All variants of a region share the region's
label and stay in the region's cross-validation fold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..graphs.builder import GraphBuilder
from ..graphs.features import EncodedGraph, GraphEncoder
from ..ir.module import Module, extract_region
from ..passes.flag_sampler import FlagSequence, sample_flag_sequences
from ..passes.pass_manager import apply_flag_sequence
from ..passes.pipelines import default_compilation_sequence
from ..workloads.suite import Region


@dataclass
class AugmentedSample:
    """One (region, flag sequence) IR variant with its encoded graph."""

    region_name: str
    family: str
    sequence_name: str
    sequence: List[str]
    graph: EncodedGraph
    label: Optional[int] = None


@dataclass
class AugmentedDataset:
    """All augmented samples plus the deployment (default-O2) variants."""

    samples: List[AugmentedSample] = field(default_factory=list)
    sequences: List[FlagSequence] = field(default_factory=list)

    def samples_for_region(self, region_name: str) -> List[AugmentedSample]:
        return [s for s in self.samples if s.region_name == region_name]

    def samples_for_sequence(self, sequence_name: str) -> List[AugmentedSample]:
        return [s for s in self.samples if s.sequence_name == sequence_name]

    def region_names(self) -> List[str]:
        seen: List[str] = []
        for sample in self.samples:
            if sample.region_name not in seen:
                seen.append(sample.region_name)
        return seen

    def assign_labels(self, labels: Dict[str, int]) -> None:
        for sample in self.samples:
            label = labels.get(sample.region_name)
            sample.label = label
            sample.graph.label = label

    def encoded_graphs(self) -> List[EncodedGraph]:
        return [s.graph for s in self.samples]

    def groups(self) -> List[str]:
        """Group key (region name) per sample — used for grouped k-fold CV."""
        return [s.region_name for s in self.samples]


class Augmenter:
    """Builds :class:`AugmentedDataset` objects from a region suite."""

    def __init__(
        self,
        num_sequences: int = 32,
        seed: int = 0,
        encoder: Optional[GraphEncoder] = None,
        include_default_sequence: bool = True,
        verify_each: bool = False,
    ):
        self.num_sequences = num_sequences
        self.seed = seed
        self.encoder = encoder or GraphEncoder()
        self.builder = GraphBuilder()
        self.include_default_sequence = include_default_sequence
        self.verify_each = verify_each

    # ------------------------------------------------------------------ API
    def augment(self, regions: Sequence[Region]) -> AugmentedDataset:
        """Compile every region under every sampled flag sequence."""
        sequences = sample_flag_sequences(self.num_sequences, seed=self.seed)
        dataset = AugmentedDataset(sequences=list(sequences))
        for region in regions:
            base = region.module
            variants: List[tuple] = []
            if self.include_default_sequence:
                variants.append(("default-O2", default_compilation_sequence()))
            for sequence in sequences:
                variants.append((sequence.name, list(sequence)))
            for sequence_name, passes in variants:
                sample = self._build_sample(region, base, sequence_name, passes)
                dataset.samples.append(sample)
        return dataset

    def encode_region_with_sequence(
        self, region: Region, passes: Sequence[str], sequence_name: str = "custom"
    ) -> AugmentedSample:
        """Compile one region under one sequence (deployment-time path)."""
        return self._build_sample(region, region.module, sequence_name, list(passes))

    # ------------------------------------------------------------- internals
    def _build_sample(
        self, region: Region, base: Module, sequence_name: str, passes: List[str]
    ) -> AugmentedSample:
        transformed = apply_flag_sequence(base, passes, verify_each=self.verify_each, clone=True)
        extracted = extract_region(transformed, region.function_name)
        graph = self.builder.build_module(
            extracted, name=f"{region.name}@{sequence_name}"
        )
        graph.metadata["region"] = region.name
        graph.metadata["family"] = region.family
        graph.metadata["sequence"] = sequence_name
        encoded = self.encoder.encode(graph)
        encoded.metadata = dict(graph.metadata)
        return AugmentedSample(
            region_name=region.name,
            family=region.family,
            sequence_name=sequence_name,
            sequence=list(passes),
            graph=encoded,
        )
