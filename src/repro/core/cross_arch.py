"""Cross-architecture prediction (Section IV-D, Figure 8).

A model trained on one micro-architecture is applied to another by
translating each predicted configuration: prefetcher settings and mapping
policies transfer unchanged, thread/node counts are rescaled to the target
machine.  The translated configuration is then timed on the target machine's
dataset to compute the achieved speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..numasim.configuration import Configuration, translate_configuration
from ..numasim.topology import MachineTopology
from .labeling import LabelSpace, MachineDataset


@dataclass
class CrossArchitectureOutcome:
    """Average speedups of native vs cross prediction on one target machine."""

    target_machine: str
    source_machine: str
    native_static: float
    cross_static: float
    native_dynamic: float
    cross_dynamic: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "native_static": self.native_static,
            "cross_static": self.cross_static,
            "native_dynamic": self.native_dynamic,
            "cross_dynamic": self.cross_dynamic,
        }


def _time_of_configuration(
    machine_data: MachineDataset, region: str, configuration: Configuration
) -> float:
    """Time of ``configuration`` on the target machine, simulating on demand
    when the translated point is not part of the pre-computed space."""
    timing = machine_data.timing(region)
    if configuration in timing.times:
        return timing.times[configuration]
    region_obj = next(r for r in machine_data.regions if r.name == region)
    profile = (
        region_obj.profile
        if machine_data.input_size is None
        else region_obj.profile_at(machine_data.input_size)
    )
    result = machine_data.simulator.simulate(profile, configuration)
    timing.times[configuration] = result.time_seconds
    return result.time_seconds


def translated_speedups(
    predictions: Dict[str, int],
    source_label_space: LabelSpace,
    source_machine: MachineTopology,
    target_machine: MachineTopology,
    target_data: MachineDataset,
) -> Dict[str, float]:
    """Per-region speedup on the target machine when applying the source
    machine's predicted configurations after translation."""
    speedups: Dict[str, float] = {}
    for region, label in predictions.items():
        source_config = source_label_space.configuration_of(label)
        translated = translate_configuration(source_config, source_machine, target_machine)
        time = _time_of_configuration(target_data, region, translated)
        default_time = target_data.timing(region).default_time
        speedups[region] = default_time / time if time > 0 else 0.0
    return speedups


def native_speedups(
    predictions: Dict[str, int],
    label_space: LabelSpace,
    machine_data: MachineDataset,
) -> Dict[str, float]:
    """Per-region speedup of natively predicted configurations."""
    speedups: Dict[str, float] = {}
    for region, label in predictions.items():
        configuration = label_space.configuration_of(label)
        speedups[region] = machine_data.timing(region).speedup_of(configuration)
    return speedups


def summarize_cross_architecture(
    target_machine: str,
    source_machine: str,
    native_static: Dict[str, float],
    cross_static: Dict[str, float],
    native_dynamic: Dict[str, float],
    cross_dynamic: Dict[str, float],
) -> CrossArchitectureOutcome:
    def mean(values: Dict[str, float]) -> float:
        return float(np.mean(list(values.values()))) if values else 0.0

    return CrossArchitectureOutcome(
        target_machine=target_machine,
        source_machine=source_machine,
        native_static=mean(native_static),
        cross_static=mean(cross_static),
        native_dynamic=mean(native_dynamic),
        cross_dynamic=mean(cross_dynamic),
    )
