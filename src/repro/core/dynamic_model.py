"""The dynamic (performance-counter based) baseline model.

Re-implements the approach of Sánchez Barrera et al. that the paper compares
against: a decision tree trained on hardware counters collected while the
region runs under the default configuration (package power, L3 miss ratio
and friends), predicting the best configuration label.  Collecting those
counters requires executing the region — that execution cost is exactly what
the static and hybrid models avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ml.decision_tree import DecisionTreeClassifier
from ..ml.scaling import StandardScaler
from ..numasim.counters import COUNTER_NAMES
from .labeling import MachineDataset


@dataclass
class DynamicModelConfig:
    """Knobs of the dynamic baseline."""

    #: counters used as features; the paper's best tree uses package power and
    #: the L3 miss ratio, we default to the full set which is slightly
    #: stronger (a conservative choice for the baseline we compare against).
    feature_names: Sequence[str] = tuple(COUNTER_NAMES)
    max_depth: Optional[int] = None
    seed: int = 0


class DynamicConfigurationPredictor:
    """Decision tree over performance counters collected at the default run."""

    def __init__(self, config: Optional[DynamicModelConfig] = None):
        self.config = config or DynamicModelConfig()
        self._feature_indices = [COUNTER_NAMES.index(n) for n in self.config.feature_names]
        self.scaler = StandardScaler()
        self.tree = DecisionTreeClassifier(
            max_depth=self.config.max_depth, random_state=self.config.seed
        )
        self._fitted = False

    # ------------------------------------------------------------------ data
    def features_for(self, dataset: MachineDataset, region_names: Sequence[str]) -> np.ndarray:
        rows: List[np.ndarray] = []
        for name in region_names:
            counters = dataset.timing(name).counters_at_default
            rows.append(counters[self._feature_indices])
        return np.vstack(rows) if rows else np.zeros((0, len(self._feature_indices)))

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        dataset: MachineDataset,
        labels: Dict[str, int],
        region_names: Sequence[str],
    ) -> "DynamicConfigurationPredictor":
        features = self.features_for(dataset, region_names)
        target = np.array([labels[name] for name in region_names], dtype=np.int64)
        if features.shape[0] == 0:
            raise ValueError("cannot fit the dynamic model without training regions")
        scaled = self.scaler.fit_transform(features)
        self.tree.fit(scaled, target)
        self._fitted = True
        return self

    # ------------------------------------------------------------- inference
    def predict(self, dataset: MachineDataset, region_names: Sequence[str]) -> Dict[str, int]:
        if not self._fitted:
            raise RuntimeError("predict called before fit")
        features = self.features_for(dataset, region_names)
        if features.shape[0] == 0:
            return {}
        scaled = self.scaler.transform(features)
        predictions = self.tree.predict(scaled)
        return {name: int(label) for name, label in zip(region_names, predictions)}

    def profiling_cost_seconds(self, dataset: MachineDataset, region_names: Sequence[str]) -> float:
        """Cost of collecting the counters: one default-configuration run per
        region (the price the dynamic model pays and the static model avoids)."""
        return float(
            sum(dataset.timing(name).default_time for name in region_names)
        )
