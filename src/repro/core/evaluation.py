"""Evaluation metrics and result containers shared by the experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .labeling import LabelSpace, MachineDataset


@dataclass
class RegionOutcome:
    """Everything measured for one region in one evaluation."""

    region: str
    family: str
    fold: int
    true_label: int
    static_label: Optional[int] = None
    dynamic_label: Optional[int] = None
    hybrid_label: Optional[int] = None
    profiled_by_hybrid: bool = False
    static_error: float = 0.0
    dynamic_error: float = 0.0
    hybrid_error: float = 0.0
    static_speedup: float = 1.0
    dynamic_speedup: float = 1.0
    hybrid_speedup: float = 1.0
    full_exploration_speedup: float = 1.0
    label_space_speedup: float = 1.0


@dataclass
class EvaluationSummary:
    """Aggregated outcomes across all folds of one machine."""

    machine: str
    num_labels: int
    outcomes: List[RegionOutcome] = field(default_factory=list)

    # ------------------------------------------------------------ aggregates
    def _mean(self, attribute: str) -> float:
        values = [getattr(o, attribute) for o in self.outcomes]
        return float(np.mean(values)) if values else 0.0

    @property
    def static_speedup(self) -> float:
        return self._mean("static_speedup")

    @property
    def dynamic_speedup(self) -> float:
        return self._mean("dynamic_speedup")

    @property
    def hybrid_speedup(self) -> float:
        return self._mean("hybrid_speedup")

    @property
    def full_exploration_speedup(self) -> float:
        return self._mean("full_exploration_speedup")

    @property
    def label_space_speedup(self) -> float:
        return self._mean("label_space_speedup")

    @property
    def static_error(self) -> float:
        return self._mean("static_error")

    @property
    def dynamic_error(self) -> float:
        return self._mean("dynamic_error")

    @property
    def hybrid_error(self) -> float:
        return self._mean("hybrid_error")

    @property
    def static_accuracy(self) -> float:
        values = [o.static_label == o.true_label for o in self.outcomes if o.static_label is not None]
        return float(np.mean(values)) if values else 0.0

    @property
    def profiled_fraction(self) -> float:
        values = [o.profiled_by_hybrid for o in self.outcomes]
        return float(np.mean(values)) if values else 0.0

    def gains_ratio_static_vs_dynamic(self) -> float:
        """Fraction of the dynamic model's gains achieved statically.

        Gains are measured as speedup over 1.0 (the default), so the paper's
        "80% of the performance gains provided by dynamic strategies"
        corresponds to a value around 0.8.
        """
        dynamic_gain = self.dynamic_speedup - 1.0
        static_gain = self.static_speedup - 1.0
        if dynamic_gain <= 0:
            return 1.0
        return float(static_gain / dynamic_gain)

    def per_fold_errors(self, which: str = "static") -> Dict[int, float]:
        folds: Dict[int, List[float]] = {}
        for outcome in self.outcomes:
            folds.setdefault(outcome.fold, []).append(getattr(outcome, f"{which}_error"))
        return {fold: float(np.mean(vals)) for fold, vals in sorted(folds.items())}

    def per_region(self, which: str = "static") -> Dict[str, float]:
        return {o.region: getattr(o, f"{which}_error") for o in self.outcomes}

    def sorted_by_static_error(self) -> List[RegionOutcome]:
        return sorted(self.outcomes, key=lambda o: o.static_error, reverse=True)

    def as_rows(self) -> List[Dict[str, object]]:
        """Flat row dicts for table printing."""
        rows = []
        for o in self.outcomes:
            rows.append(
                {
                    "region": o.region,
                    "family": o.family,
                    "fold": o.fold,
                    "static_error": round(o.static_error, 4),
                    "dynamic_error": round(o.dynamic_error, 4),
                    "static_speedup": round(o.static_speedup, 3),
                    "dynamic_speedup": round(o.dynamic_speedup, 3),
                    "hybrid_speedup": round(o.hybrid_speedup, 3),
                    "profiled": o.profiled_by_hybrid,
                }
            )
        return rows


def evaluate_label_choice(
    machine_data: MachineDataset,
    label_space: LabelSpace,
    region: str,
    label: int,
) -> Dict[str, float]:
    """Error and speedup of choosing ``label`` for ``region``."""
    timing = machine_data.timing(region)
    configuration = label_space.configuration_of(label)
    return {
        "error": timing.error_of(configuration, label_space.configurations),
        "speedup": timing.speedup_of(configuration),
    }


def format_table(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Small fixed-width table formatter used by the benchmark harness."""
    if not rows:
        return "(empty)"
    columns = list(columns or rows[0].keys())
    widths = {c: max(len(str(c)), max(len(str(r.get(c, ""))) for r in rows)) for c in columns}
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    separator = "  ".join("-" * widths[c] for c in columns)
    lines = [header, separator]
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)
