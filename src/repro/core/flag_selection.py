"""Flag-sequence selection strategies (step E of the paper, Figures 5 & 11).

Four strategies are compared:

* **explored flag seq** — after training, re-evaluate every sampled sequence
  on the *training* regions and keep the one with the best average predicted
  speedup; all unseen programs are characterised with that single sequence.
* **overall flag seq** — the single sequence that is best on average across
  *all* regions (training and validation); an upper bound for single-sequence
  strategies, used as a diagnostic in the paper.
* **oracle flag seq** — the best sequence per region (theoretical limit).
* **predicted flag seq** — a decision tree over the GNN vectors (computed
  from one fixed sequence) predicts which sequence from a small shortlist to
  use for each new program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ml.decision_tree import DecisionTreeClassifier
from ..ml.feature_selection import ReducedTreeClassifier, select_features_ga
from ..ml.genetic import GAConfig
from .augmentation import AugmentedDataset
from .labeling import LabelSpace, MachineDataset
from .static_model import StaticConfigurationPredictor


def sequence_speedup(
    predictor: StaticConfigurationPredictor,
    dataset: AugmentedDataset,
    machine_data: MachineDataset,
    label_space: LabelSpace,
    sequence_name: str,
    region_names: Sequence[str],
) -> float:
    """Average speedup over the default when characterising ``region_names``
    with ``sequence_name`` and applying the predicted configurations."""
    predictions = predictor.predict_region_labels(dataset, sequence_name, region_names)
    if not predictions:
        return 0.0
    speedups: List[float] = []
    for name, label in predictions.items():
        configuration = label_space.configuration_of(label)
        speedups.append(machine_data.timing(name).speedup_of(configuration))
    return float(np.mean(speedups))


def per_region_sequence_speedups(
    predictor: StaticConfigurationPredictor,
    dataset: AugmentedDataset,
    machine_data: MachineDataset,
    label_space: LabelSpace,
    sequence_names: Sequence[str],
    region_names: Sequence[str],
) -> Dict[str, Dict[str, float]]:
    """sequence -> region -> speedup matrix."""
    table: Dict[str, Dict[str, float]] = {}
    for sequence_name in sequence_names:
        predictions = predictor.predict_region_labels(dataset, sequence_name, region_names)
        row: Dict[str, float] = {}
        for name, label in predictions.items():
            configuration = label_space.configuration_of(label)
            row[name] = machine_data.timing(name).speedup_of(configuration)
        table[sequence_name] = row
    return table


@dataclass
class FlagSelectionResult:
    """Outcome of the four selection strategies over one fold."""

    explored_sequence: str
    overall_sequence: str
    explored_speedup: float
    overall_speedup: float
    oracle_speedup: float
    predicted_speedup: Optional[float] = None
    per_sequence_training_speedup: Dict[str, float] = None  # type: ignore[assignment]


def select_explored_sequence(
    predictor: StaticConfigurationPredictor,
    dataset: AugmentedDataset,
    machine_data: MachineDataset,
    label_space: LabelSpace,
    sequence_names: Sequence[str],
    training_regions: Sequence[str],
) -> Tuple[str, Dict[str, float]]:
    """The "explored flag seq": best average speedup on the training regions."""
    scores: Dict[str, float] = {}
    for sequence_name in sequence_names:
        scores[sequence_name] = sequence_speedup(
            predictor, dataset, machine_data, label_space, sequence_name, training_regions
        )
    best = max(scores, key=scores.get)
    return best, scores


def select_overall_sequence(
    predictor: StaticConfigurationPredictor,
    dataset: AugmentedDataset,
    machine_data: MachineDataset,
    label_space: LabelSpace,
    sequence_names: Sequence[str],
    all_regions: Sequence[str],
) -> str:
    """The "overall flag seq": best average across every region."""
    best_name, best_score = None, -1.0
    for sequence_name in sequence_names:
        score = sequence_speedup(
            predictor, dataset, machine_data, label_space, sequence_name, all_regions
        )
        if score > best_score:
            best_name, best_score = sequence_name, score
    return best_name or (sequence_names[0] if sequence_names else "default-O2")


def oracle_sequence_speedup(
    table: Dict[str, Dict[str, float]], region_names: Sequence[str]
) -> float:
    """Average speedup when each region uses its individually best sequence."""
    speedups: List[float] = []
    for name in region_names:
        best = max(
            (row.get(name, 0.0) for row in table.values()),
            default=0.0,
        )
        speedups.append(best)
    return float(np.mean(speedups)) if speedups else 0.0


def select_sequence_shortlist(
    table: Dict[str, Dict[str, float]],
    region_names: Sequence[str],
    target_fraction: float = 0.99,
    max_sequences: int = 4,
) -> List[str]:
    """Greedy shortlist of sequences reaching ``target_fraction`` of the
    oracle gains (the paper needs 2 on Skylake and 4 on Sandy Bridge)."""
    oracle = oracle_sequence_speedup(table, region_names)
    chosen: List[str] = []
    current = {name: 0.0 for name in region_names}
    while len(chosen) < max_sequences:
        best_candidate, best_value = None, -1.0
        for sequence_name, row in table.items():
            if sequence_name in chosen:
                continue
            value = float(
                np.mean([max(current[n], row.get(n, 0.0)) for n in region_names])
            )
            if value > best_value:
                best_candidate, best_value = sequence_name, value
        if best_candidate is None:
            break
        chosen.append(best_candidate)
        current = {
            n: max(current[n], table[best_candidate].get(n, 0.0)) for n in region_names
        }
        if oracle > 0 and best_value >= target_fraction * oracle:
            break
    return chosen


class FlagSequencePredictor:
    """Decision tree predicting which shortlisted sequence to use per region."""

    def __init__(
        self,
        shortlist: Sequence[str],
        use_ga_selection: bool = True,
        subset_size: int = 10,
        seed: int = 0,
    ):
        self.shortlist = list(shortlist)
        self.use_ga_selection = use_ga_selection
        self.subset_size = subset_size
        self.seed = seed
        self._classifier = None

    def fit(self, graph_vectors: np.ndarray, best_sequence_indices: np.ndarray):
        vectors = np.asarray(graph_vectors, dtype=np.float64)
        labels = np.asarray(best_sequence_indices, dtype=np.int64)
        if self.use_ga_selection and vectors.shape[1] > self.subset_size and len(np.unique(labels)) > 1:
            result = select_features_ga(
                vectors,
                labels,
                subset_size=self.subset_size,
                ga_config=GAConfig(population_size=40, generations=6, seed=self.seed),
                seed=self.seed,
            )
            classifier = ReducedTreeClassifier(result.selected, random_state=self.seed)
        else:
            classifier = DecisionTreeClassifier(random_state=self.seed)
        classifier.fit(vectors, labels)
        self._classifier = classifier
        return self

    def predict(self, graph_vectors: np.ndarray) -> List[str]:
        if self._classifier is None:
            raise RuntimeError("predict called before fit")
        indices = self._classifier.predict(np.asarray(graph_vectors, dtype=np.float64))
        return [self.shortlist[int(i) % len(self.shortlist)] for i in indices]
