"""The hybrid static/dynamic model (Figure 2b of the paper).

After the static model is trained, its per-region prediction error on the
training regions labels a second classifier: "is static information enough
for this region?".  That classifier is a decision tree over the GNN's
normalised graph vectors, optionally restricted to a GA-selected subset of
dimensions (the paper uses 10 out of 256).  At deployment, regions the tree
flags as static-insufficient are profiled and handed to the dynamic model;
all others keep the static prediction — the paper reports the same gains as
the dynamic model while profiling only ~30% of regions.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..ml.decision_tree import DecisionTreeClassifier
from ..ml.feature_selection import ReducedTreeClassifier, select_features_ga
from ..ml.genetic import GAConfig


@dataclass
class HybridModelConfig:
    """Knobs of the hybrid classifier."""

    error_threshold: float = 0.2     # paper: 20% relative error
    #: if fewer than this fraction of training regions exceed the threshold,
    #: fall back to labelling the worst ``fallback_fraction`` of regions as
    #: "needs dynamic" so the classifier still has both classes to learn.
    #: (The paper's static model is evaluated on its training programs, where
    #: errors are optimistically low; without this guard the tree degenerates
    #: to "never profile".)
    min_positive_fraction: float = 0.1
    fallback_fraction: float = 0.3
    use_ga_selection: bool = True
    ga_subset_size: int = 10
    ga_population: int = 40
    ga_generations: int = 6
    seed: int = 0


class HybridStaticDynamicClassifier:
    """Predicts, per region, whether the static prediction is good enough."""

    def __init__(self, config: Optional[HybridModelConfig] = None):
        self.config = config or HybridModelConfig()
        self._classifier = None
        self._selected: Optional[Tuple[int, ...]] = None

    # ------------------------------------------------------------------ fit
    def fit(self, graph_vectors: np.ndarray, static_errors: np.ndarray) -> "HybridStaticDynamicClassifier":
        """``static_errors`` holds the static model's relative error per
        training region; regions above the threshold become the "needs
        dynamic" class."""
        errors = np.asarray(static_errors, dtype=np.float64)
        labels = (errors > self.config.error_threshold).astype(np.int64)
        if labels.size and labels.mean() < self.config.min_positive_fraction:
            # Too few regions exceed the threshold on the training side: use
            # the worst ``fallback_fraction`` of regions as the positive class
            # so the classifier learns which structures are risky.
            cutoff = np.quantile(errors, 1.0 - self.config.fallback_fraction)
            cutoff = max(cutoff, 1e-6)
            labels = (errors >= cutoff).astype(np.int64)
        vectors = np.asarray(graph_vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[0] != labels.shape[0]:
            raise ValueError("graph_vectors and static_errors must align")
        if self.config.use_ga_selection and vectors.shape[1] > self.config.ga_subset_size:
            result = select_features_ga(
                vectors,
                labels,
                subset_size=self.config.ga_subset_size,
                ga_config=GAConfig(
                    population_size=self.config.ga_population,
                    generations=self.config.ga_generations,
                    seed=self.config.seed,
                ),
                seed=self.config.seed,
            )
            self._selected = result.selected
            classifier = ReducedTreeClassifier(result.selected, random_state=self.config.seed)
        else:
            self._selected = None
            classifier = DecisionTreeClassifier(random_state=self.config.seed)
        classifier.fit(vectors, labels)
        self._classifier = classifier
        return self

    # ------------------------------------------------------------- inference
    def needs_dynamic(self, graph_vectors: np.ndarray) -> np.ndarray:
        """Boolean array: True where the region should be profiled."""
        if self._classifier is None:
            raise RuntimeError("needs_dynamic called before fit")
        predictions = self._classifier.predict(np.asarray(graph_vectors, dtype=np.float64))
        return predictions.astype(bool)

    @property
    def selected_dimensions(self) -> Optional[Tuple[int, ...]]:
        return self._selected

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        """JSON-serialisable snapshot of the fitted classifier.

        Used by the serving registry to persist the hybrid decision alongside
        the static model's weights.
        """
        if self._classifier is None:
            raise RuntimeError("to_dict called before fit")
        if isinstance(self._classifier, ReducedTreeClassifier):
            classifier = {"kind": "reduced", "data": self._classifier.to_dict()}
        else:
            classifier = {"kind": "tree", "data": self._classifier.to_dict()}
        return {
            "config": asdict(self.config),
            "selected": None if self._selected is None else list(self._selected),
            "classifier": classifier,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HybridStaticDynamicClassifier":
        hybrid = cls(HybridModelConfig(**data["config"]))
        selected = data.get("selected")
        hybrid._selected = None if selected is None else tuple(int(i) for i in selected)
        payload = data["classifier"]
        if payload["kind"] == "reduced":
            hybrid._classifier = ReducedTreeClassifier.from_dict(payload["data"])
        elif payload["kind"] == "tree":
            hybrid._classifier = DecisionTreeClassifier.from_dict(payload["data"])
        else:
            raise ValueError(f"unknown classifier kind {payload['kind']!r}")
        return hybrid

    def accuracy(self, graph_vectors: np.ndarray, static_errors: np.ndarray) -> float:
        labels = (np.asarray(static_errors) > self.config.error_threshold).astype(np.int64)
        predictions = self.needs_dynamic(graph_vectors).astype(np.int64)
        if labels.size == 0:
            return 0.0
        return float((labels == predictions).mean())


def combine_predictions(
    static_labels: Dict[str, int],
    dynamic_labels: Dict[str, int],
    profile_decisions: Dict[str, bool],
) -> Dict[str, int]:
    """Final hybrid label per region: dynamic where profiled, static elsewhere."""
    combined: Dict[str, int] = {}
    for name, static_label in static_labels.items():
        if profile_decisions.get(name, False) and name in dynamic_labels:
            combined[name] = dynamic_labels[name]
        else:
            combined[name] = static_label
    return combined
