"""Configuration labelling: full-space exploration and label reduction.

Step C of the paper's workflow: every region is executed once across the
whole NUMA × prefetcher space (here: simulated) to find its best
configuration.  Following Sánchez Barrera et al., the space is then reduced
to a small set of representative configurations (13 by default, 6 and 2 for
the label-count study of Figure 6) chosen so that picking the best
configuration *within the reduced set* preserves almost all of the gains of
the full exploration.  The reduced configurations are the class labels every
model in the project predicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..numasim.configuration import Configuration, build_configuration_space, default_configuration
from ..numasim.counters import SimulationResult
from ..numasim.engine import EngineConfig, NumaPrefetchSimulator
from ..numasim.profile import WorkloadProfile
from ..numasim.topology import MachineTopology
from ..workloads.suite import Region


@dataclass
class RegionTiming:
    """Simulated timings of one region across the configuration space."""

    region_name: str
    times: Dict[Configuration, float]
    default_time: float
    counters_at_default: np.ndarray
    per_call_at_default: List[float] = field(default_factory=list)

    def best_configuration(self, subset: Optional[Sequence[Configuration]] = None) -> Configuration:
        candidates = subset if subset is not None else list(self.times)
        return min(candidates, key=lambda cfg: self.times[cfg])

    def best_time(self, subset: Optional[Sequence[Configuration]] = None) -> float:
        return self.times[self.best_configuration(subset)]

    def speedup_of(self, configuration: Configuration) -> float:
        return self.default_time / self.times[configuration]

    def error_of(self, configuration: Configuration, subset: Optional[Sequence[Configuration]] = None) -> float:
        """Relative difference between the chosen and the best configuration.

        The paper computes errors as the absolute difference divided by the
        maximum of the two values, so a perfect prediction scores 0 and a
        2x-slower prediction scores 0.5.
        """
        chosen = self.times[configuration]
        best = self.best_time(subset)
        denom = max(chosen, best)
        return 0.0 if denom == 0 else abs(chosen - best) / denom


class MachineDataset:
    """Timings of every region of a suite on one machine."""

    def __init__(
        self,
        machine: MachineTopology,
        regions: Sequence[Region],
        engine_config: Optional[EngineConfig] = None,
        input_size: Optional[str] = None,
    ):
        self.machine = machine
        self.regions = list(regions)
        self.simulator = NumaPrefetchSimulator(machine, engine_config)
        self.space: List[Configuration] = build_configuration_space(machine)
        self.default = default_configuration(machine)
        self.input_size = input_size
        self.timings: Dict[str, RegionTiming] = {}
        self._populate()

    # ------------------------------------------------------------------
    def _profile_of(self, region: Region) -> WorkloadProfile:
        if self.input_size is None:
            return region.profile
        return region.profile_at(self.input_size)

    def _populate(self) -> None:
        for region in self.regions:
            profile = self._profile_of(region)
            results: Dict[Configuration, SimulationResult] = self.simulator.simulate_space(
                profile, self.space
            )
            times = {cfg: res.time_seconds for cfg, res in results.items()}
            default_result = results[self.default]
            self.timings[region.name] = RegionTiming(
                region_name=region.name,
                times=times,
                default_time=default_result.time_seconds,
                counters_at_default=default_result.counters.as_vector(),
                per_call_at_default=list(default_result.per_call_times),
            )

    # ------------------------------------------------------------------
    def timing(self, region_name: str) -> RegionTiming:
        return self.timings[region_name]

    def region_names(self) -> List[str]:
        return [region.name for region in self.regions]

    def full_exploration_speedups(self) -> Dict[str, float]:
        """Best achievable speedup over the default, per region."""
        return {
            name: timing.default_time / timing.best_time()
            for name, timing in self.timings.items()
        }

    def average_full_speedup(self) -> float:
        speedups = list(self.full_exploration_speedups().values())
        return float(np.mean(speedups)) if speedups else 1.0


@dataclass
class LabelSpace:
    """A reduced set of representative configurations used as class labels."""

    configurations: List[Configuration]
    machine_name: str

    @property
    def num_labels(self) -> int:
        return len(self.configurations)

    def label_of(self, configuration: Configuration) -> int:
        return self.configurations.index(configuration)

    def configuration_of(self, label: int) -> Configuration:
        return self.configurations[label]

    def best_label_for(self, timing: RegionTiming) -> int:
        best = timing.best_configuration(self.configurations)
        return self.configurations.index(best)

    def labels_for(self, dataset: MachineDataset) -> Dict[str, int]:
        return {
            name: self.best_label_for(timing) for name, timing in dataset.timings.items()
        }


def select_label_space(
    dataset: MachineDataset,
    num_labels: int = 13,
    always_include_default: bool = True,
) -> LabelSpace:
    """Greedy selection of representative configurations.

    Iteratively adds the configuration that most reduces the total time of
    all regions when each region runs its best configuration from the chosen
    subset — the same "minimise their number while maximising their gains"
    criterion the paper borrows from Sánchez Barrera et al.
    """
    if num_labels < 1:
        raise ValueError("num_labels must be >= 1")
    space = dataset.space
    region_names = dataset.region_names()
    times = np.array(
        [[dataset.timing(name).times[cfg] for cfg in space] for name in region_names]
    )  # (regions, configs)

    chosen: List[int] = []
    if always_include_default:
        chosen.append(space.index(dataset.default))

    current_best = (
        times[:, chosen].min(axis=1) if chosen else np.full(len(region_names), np.inf)
    )
    while len(chosen) < min(num_labels, len(space)):
        best_candidate = -1
        best_total = float(current_best.sum())
        improved = False
        for idx in range(len(space)):
            if idx in chosen:
                continue
            candidate_best = np.minimum(current_best, times[:, idx])
            total = float(candidate_best.sum())
            if total < best_total - 1e-15:
                best_total = total
                best_candidate = idx
                improved = True
        if not improved:
            # No configuration improves any region: fill with diverse extras.
            remaining = [i for i in range(len(space)) if i not in chosen]
            if not remaining:
                break
            best_candidate = remaining[0]
        chosen.append(best_candidate)
        current_best = times[:, chosen].min(axis=1)

    configurations = [space[i] for i in chosen]
    return LabelSpace(configurations=configurations, machine_name=dataset.machine.name)


def label_space_quality(dataset: MachineDataset, label_space: LabelSpace) -> float:
    """Fraction of full-exploration gains preserved by the reduced labels.

    1.0 means picking the best configuration among the labels is as good as
    exploring the whole space (the paper reports 99% for 13 labels).
    """
    total_full = 0.0
    total_reduced = 0.0
    total_default = 0.0
    for name in dataset.region_names():
        timing = dataset.timing(name)
        total_full += timing.default_time / timing.best_time()
        total_reduced += timing.default_time / timing.best_time(label_space.configurations)
        total_default += 1.0
    full_gain = total_full - total_default
    reduced_gain = total_reduced - total_default
    if full_gain <= 0:
        return 1.0
    return float(reduced_gain / full_gain)
