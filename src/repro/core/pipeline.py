"""End-to-end reproduction pipeline.

``ReproPipeline`` wires every component together the way Figure 1 of the
paper describes:

1. build the region suite (IR + profiles),
2. simulate every region across the NUMA × prefetcher space of each machine
   and derive the reduced label space (steps C),
3. augment the dataset with sampled flag sequences and build graphs (A + B),
4. per cross-validation fold: train the RGCN static model (D), pick the
   deployment flag sequence (E), train the dynamic baseline and the hybrid
   classifier, and evaluate everything on the held-out regions.

The experiment drivers in :mod:`repro.experiments` and the benchmark harness
consume the artifacts this class produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.features import GraphEncoder
from ..ml.crossval import fold_of_groups
from ..numasim.engine import EngineConfig
from ..numasim.machines import machine_by_name
from ..workloads.suite import Region, build_suite
from .augmentation import AugmentedDataset, Augmenter
from .cross_arch import (
    CrossArchitectureOutcome,
    native_speedups,
    summarize_cross_architecture,
    translated_speedups,
)
from .dynamic_model import DynamicConfigurationPredictor, DynamicModelConfig
from .evaluation import EvaluationSummary, RegionOutcome
from .flag_selection import (
    select_explored_sequence,
    select_overall_sequence,
    sequence_speedup,
)
from .hybrid_model import HybridModelConfig, HybridStaticDynamicClassifier, combine_predictions
from .labeling import LabelSpace, MachineDataset, select_label_space
from .static_model import StaticConfigurationPredictor, StaticModelConfig


@dataclass
class PipelineConfig:
    """Configuration of the end-to-end pipeline.

    The defaults are sized so the full two-machine evaluation finishes in a
    few minutes on a laptop; the unit tests shrink them further and the
    benchmark harness can scale them up.
    """

    machines: Tuple[str, ...] = ("skylake", "sandy-bridge")
    families: Optional[List[str]] = None
    region_limit: Optional[int] = None
    num_flag_sequences: int = 12
    num_labels: int = 13
    folds: int = 10
    seed: int = 0
    static_model: StaticModelConfig = field(default_factory=StaticModelConfig)
    hybrid: HybridModelConfig = field(default_factory=HybridModelConfig)
    dynamic: DynamicModelConfig = field(default_factory=DynamicModelConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)


@dataclass
class FoldArtifacts:
    """Everything trained and predicted within one cross-validation fold."""

    fold: int
    train_regions: List[str]
    validation_regions: List[str]
    predictor: StaticConfigurationPredictor
    explored_sequence: str
    sequence_scores: Dict[str, float]
    static_predictions: Dict[str, int]
    dynamic_predictions: Dict[str, int]
    hybrid_decisions: Dict[str, bool]
    hybrid_predictions: Dict[str, int]
    train_static_errors: Dict[str, float]
    hybrid_decision_accuracy: float
    hybrid_classifier: Optional[HybridStaticDynamicClassifier] = None


@dataclass
class MachineEvaluation:
    """Full evaluation of one machine across all folds."""

    machine_name: str
    dataset: MachineDataset
    label_space: LabelSpace
    labels: Dict[str, int]
    summary: EvaluationSummary
    folds: List[FoldArtifacts]

    def fold_for_region(self, region: str) -> Optional[FoldArtifacts]:
        for fold in self.folds:
            if region in fold.validation_regions:
                return fold
        return None


class ReproPipeline:
    """Builds the dataset once and evaluates models per machine."""

    def __init__(self, config: Optional[PipelineConfig] = None):
        self.config = config or PipelineConfig()
        self.encoder = GraphEncoder()
        self.regions: List[Region] = []
        self.machine_data: Dict[str, MachineDataset] = {}
        self.augmented: Optional[AugmentedDataset] = None
        self._label_spaces: Dict[Tuple[str, int], LabelSpace] = {}
        self._evaluations: Dict[Tuple[str, int], MachineEvaluation] = {}
        self._built = False

    # ------------------------------------------------------------------ build
    def build(self) -> "ReproPipeline":
        """Build the suite, the per-machine timings and the augmented graphs."""
        if self._built:
            return self
        cfg = self.config
        self.regions = build_suite(families=cfg.families, limit=cfg.region_limit)
        for machine_name in cfg.machines:
            machine = machine_by_name(machine_name)
            self.machine_data[machine_name] = MachineDataset(
                machine, self.regions, engine_config=cfg.engine
            )
        augmenter = Augmenter(
            num_sequences=cfg.num_flag_sequences,
            seed=cfg.seed,
            encoder=self.encoder,
        )
        self.augmented = augmenter.augment(self.regions)
        self._built = True
        return self

    # ----------------------------------------------------------------- labels
    def label_space(self, machine_name: str, num_labels: Optional[int] = None) -> LabelSpace:
        self.build()
        count = num_labels or self.config.num_labels
        key = (machine_name, count)
        if key not in self._label_spaces:
            self._label_spaces[key] = select_label_space(
                self.machine_data[machine_name], num_labels=count
            )
        return self._label_spaces[key]

    def sequence_names(self) -> List[str]:
        self.build()
        assert self.augmented is not None
        return ["default-O2"] + [s.name for s in self.augmented.sequences]

    def region_names(self) -> List[str]:
        self.build()
        return [region.name for region in self.regions]

    # -------------------------------------------------------------- evaluate
    def evaluate(
        self, machine_name: str, num_labels: Optional[int] = None
    ) -> MachineEvaluation:
        """Run the full cross-validated evaluation on one machine.

        Results are memoised per (machine, label count) since several
        experiment drivers request the same evaluation.
        """
        self.build()
        assert self.augmented is not None
        cfg = self.config
        cache_key = (machine_name, num_labels or cfg.num_labels)
        cached = self._evaluations.get(cache_key)
        if cached is not None:
            return cached
        machine_data = self.machine_data[machine_name]
        label_space = self.label_space(machine_name, num_labels)
        labels = label_space.labels_for(machine_data)
        self.augmented.assign_labels(labels)

        region_names = self.region_names()
        folds = min(cfg.folds, len(region_names))
        fold_assignment = fold_of_groups(region_names, folds=folds, seed=cfg.seed)
        sequence_names = self.sequence_names()

        summary = EvaluationSummary(machine=machine_name, num_labels=label_space.num_labels)
        fold_artifacts: List[FoldArtifacts] = []

        for fold_index in range(folds):
            validation_regions = [r for r in region_names if fold_assignment[r] == fold_index]
            train_regions = [r for r in region_names if fold_assignment[r] != fold_index]
            if not validation_regions or not train_regions:
                continue
            artifacts = self._run_fold(
                fold_index,
                train_regions,
                validation_regions,
                machine_data,
                label_space,
                labels,
                sequence_names,
            )
            fold_artifacts.append(artifacts)
            self._record_outcomes(
                summary, artifacts, machine_data, label_space, labels, fold_index
            )

        evaluation = MachineEvaluation(
            machine_name=machine_name,
            dataset=machine_data,
            label_space=label_space,
            labels=labels,
            summary=summary,
            folds=fold_artifacts,
        )
        self._evaluations[cache_key] = evaluation
        return evaluation

    # ------------------------------------------------------------------ folds
    def _run_fold(
        self,
        fold_index: int,
        train_regions: List[str],
        validation_regions: List[str],
        machine_data: MachineDataset,
        label_space: LabelSpace,
        labels: Dict[str, int],
        sequence_names: List[str],
    ) -> FoldArtifacts:
        assert self.augmented is not None
        cfg = self.config
        train_set = set(train_regions)
        train_samples = [s for s in self.augmented.samples if s.region_name in train_set]

        static_config = StaticModelConfig(**{**self.config.static_model.__dict__})
        static_config.seed = cfg.seed + fold_index
        predictor = StaticConfigurationPredictor(
            num_labels=label_space.num_labels, encoder=self.encoder, config=static_config
        )
        predictor.fit(train_samples)

        explored_sequence, sequence_scores = select_explored_sequence(
            predictor,
            self.augmented,
            machine_data,
            label_space,
            sequence_names,
            train_regions,
        )

        static_predictions = predictor.predict_region_labels(
            self.augmented, explored_sequence, validation_regions
        )
        static_train_predictions = predictor.predict_region_labels(
            self.augmented, explored_sequence, train_regions
        )
        train_static_errors = {
            region: machine_data.timing(region).error_of(
                label_space.configuration_of(label), label_space.configurations
            )
            for region, label in static_train_predictions.items()
        }

        dynamic = DynamicConfigurationPredictor(cfg.dynamic)
        dynamic.fit(machine_data, labels, train_regions)
        dynamic_predictions = dynamic.predict(machine_data, validation_regions)

        # Hybrid: decide per validation region whether to profile.
        train_vector_samples = self._region_samples(train_regions, explored_sequence)
        validation_vector_samples = self._region_samples(validation_regions, explored_sequence)
        hybrid_decisions: Dict[str, bool] = {}
        hybrid_accuracy = 0.0
        hybrid: Optional[HybridStaticDynamicClassifier] = None
        if train_vector_samples and validation_vector_samples:
            train_vectors = predictor.graph_vectors(train_vector_samples)
            errors = np.array(
                [train_static_errors[s.region_name] for s in train_vector_samples]
            )
            hybrid = HybridStaticDynamicClassifier(cfg.hybrid)
            try:
                hybrid.fit(train_vectors, errors)
                validation_vectors = predictor.graph_vectors(validation_vector_samples)
                decisions = hybrid.needs_dynamic(validation_vectors)
                hybrid_decisions = {
                    sample.region_name: bool(decision)
                    for sample, decision in zip(validation_vector_samples, decisions)
                }
                true_needs = np.array(
                    [
                        machine_data.timing(s.region_name).error_of(
                            label_space.configuration_of(static_predictions[s.region_name]),
                            label_space.configurations,
                        )
                        > cfg.hybrid.error_threshold
                        for s in validation_vector_samples
                    ]
                )
                hybrid_accuracy = float(
                    (decisions.astype(bool) == true_needs).mean()
                ) if true_needs.size else 0.0
            except ValueError:
                hybrid = None
                hybrid_decisions = {region: False for region in validation_regions}

        hybrid_predictions = combine_predictions(
            static_predictions, dynamic_predictions, hybrid_decisions
        )

        return FoldArtifacts(
            fold=fold_index,
            train_regions=train_regions,
            validation_regions=validation_regions,
            predictor=predictor,
            explored_sequence=explored_sequence,
            sequence_scores=sequence_scores,
            static_predictions=static_predictions,
            dynamic_predictions=dynamic_predictions,
            hybrid_decisions=hybrid_decisions,
            hybrid_predictions=hybrid_predictions,
            train_static_errors=train_static_errors,
            hybrid_decision_accuracy=hybrid_accuracy,
            hybrid_classifier=hybrid,
        )

    def region_samples(self, region_names: Sequence[str], sequence_name: str):
        """One augmented sample per region under ``sequence_name``.

        The deployment-time handle on servable graphs: the returned samples'
        ``.graph`` attributes are exactly what a
        :class:`~repro.serving.service.PredictionService` accepts.
        """
        self.build()
        assert self.augmented is not None
        samples = []
        for name in region_names:
            candidates = [
                s
                for s in self.augmented.samples_for_region(name)
                if s.sequence_name == sequence_name
            ]
            if candidates:
                samples.append(candidates[0])
        return samples

    # Backwards-compatible alias (pre-serving internal name).
    _region_samples = region_samples

    # --------------------------------------------------------------- records
    def _record_outcomes(
        self,
        summary: EvaluationSummary,
        artifacts: FoldArtifacts,
        machine_data: MachineDataset,
        label_space: LabelSpace,
        labels: Dict[str, int],
        fold_index: int,
    ) -> None:
        for region in artifacts.validation_regions:
            timing = machine_data.timing(region)
            family = next(r.family for r in self.regions if r.name == region)
            outcome = RegionOutcome(
                region=region,
                family=family,
                fold=fold_index,
                true_label=labels[region],
                full_exploration_speedup=timing.default_time / timing.best_time(),
                label_space_speedup=timing.default_time
                / timing.best_time(label_space.configurations),
            )
            if region in artifacts.static_predictions:
                label = artifacts.static_predictions[region]
                config = label_space.configuration_of(label)
                outcome.static_label = label
                outcome.static_error = timing.error_of(config, label_space.configurations)
                outcome.static_speedup = timing.speedup_of(config)
            if region in artifacts.dynamic_predictions:
                label = artifacts.dynamic_predictions[region]
                config = label_space.configuration_of(label)
                outcome.dynamic_label = label
                outcome.dynamic_error = timing.error_of(config, label_space.configurations)
                outcome.dynamic_speedup = timing.speedup_of(config)
            if region in artifacts.hybrid_predictions:
                label = artifacts.hybrid_predictions[region]
                config = label_space.configuration_of(label)
                outcome.hybrid_label = label
                outcome.hybrid_error = timing.error_of(config, label_space.configurations)
                outcome.hybrid_speedup = timing.speedup_of(config)
                outcome.profiled_by_hybrid = artifacts.hybrid_decisions.get(region, False)
            summary.outcomes.append(outcome)

    # ----------------------------------------------------------------- export
    def export_artifacts(
        self,
        evaluation: MachineEvaluation,
        root: str,
        name: Optional[str] = None,
        folds: Optional[Sequence[int]] = None,
    ) -> List["object"]:
        """Persist fold predictors into a serving registry under ``root``.

        Each exported fold becomes one model name (``<name>-fold<k>``) so a
        deployment can pin a fold or ensemble over all of them; the label
        space and (where trained) the hybrid classifier ride along so a
        reloaded :class:`~repro.serving.service.PredictionService` can map
        labels back to concrete NUMA/prefetcher configurations.  Returns the
        :class:`~repro.serving.registry.ArtifactRef` of every saved version.
        """
        # Imported lazily: ``repro.serving`` depends on this module.
        from ..serving.registry import ArtifactRegistry

        registry = ArtifactRegistry(root)
        base = name or f"{evaluation.machine_name}-static"
        wanted = None if folds is None else set(folds)
        exported = [
            fold
            for fold in evaluation.folds
            if wanted is None or fold.fold in wanted
        ]
        # Membership covers every fold of the evaluation — not just this
        # call's subset — so incremental/subset exports under one base name
        # all record the same full roster and any one manifest answers
        # "is the deployed ensemble complete?" consistently.
        member_names = [f"{base}-fold{fold.fold}" for fold in evaluation.folds]
        refs: List[object] = []
        for fold in exported:
            ref = registry.save(
                name=f"{base}-fold{fold.fold}",
                predictor=fold.predictor,
                label_space=evaluation.label_space,
                hybrid=fold.hybrid_classifier,
                metadata={
                    "machine": evaluation.machine_name,
                    "fold": fold.fold,
                    "explored_sequence": fold.explored_sequence,
                    "num_labels": evaluation.label_space.num_labels,
                    "train_regions": list(fold.train_regions),
                    "validation_regions": list(fold.validation_regions),
                    "ensemble": {
                        "base": base,
                        "num_members": len(member_names),
                        "member_names": member_names,
                    },
                },
            )
            refs.append(ref)
        return refs

    # ---------------------------------------------------------------- studies
    def flag_sequence_speedups(self, evaluation: MachineEvaluation) -> Dict[str, float]:
        """Average validation speedup per flag sequence (Figure 5 series)."""
        assert self.augmented is not None
        machine_data = evaluation.dataset
        label_space = evaluation.label_space
        totals: Dict[str, List[float]] = {name: [] for name in self.sequence_names()}
        for fold in evaluation.folds:
            for sequence_name in self.sequence_names():
                value = sequence_speedup(
                    fold.predictor,
                    self.augmented,
                    machine_data,
                    label_space,
                    sequence_name,
                    fold.validation_regions,
                )
                totals[sequence_name].append(value)
        return {name: float(np.mean(vals)) for name, vals in totals.items() if vals}

    def overall_sequence(self, evaluation: MachineEvaluation) -> str:
        """The single best sequence across all regions (diagnostic)."""
        assert self.augmented is not None
        scores = self.flag_sequence_speedups(evaluation)
        return max(scores, key=scores.get)

    def cross_architecture(
        self,
        source_eval: MachineEvaluation,
        target_eval: MachineEvaluation,
    ) -> CrossArchitectureOutcome:
        """Evaluate source-trained predictions on the target machine (Fig. 8)."""
        source_machine = machine_by_name(source_eval.machine_name)
        target_machine = machine_by_name(target_eval.machine_name)

        # Collect source-model predictions for every region (over its fold).
        source_static: Dict[str, int] = {}
        source_dynamic: Dict[str, int] = {}
        for fold in source_eval.folds:
            source_static.update(fold.static_predictions)
            source_dynamic.update(fold.dynamic_predictions)
        target_static: Dict[str, int] = {}
        target_dynamic: Dict[str, int] = {}
        for fold in target_eval.folds:
            target_static.update(fold.static_predictions)
            target_dynamic.update(fold.dynamic_predictions)

        native_static = native_speedups(target_static, target_eval.label_space, target_eval.dataset)
        native_dynamic = native_speedups(target_dynamic, target_eval.label_space, target_eval.dataset)
        cross_static = translated_speedups(
            source_static, source_eval.label_space, source_machine, target_machine, target_eval.dataset
        )
        cross_dynamic = translated_speedups(
            source_dynamic, source_eval.label_space, source_machine, target_machine, target_eval.dataset
        )
        return summarize_cross_architecture(
            target_machine=target_eval.machine_name,
            source_machine=source_eval.machine_name,
            native_static=native_static,
            cross_static=cross_static,
            native_dynamic=native_dynamic,
            cross_dynamic=cross_dynamic,
        )
