"""The static (IR-only) configuration predictor (Figure 2a of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..gnn.model import ModelConfig, StaticRGCNModel
from ..gnn.trainer import Trainer, TrainerConfig
from ..graphs.features import EncodedGraph, GraphEncoder
from .augmentation import AugmentedDataset, AugmentedSample


@dataclass
class StaticModelConfig:
    """Hyper-parameters of the static predictor."""

    hidden_dim: int = 48
    graph_vector_dim: int = 48
    num_rgcn_layers: int = 2
    dropout: float = 0.0
    pooling: str = "mean"
    epochs: int = 25
    batch_size: int = 32
    learning_rate: float = 2e-3
    seed: int = 0


class StaticConfigurationPredictor:
    """Trains the RGCN model on augmented graphs and predicts labels.

    One instance corresponds to one cross-validation fold (the paper trains
    ten independent instances).
    """

    def __init__(
        self,
        num_labels: int,
        encoder: GraphEncoder,
        config: Optional[StaticModelConfig] = None,
    ):
        self.num_labels = num_labels
        self.encoder = encoder
        self.config = config or StaticModelConfig()
        model_config = ModelConfig(
            vocabulary_size=encoder.vocabulary_size,
            num_classes=num_labels,
            hidden_dim=self.config.hidden_dim,
            graph_vector_dim=self.config.graph_vector_dim,
            num_rgcn_layers=self.config.num_rgcn_layers,
            num_extra_features=GraphEncoder.NUM_EXTRA_FEATURES,
            pooling=self.config.pooling,
            dropout=self.config.dropout,
            seed=self.config.seed,
        )
        trainer_config = TrainerConfig(
            epochs=self.config.epochs,
            batch_size=self.config.batch_size,
            learning_rate=self.config.learning_rate,
            seed=self.config.seed,
        )
        self.model = StaticRGCNModel(model_config)
        self.trainer = Trainer(self.model, trainer_config)

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        training_samples: Sequence[AugmentedSample],
        validation_samples: Optional[Sequence[AugmentedSample]] = None,
    ):
        train_graphs = [s.graph for s in training_samples]
        val_graphs = [s.graph for s in validation_samples] if validation_samples else None
        return self.trainer.fit(train_graphs, val_graphs)

    # ------------------------------------------------------------- inference
    def predict_labels(self, samples: Sequence[AugmentedSample]) -> np.ndarray:
        return self.trainer.predict([s.graph for s in samples])

    def predict_label_for_graphs(self, graphs: Sequence[EncodedGraph]) -> np.ndarray:
        return self.trainer.predict(list(graphs))

    def graph_vectors(self, samples: Sequence[AugmentedSample]) -> np.ndarray:
        return self.trainer.graph_vectors([s.graph for s in samples])

    def predict_region_labels(
        self, dataset: AugmentedDataset, sequence_name: str, region_names: Sequence[str]
    ) -> Dict[str, int]:
        """Predict one label per region using its variant under ``sequence_name``."""
        predictions: Dict[str, int] = {}
        samples: List[AugmentedSample] = []
        order: List[str] = []
        for name in region_names:
            candidates = [
                s
                for s in dataset.samples_for_region(name)
                if s.sequence_name == sequence_name
            ]
            if not candidates:
                continue
            samples.append(candidates[0])
            order.append(name)
        if not samples:
            return predictions
        labels = self.predict_labels(samples)
        for name, label in zip(order, labels):
            predictions[name] = int(label)
        return predictions
