"""Stateless inference execution engine.

The training stack (:mod:`repro.gnn`) mutates per-layer activation caches
during ``forward``, which forces at-most-one forward at a time.  This
package is the inference-time counterpart, built around two ideas:

* an immutable :class:`ExecutionPlan` — adjacency (CSR per relation) and
  pooling segments for one collated micro-batch, built once and shared by
  every consumer (lifecycle: build → share → discard);
* pure evaluation paths — ``infer`` on every layer/model never touches the
  backward caches, so inference is reentrant: concurrent micro-batches can
  overlap with each other *and* with a training step on the same weights.

:class:`StackedFoldModel` extends that to whole ensembles: F folds'
relation weights stacked into ``(F, in, out)`` tensors, one batched matmul
per weight and one CSR sweep per relation per layer for all folds at once,
bit-identical to the per-fold forwards.

Concurrency contract: nothing in this package holds mutable state between
calls — no locks are needed anywhere above it, which is why the serving
layer's ``_forward_lock``s could be deleted.
"""

from .plan import ExecutionPlan, PlanShape, build_plan
from .stacked import IncompatibleFoldsError, StackedFoldModel

__all__ = [
    "ExecutionPlan",
    "PlanShape",
    "build_plan",
    "IncompatibleFoldsError",
    "StackedFoldModel",
]
