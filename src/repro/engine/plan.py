"""Execution plans: everything a forward pass needs, computed once.

An :class:`ExecutionPlan` is the immutable, shareable description of one
collated micro-batch: the node feature arrays, the per-relation normalised
adjacency in CSR form (``scipy.sparse.csr_matrix`` — ``indptr`` /
``indices`` / ``data`` arrays per relation, ``None`` for relations with no
edges) and the segment structure the pooling readout needs
(``graph_index``, per-graph node counts and their zero-clamped divisor).

Lifecycle — **build → share → discard**:

* *build* — :meth:`ExecutionPlan.from_batch` is called once per
  micro-batch (the serving layer does this inside ``_forward_batch``).
  Adjacency construction goes through the batch's own cache
  (:meth:`~repro.graphs.batching.GraphBatch.normalized_adjacency`), so a
  batch that is also consumed by the training path never builds twice.
* *share* — the plan is handed to every consumer of the batch: each RGCN
  layer of each fold, the pooling readout, and the
  :class:`~repro.engine.stacked.StackedFoldModel`'s one-pass-for-all-folds
  sweep.  Plans carry no mutable state, so any number of threads may
  evaluate against one plan concurrently.
* *discard* — the plan dies with the micro-batch; nothing in the engine
  retains it.  (Result rows live on in the embedding cache, keyed by
  fingerprint — the plan itself is never cached across batches.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..graphs.batching import GraphBatch, build_normalized_adjacency


def _readonly(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.flags.writeable = False
    return view


@dataclass(frozen=True, eq=False)
class ExecutionPlan:
    """Immutable per-batch inputs shared by every inference consumer."""

    num_nodes: int
    num_graphs: int
    #: ``(num_nodes,)`` vocabulary indices (read-only view).
    token_ids: np.ndarray = field(repr=False)
    #: ``(num_nodes, k)`` auxiliary node features (read-only view).
    extra_features: np.ndarray = field(repr=False)
    #: relation name -> normalised CSR adjacency ``Â_r`` (or ``None`` when
    #: the relation has no edges in this batch).
    adjacency: Mapping[str, object] = field(repr=False)
    #: ``(num_nodes,)`` graph id per node — the pooling segments.
    graph_index: np.ndarray = field(repr=False)
    #: ``(num_graphs,)`` nodes per graph (raw segment sizes; may be 0).
    segment_counts: np.ndarray = field(repr=False)
    #: ``(num_graphs,)`` float64 pooling divisor: ``segment_counts`` with
    #: zero-node graphs clamped to 1, exactly as ``GlobalPool.forward``
    #: computes it — sharing the array keeps mean pooling bit-identical.
    pool_counts: np.ndarray = field(repr=False)

    @classmethod
    def from_batch(cls, batch: GraphBatch) -> "ExecutionPlan":
        """Build the plan for one collated batch (adjacency built at most
        once per batch, via the batch's cache)."""
        counts = np.bincount(
            batch.graph_index, minlength=batch.num_graphs
        ).astype(np.int64)
        pool_counts = counts.astype(np.float64)
        pool_counts[pool_counts == 0] = 1.0
        pool_counts.flags.writeable = False
        return cls(
            num_nodes=batch.num_nodes,
            num_graphs=batch.num_graphs,
            token_ids=_readonly(batch.token_ids),
            extra_features=_readonly(batch.extra_features),
            adjacency=batch.normalized_adjacency(),
            graph_index=_readonly(batch.graph_index),
            segment_counts=_readonly(counts),
            pool_counts=pool_counts,
        )

    @classmethod
    def from_arrays(
        cls,
        token_ids: np.ndarray,
        extra_features: np.ndarray,
        relations: Mapping[str, np.ndarray],
        graph_index: np.ndarray,
        num_graphs: int,
    ) -> "ExecutionPlan":
        """Build a plan without a :class:`GraphBatch` (no adjacency cache)."""
        num_nodes = int(token_ids.shape[0])
        counts = np.bincount(graph_index, minlength=num_graphs).astype(np.int64)
        pool_counts = counts.astype(np.float64)
        pool_counts[pool_counts == 0] = 1.0
        pool_counts.flags.writeable = False
        return cls(
            num_nodes=num_nodes,
            num_graphs=num_graphs,
            token_ids=_readonly(np.asarray(token_ids)),
            extra_features=_readonly(np.asarray(extra_features)),
            adjacency=build_normalized_adjacency(dict(relations), num_nodes),
            graph_index=_readonly(np.asarray(graph_index)),
            segment_counts=_readonly(counts),
            pool_counts=pool_counts,
        )


def build_plan(batch: GraphBatch) -> ExecutionPlan:
    """Convenience alias for :meth:`ExecutionPlan.from_batch`."""
    return ExecutionPlan.from_batch(batch)
