"""Execution plans: everything a forward pass needs, computed once.

An :class:`ExecutionPlan` is the immutable, shareable description of one
collated micro-batch: the node feature arrays, the per-relation normalised
adjacency in CSR form (``scipy.sparse.csr_matrix`` — ``indptr`` /
``indices`` / ``data`` arrays per relation, ``None`` for relations with no
edges) and the segment structure the pooling readout needs
(``graph_index``, per-graph node counts and their zero-clamped divisor).

Lifecycle — **build → share → discard**:

* *build* — :meth:`ExecutionPlan.from_batch` is called once per
  micro-batch (the serving layer does this inside ``_forward_batch``).
  Adjacency construction goes through the batch's own cache
  (:meth:`~repro.graphs.batching.GraphBatch.normalized_adjacency`), so a
  batch that is also consumed by the training path never builds twice.
* *share* — the plan is handed to every consumer of the batch: each RGCN
  layer of each fold, the pooling readout, and the
  :class:`~repro.engine.stacked.StackedFoldModel`'s one-pass-for-all-folds
  sweep.  Plans carry no mutable state, so any number of threads may
  evaluate against one plan concurrently.
* *discard* — the plan dies with the micro-batch; nothing in the engine
  retains it.  (Result rows live on in the embedding cache, keyed by
  fingerprint — the plan itself is never cached across batches.)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

import numpy as np

from ..graphs.batching import GraphBatch, build_normalized_adjacency


def _readonly(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.flags.writeable = False
    return view


@dataclass(frozen=True)
class PlanShape:
    """Size features of one micro-batch — the cost model's input.

    The serving cost model predicts per-batch latency from these four
    counters alone; they are cheap to compute *before* collation (from the
    encoded graphs about to be batched), which is what lets the batcher ask
    "would adding one more request blow the deadline?" without building a
    plan.  :meth:`of_encoded` is the canonical constructor — calibration
    features (journalled per batch) and prediction features (computed per
    candidate batch) must come from the same scale, and ``of_encoded``
    counts raw directed edge entries, which the normalised CSR adjacency
    may deduplicate.
    """

    num_graphs: int
    num_nodes: int
    num_edges: int
    num_relations: int

    @classmethod
    def of_encoded(cls, graphs: Iterable[object]) -> "PlanShape":
        """Shape of the batch that would collate ``graphs`` (encoded graphs
        with ``token_ids`` and a ``relations: name -> (2, e)`` mapping)."""
        num_graphs = num_nodes = num_edges = 0
        relations: set = set()
        for graph in graphs:
            num_graphs += 1
            num_nodes += int(graph.token_ids.shape[0])
            for name, pairs in graph.relations.items():
                edges = int(pairs.shape[1])
                if edges:
                    num_edges += edges
                    relations.add(name)
        return cls(
            num_graphs=num_graphs,
            num_nodes=num_nodes,
            num_edges=num_edges,
            num_relations=len(relations),
        )

    @classmethod
    def from_plan(cls, plan: "ExecutionPlan") -> "PlanShape":
        """Shape of an already-built plan.  Edge counts come from the
        normalised CSR adjacency (``nnz``), which deduplicates repeated
        edges — use :meth:`of_encoded` when the features must match
        calibration data."""
        num_edges = 0
        num_relations = 0
        for matrix in plan.adjacency.values():
            if matrix is None:
                continue
            num_relations += 1
            num_edges += int(matrix.nnz)
        return cls(
            num_graphs=plan.num_graphs,
            num_nodes=plan.num_nodes,
            num_edges=num_edges,
            num_relations=num_relations,
        )

    def scaled(self, factor: float) -> "PlanShape":
        """This shape with graphs/nodes/edges scaled by ``factor`` (the
        relation count is structural and does not scale with load)."""
        return replace(
            self,
            num_graphs=max(1, int(round(self.num_graphs * factor))),
            num_nodes=int(round(self.num_nodes * factor)),
            num_edges=int(round(self.num_edges * factor)),
        )

    def to_dict(self) -> Mapping[str, int]:
        return {
            "graphs": self.num_graphs,
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "relations": self.num_relations,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PlanShape":
        return cls(
            num_graphs=int(data["graphs"]),
            num_nodes=int(data["nodes"]),
            num_edges=int(data["edges"]),
            num_relations=int(data["relations"]),
        )


@dataclass(frozen=True, eq=False)
class ExecutionPlan:
    """Immutable per-batch inputs shared by every inference consumer."""

    num_nodes: int
    num_graphs: int
    #: ``(num_nodes,)`` vocabulary indices (read-only view).
    token_ids: np.ndarray = field(repr=False)
    #: ``(num_nodes, k)`` auxiliary node features (read-only view).
    extra_features: np.ndarray = field(repr=False)
    #: relation name -> normalised CSR adjacency ``Â_r`` (or ``None`` when
    #: the relation has no edges in this batch).
    adjacency: Mapping[str, object] = field(repr=False)
    #: ``(num_nodes,)`` graph id per node — the pooling segments.
    graph_index: np.ndarray = field(repr=False)
    #: ``(num_graphs,)`` nodes per graph (raw segment sizes; may be 0).
    segment_counts: np.ndarray = field(repr=False)
    #: ``(num_graphs,)`` float64 pooling divisor: ``segment_counts`` with
    #: zero-node graphs clamped to 1, exactly as ``GlobalPool.forward``
    #: computes it — sharing the array keeps mean pooling bit-identical.
    pool_counts: np.ndarray = field(repr=False)

    @classmethod
    def from_batch(cls, batch: GraphBatch) -> "ExecutionPlan":
        """Build the plan for one collated batch (adjacency built at most
        once per batch, via the batch's cache)."""
        counts = np.bincount(
            batch.graph_index, minlength=batch.num_graphs
        ).astype(np.int64)
        pool_counts = counts.astype(np.float64)
        pool_counts[pool_counts == 0] = 1.0
        pool_counts.flags.writeable = False
        return cls(
            num_nodes=batch.num_nodes,
            num_graphs=batch.num_graphs,
            token_ids=_readonly(batch.token_ids),
            extra_features=_readonly(batch.extra_features),
            adjacency=batch.normalized_adjacency(),
            graph_index=_readonly(batch.graph_index),
            segment_counts=_readonly(counts),
            pool_counts=pool_counts,
        )

    @classmethod
    def from_arrays(
        cls,
        token_ids: np.ndarray,
        extra_features: np.ndarray,
        relations: Mapping[str, np.ndarray],
        graph_index: np.ndarray,
        num_graphs: int,
    ) -> "ExecutionPlan":
        """Build a plan without a :class:`GraphBatch` (no adjacency cache)."""
        num_nodes = int(token_ids.shape[0])
        counts = np.bincount(graph_index, minlength=num_graphs).astype(np.int64)
        pool_counts = counts.astype(np.float64)
        pool_counts[pool_counts == 0] = 1.0
        pool_counts.flags.writeable = False
        return cls(
            num_nodes=num_nodes,
            num_graphs=num_graphs,
            token_ids=_readonly(np.asarray(token_ids)),
            extra_features=_readonly(np.asarray(extra_features)),
            adjacency=build_normalized_adjacency(dict(relations), num_nodes),
            graph_index=_readonly(np.asarray(graph_index)),
            segment_counts=_readonly(counts),
            pool_counts=pool_counts,
        )

    def shape(self) -> PlanShape:
        """Size features of this plan (see :class:`PlanShape`)."""
        return PlanShape.from_plan(self)


def build_plan(batch: GraphBatch) -> ExecutionPlan:
    """Convenience alias for :meth:`ExecutionPlan.from_batch`."""
    return ExecutionPlan.from_batch(batch)
