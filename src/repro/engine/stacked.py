"""Fold-stacked inference: one planned forward pass for a whole ensemble.

A k-fold ensemble answers every request with k structurally identical
RGCN forward passes over the *same* collated batch — same adjacency, same
pooling segments, different weights.  :class:`StackedFoldModel` exploits
that: every weight of the F folds is stacked into one ``(F, in, out)``
tensor at construction, activations live in one contiguous ``(F, n, d)``
stack, and a single :meth:`infer` call evaluates Equation (1) of the paper
for all folds at once:

* the embedding lookup is one gather from the ``(F, V, d)`` stacked table,
  and every fold-dense transform (self-loop, extra-feature projection,
  pooling projection, feed-forward block, classifier head) is one batched
  ``np.matmul`` against the stacked weight — one call per weight instead
  of one per fold;
* the per-relation propagation accumulates fold by fold over contiguous
  ``(n, d)`` slices of the stack.  This is deliberate: each fold's
  activations (a few MB) stay cache-resident across the relation sweep,
  which profiles faster on serving hardware than fanning the sparse
  matmat over a fold-concatenated ``(n, F*d)`` operand that has to stream
  from main memory (measured ~1.4x end to end on the 64-request burst).

Parity is bit-for-bit: ``np.matmul`` over an ``(F, n, d)`` stack runs the
same GEMM per 2-D slice as the per-fold ``x @ W``; the sparse and scatter
(pooling) accumulations visit the same elements in the same order; and
every elementwise add/ReLU/normalisation matches the per-fold expression.
Stacked logits therefore equal the per-fold :meth:`StaticRGCNModel.infer`
logits exactly (asserted in ``tests/test_engine.py``).

The stacked model is **stateless** (weights are snapshotted copies, no
activation caches): any number of threads may call :meth:`infer`
concurrently, which is what lets the serving layer drop its forward locks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..gnn.model import StaticRGCNModel
from ..gnn.pooling import pool_segments
from .plan import ExecutionPlan

try:  # scipy's C kernel, used directly so sparse results land in reused
    # buffers instead of freshly allocated arrays (the wrapper's np.zeros
    # per call is pure page-fault churn across a 60-matmat sweep).  The
    # kernel *accumulates* into its output, exactly like the wrapper's
    # internal call — same routine, same bits.
    from scipy.sparse import _sparsetools as _scipy_sparsetools

    _CSR_MATVECS = _scipy_sparsetools.csr_matvecs
except (ImportError, AttributeError):  # pragma: no cover - scipy internals moved
    _CSR_MATVECS = None

try:  # raw BLAS gemm for fused multiply-accumulate: ``c += a @ b`` in one
    # kernel call.  beta only changes the final write of each C entry from
    # a store to one IEEE add of the same dot product, so the result is
    # bit-identical to ``c += numpy.matmul(a, b)`` — asserted by the
    # engine parity tests.
    from scipy.linalg.blas import dgemm as _DGEMM
except ImportError:  # pragma: no cover - scipy without BLAS wrappers
    _DGEMM = None


def _gemm_accumulate(out: np.ndarray, a: np.ndarray, b: np.ndarray) -> None:
    """``out += a @ b`` for C-contiguous float64 2-D arrays.

    Runs as one dgemm with ``beta=1`` on the transposed (Fortran-order)
    views — ``out.T = b.T @ a.T + out.T`` — so no operand is copied and
    the separate add pass disappears.
    """
    if _DGEMM is None:
        out += a @ b
        return
    _DGEMM(1.0, b.T, a.T, beta=1.0, c=out.T, overwrite_c=True)


def _spmm_into(matrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out[:] = matrix @ x`` with ``out`` reused across calls.

    Falls back to the allocating ``matrix @ x`` when the scipy kernel is
    unavailable; both paths run the same ``csr_matvecs`` accumulation, so
    the results are bit-identical.
    """
    if _CSR_MATVECS is None:
        return matrix @ x
    out.fill(0.0)
    rows, cols = matrix.shape
    _CSR_MATVECS(
        rows,
        cols,
        x.shape[1],
        matrix.indptr,
        matrix.indices,
        matrix.data,
        x.ravel(),
        out.ravel(),
    )
    return out

#: ModelConfig fields that must agree across folds for stacking to be
#: possible (everything shape- or semantics-bearing; ``dropout`` and
#: ``seed`` are inference-irrelevant and may differ).
_COMPAT_FIELDS = (
    "vocabulary_size",
    "num_classes",
    "hidden_dim",
    "graph_vector_dim",
    "num_rgcn_layers",
    "num_extra_features",
    "relations",
    "pooling",
)


class IncompatibleFoldsError(ValueError):
    """Members differ in a way that makes weight stacking impossible."""


class StackedFoldModel:
    """All folds of an ensemble as one stacked, stateless evaluator.

    ``models`` must share every shape-bearing hyper-parameter (checked;
    :class:`IncompatibleFoldsError` otherwise).  Weights are copied into
    ``(F, ...)`` stacks at construction — the stacked model is a frozen
    snapshot, deliberately decoupled from later mutation of the source
    models (served models are immutable artefacts).
    """

    def __init__(self, models: Sequence[StaticRGCNModel]):
        if not models:
            raise ValueError("StackedFoldModel needs at least one model")
        first = models[0].config
        for i, model in enumerate(models[1:], start=1):
            for field in _COMPAT_FIELDS:
                if getattr(model.config, field) != getattr(first, field):
                    raise IncompatibleFoldsError(
                        f"fold {i} differs in {field!r}: "
                        f"{getattr(model.config, field)!r} vs "
                        f"{getattr(first, field)!r}"
                    )
        self.num_folds = len(models)
        self.config = first
        self.relations = list(first.relations)
        self.hidden_dim = first.hidden_dim
        self.graph_vector_dim = first.graph_vector_dim
        self.num_classes = first.num_classes

        def stack(arrays: List[np.ndarray]) -> np.ndarray:
            return np.ascontiguousarray(np.stack(arrays, axis=0))

        self._embed = stack([m.embedding.weight.value for m in models])  # (F, V, d)
        self._extra_w = stack([m.extra_proj.weight.value for m in models])
        self._extra_b = stack([m.extra_proj.bias.value for m in models])[:, None, :]
        self._self_w: List[np.ndarray] = []
        self._rel_w: List[Dict[str, np.ndarray]] = []
        self._rgcn_b: List[np.ndarray] = []
        for layer_index in range(first.num_rgcn_layers):
            layers = [m.rgcn_layers[layer_index] for m in models]
            self._self_w.append(stack([l.self_weight.value for l in layers]))
            self._rel_w.append(
                {
                    rel: stack([l.relation_weights[rel].value for l in layers])
                    for rel in self.relations
                }
            )
            self._rgcn_b.append(stack([l.bias.value for l in layers])[:, None, :])
        self._pool_mode = first.pooling
        self._pool_w = stack([m.pool_proj.weight.value for m in models])
        self._pool_b = stack([m.pool_proj.bias.value for m in models])[:, None, :]
        self._ff1_w = stack([m.ff1.weight.value for m in models])
        self._ff1_b = stack([m.ff1.bias.value for m in models])[:, None, :]
        self._ff2_w = stack([m.ff2.weight.value for m in models])
        self._ff2_b = stack([m.ff2.bias.value for m in models])[:, None, :]
        self._gamma = stack([m.norm.gamma.value for m in models])[:, None, :]
        self._beta = stack([m.norm.beta.value for m in models])[:, None, :]
        self._norm_eps = models[0].norm.eps
        self._clf_w = stack([m.classifier.weight.value for m in models])
        self._clf_b = stack([m.classifier.bias.value for m in models])[:, None, :]

    # ------------------------------------------------------------------ infer
    def infer(self, plan: ExecutionPlan) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate every fold over one plan.

        Returns ``(logits, graph_vectors)`` of shapes ``(B, F, L)`` and
        ``(B, F, D)`` — batch-major, so row ``j`` is graph ``j``'s per-fold
        stack (exactly what the ensemble combiners and the shared cache
        consume).  ``logits[:, f]`` is bit-identical to fold ``f``'s own
        :meth:`StaticRGCNModel.infer` over the same plan.
        """
        num_folds = self.num_folds
        n = plan.num_nodes
        # Scratch buffers reused across the whole sweep (allocated per call,
        # so concurrent infer() calls stay fully isolated — statelessness is
        # the engine's contract).  Reuse turns ~60 short-lived multi-MB
        # allocations per sweep into two, which profiles measurably faster.
        ax_buf = np.empty((n, self.hidden_dim))
        x = self._embed[:, plan.token_ids, :]  # (F, n, d) gather
        tmp = np.matmul(plan.extra_features, self._extra_w)
        np.add(tmp, self._extra_b, out=tmp)
        np.add(x, tmp, out=x)  # x = embed + (extra @ W + b), as the layers
        for self_w, rel_w, bias in zip(self._self_w, self._rel_w, self._rgcn_b):
            out = np.matmul(x, self_w)  # one batched GEMM for all folds
            # Fold-outer, relation-inner: one fold's (n, d) activation slice
            # stays cache-resident across the whole relation sweep (the
            # adjacency matrices are shared and small).  Per element the
            # accumulation still applies the relations in the per-fold
            # layer's order, so the bits match exactly.
            propagated = [
                (plan.adjacency.get(rel), rel_w[rel]) for rel in self.relations
            ]
            for fold in range(num_folds):
                x_fold, out_fold = x[fold], out[fold]
                for matrix, weights in propagated:
                    if matrix is None:
                        continue
                    ax = _spmm_into(matrix, x_fold, ax_buf)
                    _gemm_accumulate(out_fold, ax, weights[fold])
            np.add(out, bias, out=out)
            np.multiply(out, out > 0.0, out=out)  # ReLU, same expression
            x = out
        pooled = self._pool(x, plan)  # (F, B, d)
        projected = np.matmul(pooled, self._pool_w) + self._pool_b
        ff = np.matmul(projected, self._ff1_w) + self._ff1_b
        ff = ff * (ff > 0.0)
        ff = np.matmul(ff, self._ff2_w) + self._ff2_b
        z = projected + ff
        mean = z.mean(axis=-1, keepdims=True)
        var = z.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self._norm_eps)
        graph_vectors = ((z - mean) * inv_std) * self._gamma + self._beta  # (F, B, D)
        logits = np.matmul(graph_vectors, self._clf_w) + self._clf_b  # (F, B, L)
        return (
            np.ascontiguousarray(np.swapaxes(logits, 0, 1)),  # (B, F, L)
            np.ascontiguousarray(np.swapaxes(graph_vectors, 0, 1)),  # (B, F, D)
        )

    # -------------------------------------------------------------- internals
    def _pool(self, x: np.ndarray, plan: ExecutionPlan) -> np.ndarray:
        """Per-fold readout over the plan's segments, ``(F, B, hidden)``.

        Each fold runs the shared :func:`~repro.gnn.pooling.pool_segments`
        kernel over its contiguous ``(n, d)`` slice — literally the same
        call as :meth:`GlobalPool.infer`, so the accumulation order (hence
        the bits) matches the per-fold path by construction.
        """
        pooled = np.empty((self.num_folds, plan.num_graphs, x.shape[2]))
        for fold in range(self.num_folds):
            pooled[fold] = pool_segments(
                x[fold],
                plan.graph_index,
                plan.num_graphs,
                plan.pool_counts,
                self._pool_mode,
            )
        return pooled
