"""Experiment drivers regenerating every figure of the paper.

Each ``figN_*`` function takes pre-built pipeline artifacts (so the expensive
dataset construction and model training are shared across figures) and
returns the rows/series the corresponding figure plots.  The benchmark
harness under ``benchmarks/`` calls these functions and prints their output;
``EXPERIMENTS.md`` records the paper-vs-measured comparison.
"""

from .figures import (
    fig3_region_errors,
    fig4_fold_errors,
    fig5_flag_sequence_speedups,
    fig6_label_count_study,
    fig7_label_counts,
    fig8_cross_architecture,
    fig9_hybrid_per_region,
    fig10_input_size_losses,
    fig11_flag_selection_strategies,
    fig12_per_call_behaviour,
    headline_claims,
)

__all__ = [
    "fig3_region_errors",
    "fig4_fold_errors",
    "fig5_flag_sequence_speedups",
    "fig6_label_count_study",
    "fig7_label_counts",
    "fig8_cross_architecture",
    "fig9_hybrid_per_region",
    "fig10_input_size_losses",
    "fig11_flag_selection_strategies",
    "fig12_per_call_behaviour",
    "headline_claims",
]
