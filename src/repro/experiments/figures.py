"""Per-figure analysis functions.

Every function consumes artifacts produced by
:class:`repro.core.pipeline.ReproPipeline` (and, where needed, extra
simulation) and returns plain dictionaries / lists that mirror the series
plotted in the corresponding figure of the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.evaluation import EvaluationSummary
from ..core.flag_selection import (
    FlagSequencePredictor,
    oracle_sequence_speedup,
    per_region_sequence_speedups,
    select_sequence_shortlist,
)
from ..core.labeling import MachineDataset, label_space_quality, select_label_space
from ..core.pipeline import MachineEvaluation, ReproPipeline
from ..gnn.metrics import per_label_counts
from ..numasim.engine import NumaPrefetchSimulator
from ..numasim.machines import machine_by_name, skylake_gold
from ..workloads.inputs import SIZE_1, SIZE_2
from ..workloads.suite import Region


# ---------------------------------------------------------------------------
# Figure 3 — per-region prediction errors, static vs dynamic
# ---------------------------------------------------------------------------
def fig3_region_errors(evaluation: MachineEvaluation) -> List[Dict[str, object]]:
    """Rows: region, static error, dynamic error — sorted like the paper
    (static error descending), one row per region."""
    rows: List[Dict[str, object]] = []
    for outcome in evaluation.summary.sorted_by_static_error():
        rows.append(
            {
                "region": outcome.region,
                "static_error": round(outcome.static_error, 4),
                "dynamic_error": round(outcome.dynamic_error, 4),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 4 — per-fold average errors
# ---------------------------------------------------------------------------
def fig4_fold_errors(evaluation: MachineEvaluation) -> Dict[str, Dict[int, float]]:
    return {
        "static": evaluation.summary.per_fold_errors("static"),
        "dynamic": evaluation.summary.per_fold_errors("dynamic"),
    }


# ---------------------------------------------------------------------------
# Figure 5 — speedup achieved per flag sequence
# ---------------------------------------------------------------------------
def fig5_flag_sequence_speedups(
    pipeline: ReproPipeline, evaluation: MachineEvaluation
) -> Dict[str, float]:
    """Sequence name -> average speedup, plus the explored-sequence marker."""
    speedups = pipeline.flag_sequence_speedups(evaluation)
    explored = {fold.explored_sequence for fold in evaluation.folds}
    result = dict(speedups)
    result["__explored__"] = float(
        np.mean([speedups[name] for name in explored if name in speedups])
    ) if explored else 0.0
    return result


# ---------------------------------------------------------------------------
# Figure 6 — gains and error versus the number of labels
# ---------------------------------------------------------------------------
def fig6_label_count_study(
    pipeline: ReproPipeline,
    machine_name: str,
    label_counts: Sequence[int] = (2, 6, 13),
) -> List[Dict[str, float]]:
    rows: List[Dict[str, float]] = []
    for count in label_counts:
        evaluation = pipeline.evaluate(machine_name, num_labels=count)
        summary = evaluation.summary
        rows.append(
            {
                "labels": float(count),
                "full_exploration": summary.label_space_speedup,
                "explored_flag_seq": summary.static_speedup,
                "error_rate": summary.static_error,
                "accuracy": summary.static_accuracy,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 7 — predictions per label
# ---------------------------------------------------------------------------
def fig7_label_counts(evaluation: MachineEvaluation) -> Dict[str, List[int]]:
    true_labels = [o.true_label for o in evaluation.summary.outcomes]
    predicted = [
        o.static_label if o.static_label is not None else 0
        for o in evaluation.summary.outcomes
    ]
    counts = per_label_counts(true_labels, predicted, evaluation.label_space.num_labels)
    return {key: value.tolist() for key, value in counts.items()}


# ---------------------------------------------------------------------------
# Figure 8 — cross-architecture speedups
# ---------------------------------------------------------------------------
def fig8_cross_architecture(
    pipeline: ReproPipeline,
    source_eval: MachineEvaluation,
    target_eval: MachineEvaluation,
) -> Dict[str, float]:
    outcome = pipeline.cross_architecture(source_eval, target_eval)
    return outcome.as_dict()


# ---------------------------------------------------------------------------
# Figure 9 — hybrid vs dynamic vs full exploration, per region
# ---------------------------------------------------------------------------
def fig9_hybrid_per_region(evaluation: MachineEvaluation) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for outcome in sorted(
        evaluation.summary.outcomes, key=lambda o: o.hybrid_speedup, reverse=True
    ):
        rows.append(
            {
                "region": outcome.region,
                "dynamic_speedup": round(outcome.dynamic_speedup, 3),
                "hybrid_speedup": round(outcome.hybrid_speedup, 3),
                "full_exploration": round(outcome.full_exploration_speedup, 3),
                "profiled": outcome.profiled_by_hybrid,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 10 — speedup losses when reusing size-2 configurations on size-1
# ---------------------------------------------------------------------------
def fig10_input_size_losses(
    regions: Sequence[Region],
    machine_name: str = "skylake-gold",
    num_labels: int = 13,
    max_regions: Optional[int] = 20,
) -> List[Dict[str, float]]:
    """Per-region loss L = S(best conf of size-1) - S(best conf of size-2),
    both evaluated on size-1 (Section IV-E)."""
    machine = (
        skylake_gold() if machine_name == "skylake-gold" else machine_by_name(machine_name)
    )
    chosen = list(regions)[:max_regions] if max_regions else list(regions)
    data_size1 = MachineDataset(machine, chosen, input_size=SIZE_1)
    data_size2 = MachineDataset(machine, chosen, input_size=SIZE_2)
    labels = select_label_space(data_size1, num_labels=num_labels)

    rows: List[Dict[str, float]] = []
    for region in chosen:
        timing1 = data_size1.timing(region.name)
        timing2 = data_size2.timing(region.name)
        best1 = timing1.best_configuration(labels.configurations)
        best2 = timing2.best_configuration(labels.configurations)
        speedup_native = timing1.speedup_of(best1)
        speedup_transferred = timing1.speedup_of(best2)
        rows.append(
            {
                "region": region.name,
                "speedup_size1_native": round(speedup_native, 3),
                "speedup_size2_config": round(speedup_transferred, 3),
                "loss": round(speedup_native - speedup_transferred, 3),
            }
        )
    rows.sort(key=lambda r: r["loss"], reverse=True)
    return rows


# ---------------------------------------------------------------------------
# Figure 11 — flag-sequence selection strategies
# ---------------------------------------------------------------------------
def fig11_flag_selection_strategies(
    pipeline: ReproPipeline, evaluation: MachineEvaluation
) -> Dict[str, float]:
    """Average speedups of explored / overall / predicted / oracle strategies."""
    assert pipeline.augmented is not None
    machine_data = evaluation.dataset
    label_space = evaluation.label_space
    sequence_names = pipeline.sequence_names()

    explored: List[float] = []
    overall_scores: Dict[str, List[float]] = {name: [] for name in sequence_names}
    predicted: List[float] = []
    oracle: List[float] = []

    for fold in evaluation.folds:
        table = per_region_sequence_speedups(
            fold.predictor,
            pipeline.augmented,
            machine_data,
            label_space,
            sequence_names,
            fold.validation_regions,
        )
        explored_row = table.get(fold.explored_sequence, {})
        if explored_row:
            explored.append(float(np.mean(list(explored_row.values()))))
        for name in sequence_names:
            row = table.get(name, {})
            if row:
                overall_scores[name].append(float(np.mean(list(row.values()))))
        oracle.append(oracle_sequence_speedup(table, fold.validation_regions))

        # Predicted flag sequence: shortlist from the training regions, then a
        # decision tree over graph vectors chooses per validation region.
        train_table = per_region_sequence_speedups(
            fold.predictor,
            pipeline.augmented,
            machine_data,
            label_space,
            sequence_names,
            fold.train_regions,
        )
        shortlist = select_sequence_shortlist(train_table, fold.train_regions)
        if len(shortlist) >= 1:
            train_samples = pipeline._region_samples(fold.train_regions, "default-O2")
            val_samples = pipeline._region_samples(fold.validation_regions, "default-O2")
            if train_samples and val_samples:
                train_vectors = fold.predictor.graph_vectors(train_samples)
                best_index = []
                for sample in train_samples:
                    scores = [
                        train_table.get(seq, {}).get(sample.region_name, 0.0)
                        for seq in shortlist
                    ]
                    best_index.append(int(np.argmax(scores)))
                flag_model = FlagSequencePredictor(shortlist, use_ga_selection=False)
                flag_model.fit(train_vectors, np.asarray(best_index))
                val_vectors = fold.predictor.graph_vectors(val_samples)
                chosen = flag_model.predict(val_vectors)
                speedups = [
                    table.get(seq, {}).get(sample.region_name, 0.0)
                    for sample, seq in zip(val_samples, chosen)
                ]
                if speedups:
                    predicted.append(float(np.mean(speedups)))

    overall_means = {
        name: float(np.mean(vals)) for name, vals in overall_scores.items() if vals
    }
    overall_best = max(overall_means.values()) if overall_means else 0.0
    return {
        "explored_flag_seq": float(np.mean(explored)) if explored else 0.0,
        "overall_flag_seq": overall_best,
        "predicted_flag_seq": float(np.mean(predicted)) if predicted else 0.0,
        "oracle_flag_seq": float(np.mean(oracle)) if oracle else 0.0,
    }


# ---------------------------------------------------------------------------
# Figure 12 — execution time per call of mispredicted regions
# ---------------------------------------------------------------------------
def fig12_per_call_behaviour(
    evaluation: MachineEvaluation, num_regions: int = 4
) -> Dict[str, List[float]]:
    """Per-call execution times for the most mispredicted regions plus a
    stable reference region (the paper shows SP)."""
    series: Dict[str, List[float]] = {}
    worst = evaluation.summary.sorted_by_static_error()[:num_regions]
    for outcome in worst:
        timing = evaluation.dataset.timing(outcome.region)
        series[outcome.region] = [t * 1e3 for t in timing.per_call_at_default]
    # Stable reference: the region with the lowest static error and >1 call.
    stable = sorted(evaluation.summary.outcomes, key=lambda o: o.static_error)
    for outcome in stable:
        timing = evaluation.dataset.timing(outcome.region)
        if len(timing.per_call_at_default) > 1:
            series[f"{outcome.region} (reference)"] = [
                t * 1e3 for t in timing.per_call_at_default
            ]
            break
    return series


# ---------------------------------------------------------------------------
# Headline claims
# ---------------------------------------------------------------------------
def headline_claims(evaluation: MachineEvaluation) -> Dict[str, float]:
    """The paper's two headline numbers: the static model reaches ~80% of the
    dynamic model's gains; the hybrid matches the dynamic model while
    profiling ~30% of regions."""
    summary: EvaluationSummary = evaluation.summary
    dynamic_gain = summary.dynamic_speedup - 1.0
    hybrid_gain = summary.hybrid_speedup - 1.0
    return {
        "static_speedup": summary.static_speedup,
        "dynamic_speedup": summary.dynamic_speedup,
        "hybrid_speedup": summary.hybrid_speedup,
        "full_exploration_speedup": summary.full_exploration_speedup,
        "static_fraction_of_dynamic_gains": summary.gains_ratio_static_vs_dynamic(),
        "hybrid_fraction_of_dynamic_gains": (
            hybrid_gain / dynamic_gain if dynamic_gain > 0 else 1.0
        ),
        "profiled_fraction": summary.profiled_fraction,
    }
