"""NumPy graph-neural-network stack: RGCN layers, static model, training."""

from .layers import Dropout, Embedding, LayerNorm, Linear, ReLU
from .losses import (
    accuracy,
    class_weight_vector,
    cross_entropy,
    log_softmax,
    softmax,
)
from .metrics import (
    TrainingHistory,
    accuracy_score,
    confusion_matrix,
    macro_f1,
    per_label_counts,
)
from .model import ModelConfig, StaticRGCNModel
from .optim import SGD, Adam, Optimizer, clip_gradients
from .parameters import Parameter, ParameterStore, glorot_uniform, normal_init
from .pooling import GlobalPool, pool_segments
from .rgcn import RGCNLayer
from .trainer import Trainer, TrainerConfig, build_model_and_trainer

__all__ = [
    "Dropout",
    "Embedding",
    "LayerNorm",
    "Linear",
    "ReLU",
    "accuracy",
    "class_weight_vector",
    "cross_entropy",
    "log_softmax",
    "softmax",
    "TrainingHistory",
    "accuracy_score",
    "confusion_matrix",
    "macro_f1",
    "per_label_counts",
    "ModelConfig",
    "StaticRGCNModel",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_gradients",
    "Parameter",
    "ParameterStore",
    "glorot_uniform",
    "normal_init",
    "GlobalPool",
    "pool_segments",
    "RGCNLayer",
    "Trainer",
    "TrainerConfig",
    "build_model_and_trainer",
]
