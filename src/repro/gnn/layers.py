"""Basic neural layers (NumPy, explicit forward/backward)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .parameters import ParameterStore, glorot_uniform, normal_init


class Layer:
    """Base class: layers cache what they need in ``forward`` and release it
    in ``backward``; parameters live in a shared :class:`ParameterStore`.

    Every layer additionally exposes ``infer``, a *pure* evaluation-mode
    forward: it computes exactly the same values as ``forward`` (bit for
    bit) but never touches the per-layer activation caches, so concurrent
    ``infer`` calls on one layer are safe and an ``infer`` interleaved with
    a training step cannot corrupt the pending backward pass.  The
    inference engine (:mod:`repro.engine`) only ever calls ``infer``.
    """

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def infer(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Layer):
    """Affine transform ``y = x @ W + b``."""

    def __init__(
        self,
        store: ParameterStore,
        name: str,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ):
        self.weight = store.create(f"{name}.weight", glorot_uniform(rng, in_features, out_features))
        self.bias = store.create(f"{name}.bias", np.zeros(out_features)) if bias else None
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        return self.infer(x)

    def infer(self, x: np.ndarray) -> np.ndarray:
        y = x @ self.weight.value
        if self.bias is not None:
            y = y + self.bias.value
        return y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._input is not None, "backward called before forward"
        self.weight.grad += self._input.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        grad_input = grad_output @ self.weight.value.T
        self._input = None
        return grad_input


class Embedding(Layer):
    """Token embedding lookup."""

    def __init__(
        self,
        store: ParameterStore,
        name: str,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator,
    ):
        self.weight = store.create(
            f"{name}.weight", normal_init(rng, (num_embeddings, embedding_dim), scale=0.1)
        )
        self._indices: Optional[np.ndarray] = None

    def forward(self, indices: np.ndarray) -> np.ndarray:
        self._indices = indices
        return self.infer(indices)

    def infer(self, indices: np.ndarray) -> np.ndarray:
        return self.weight.value[indices]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._indices is not None, "backward called before forward"
        np.add.at(self.weight.grad, self._indices, grad_output)
        self._indices = None
        return np.zeros(0)  # embeddings have no upstream input


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self):
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0.0
        return x * self._mask

    def infer(self, x: np.ndarray) -> np.ndarray:
        # Same expression as forward (not np.maximum), so signed zeros and
        # every downstream bit pattern match the training path exactly.
        return x * (x > 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._mask is not None, "backward called before forward"
        grad = grad_output * self._mask
        self._mask = None
        return grad


class Dropout(Layer):
    """Inverted dropout; identity when ``training`` is False."""

    def __init__(self, rate: float, rng: np.random.Generator):
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng
        self.training = True
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def infer(self, x: np.ndarray) -> np.ndarray:
        # Inference is evaluation-mode by definition: inverted dropout is
        # the identity, regardless of the layer's ``training`` flag.
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        grad = grad_output * self._mask
        self._mask = None
        return grad


class LayerNorm(Layer):
    """Layer normalisation over the last dimension."""

    def __init__(self, store: ParameterStore, name: str, dim: int, eps: float = 1e-5):
        self.gamma = store.create(f"{name}.gamma", np.ones(dim))
        self.beta = store.create(f"{name}.beta", np.zeros(dim))
        self.eps = eps
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std)
        return x_hat * self.gamma.value + self.beta.value

    def infer(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        return x_hat * self.gamma.value + self.beta.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward called before forward"
        x_hat, inv_std = self._cache
        self.gamma.grad += (grad_output * x_hat).sum(axis=0)
        self.beta.grad += grad_output.sum(axis=0)
        d = grad_output.shape[-1]
        g = grad_output * self.gamma.value
        grad_input = (
            g - g.mean(axis=-1, keepdims=True) - x_hat * (g * x_hat).mean(axis=-1, keepdims=True)
        ) * inv_std
        self._cache = None
        return grad_input
