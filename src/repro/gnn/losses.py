"""Loss functions and numerically-stable softmax utilities."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def cross_entropy(
    logits: np.ndarray,
    labels: np.ndarray,
    class_weights: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    """Softmax cross-entropy loss.

    Returns ``(loss, grad_logits)`` where the gradient is already divided by
    the batch size (so optimizer steps are batch-size independent).
    ``class_weights`` optionally re-weights classes, which matters because
    the 13-label configuration distribution is very skewed (Figure 7 of the
    paper shows some labels occur only twice).
    """
    if logits.ndim != 2:
        raise ValueError("logits must be 2-D (batch, classes)")
    batch = logits.shape[0]
    if labels.shape[0] != batch:
        raise ValueError("labels batch size mismatch")
    log_probs = log_softmax(logits, axis=1)
    probs = np.exp(log_probs)
    picked = log_probs[np.arange(batch), labels]
    if class_weights is not None:
        weights = class_weights[labels]
    else:
        weights = np.ones(batch)
    total_weight = max(weights.sum(), 1e-12)
    loss = float(-(picked * weights).sum() / total_weight)
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    grad *= (weights / total_weight)[:, None]
    return loss, grad


def class_weight_vector(labels: np.ndarray, num_classes: int, smoothing: float = 1.0) -> np.ndarray:
    """Inverse-frequency class weights with additive smoothing."""
    counts = np.bincount(labels, minlength=num_classes).astype(np.float64) + smoothing
    weights = counts.sum() / (num_classes * counts)
    return weights


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    if logits.size == 0:
        return 0.0
    predictions = logits.argmax(axis=1)
    return float((predictions == labels).mean())
