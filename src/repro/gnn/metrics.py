"""Classification metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np


def confusion_matrix(
    true_labels: Sequence[int], predicted_labels: Sequence[int], num_classes: int
) -> np.ndarray:
    """Confusion matrix ``C[t, p]`` = count of true class t predicted as p."""
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for t, p in zip(true_labels, predicted_labels):
        matrix[int(t), int(p)] += 1
    return matrix


def per_label_counts(
    true_labels: Sequence[int], predicted_labels: Sequence[int], num_classes: int
) -> Dict[str, np.ndarray]:
    """Per-label oracle/predicted/correct counts (Figure 7 of the paper)."""
    true_arr = np.asarray(true_labels, dtype=np.int64)
    pred_arr = np.asarray(predicted_labels, dtype=np.int64)
    oracle = np.bincount(true_arr, minlength=num_classes)
    predicted = np.bincount(pred_arr, minlength=num_classes)
    correct = np.zeros(num_classes, dtype=np.int64)
    for cls in range(num_classes):
        correct[cls] = int(((true_arr == cls) & (pred_arr == cls)).sum())
    return {"oracle": oracle, "predicted": predicted, "correct": correct}


def accuracy_score(true_labels: Sequence[int], predicted_labels: Sequence[int]) -> float:
    true_arr = np.asarray(true_labels)
    pred_arr = np.asarray(predicted_labels)
    if true_arr.size == 0:
        return 0.0
    return float((true_arr == pred_arr).mean())


def macro_f1(true_labels: Sequence[int], predicted_labels: Sequence[int], num_classes: int) -> float:
    """Macro-averaged F1 over classes that actually occur."""
    matrix = confusion_matrix(true_labels, predicted_labels, num_classes)
    f1_values: List[float] = []
    for cls in range(num_classes):
        tp = matrix[cls, cls]
        fp = matrix[:, cls].sum() - tp
        fn = matrix[cls, :].sum() - tp
        if tp + fn == 0:
            continue
        precision = tp / (tp + fp) if (tp + fp) > 0 else 0.0
        recall = tp / (tp + fn)
        if precision + recall == 0:
            f1_values.append(0.0)
        else:
            f1_values.append(2 * precision * recall / (precision + recall))
    return float(np.mean(f1_values)) if f1_values else 0.0


@dataclass
class TrainingHistory:
    """Per-epoch training curves."""

    train_loss: List[float]
    train_accuracy: List[float]
    validation_accuracy: List[float]

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    def best_validation_accuracy(self) -> float:
        return max(self.validation_accuracy) if self.validation_accuracy else 0.0
