"""The static prediction model of the paper (Figure 2a).

Architecture: token embedding -> stacked RGCN layers (ReLU) -> graph pooling
-> feed-forward block with a residual link -> layer norm -> fully-connected
classifier over configuration labels.  The normalised graph vector (the
output of the Add & Norm stage) is exposed separately because the hybrid
model and the flag-prediction model consume it as their feature vector.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.batching import GraphBatch
from ..graphs.graph import RELATIONS
from .layers import Dropout, Embedding, LayerNorm, Linear, ReLU
from .losses import cross_entropy
from .parameters import ParameterStore
from .pooling import GlobalPool
from .rgcn import RGCNLayer


@dataclass
class ModelConfig:
    """Hyper-parameters of :class:`StaticRGCNModel`.

    The defaults are sized for the reproduction's dataset (hundreds to a few
    thousand graphs of 30-300 nodes); ``graph_vector_dim`` corresponds to the
    256-wide vector of the paper but is kept configurable so the unit tests
    can run tiny models.
    """

    vocabulary_size: int = 128
    num_classes: int = 13
    hidden_dim: int = 64
    graph_vector_dim: int = 64
    num_rgcn_layers: int = 2
    num_extra_features: int = 4
    relations: Tuple[str, ...] = tuple(RELATIONS)
    pooling: str = "mean"
    dropout: float = 0.0
    seed: int = 0


class StaticRGCNModel:
    """RGCN-based configuration classifier over program graphs."""

    def __init__(self, config: ModelConfig):
        self.config = config
        self.store = ParameterStore()
        rng = np.random.default_rng(config.seed)
        self._rng = rng

        c = config
        self.embedding = Embedding(self.store, "embed", c.vocabulary_size, c.hidden_dim, rng)
        self.extra_proj = Linear(self.store, "extra", c.num_extra_features, c.hidden_dim, rng)
        self.rgcn_layers: List[RGCNLayer] = []
        self.activations: List[ReLU] = []
        self.dropouts: List[Dropout] = []
        for i in range(c.num_rgcn_layers):
            self.rgcn_layers.append(
                RGCNLayer(self.store, f"rgcn{i}", c.hidden_dim, c.hidden_dim, c.relations, rng)
            )
            self.activations.append(ReLU())
            self.dropouts.append(Dropout(c.dropout, rng))
        self.pool = GlobalPool(c.pooling)
        self.pool_proj = Linear(self.store, "pool_proj", c.hidden_dim, c.graph_vector_dim, rng)
        self.ff1 = Linear(self.store, "ff1", c.graph_vector_dim, c.graph_vector_dim, rng)
        self.ff_act = ReLU()
        self.ff2 = Linear(self.store, "ff2", c.graph_vector_dim, c.graph_vector_dim, rng)
        self.norm = LayerNorm(self.store, "norm", c.graph_vector_dim)
        self.classifier = Linear(self.store, "classifier", c.graph_vector_dim, c.num_classes, rng)

        self.training = True
        self._cache: Optional[dict] = None

    # -------------------------------------------------------------- plumbing
    def train(self) -> None:
        self.training = True
        for dropout in self.dropouts:
            dropout.training = True

    def eval(self) -> None:
        self.training = False
        for dropout in self.dropouts:
            dropout.training = False

    def num_parameters(self) -> int:
        return self.store.num_weights()

    def state_dict(self) -> Dict[str, np.ndarray]:
        return self.store.state_dict()

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self.store.load_state_dict(state)

    # ---------------------------------------------------------- persistence
    #: reserved npz entry holding the JSON-encoded :class:`ModelConfig`.
    CONFIG_KEY = "__model_config__"

    def save_npz(self, path) -> None:
        """Serialise weights *and* hyper-parameters to one ``.npz`` file.

        The config rides along as a JSON byte array under
        :data:`CONFIG_KEY`, so :meth:`load_npz` can rebuild the architecture
        without any side-channel.  Weights stay float64 end to end, making
        the round trip bit-identical.
        """
        arrays = self.state_dict()
        if self.CONFIG_KEY in arrays:
            raise ValueError(f"parameter name {self.CONFIG_KEY!r} is reserved")
        config_json = json.dumps(asdict(self.config), sort_keys=True)
        arrays[self.CONFIG_KEY] = np.frombuffer(
            config_json.encode("utf-8"), dtype=np.uint8
        )
        np.savez(path, **arrays)

    @classmethod
    def load_npz(cls, path) -> "StaticRGCNModel":
        """Rebuild a model saved with :meth:`save_npz` (exact weights)."""
        with np.load(path) as data:
            if cls.CONFIG_KEY not in data:
                raise ValueError(f"{path!r} was not written by save_npz")
            config_dict = json.loads(bytes(data[cls.CONFIG_KEY].tobytes()).decode("utf-8"))
            config_dict["relations"] = tuple(config_dict["relations"])
            state = {
                name: data[name] for name in data.files if name != cls.CONFIG_KEY
            }
        model = cls(ModelConfig(**config_dict))
        model.load_state_dict(state)
        model.eval()
        return model

    # --------------------------------------------------------------- forward
    def forward(self, batch: GraphBatch) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(logits, graph_vectors)`` for a batch."""
        x = self.embedding.forward(batch.token_ids)
        x = x + self.extra_proj.forward(batch.extra_features)
        adjacency = batch.normalized_adjacency()
        for rgcn, act, dropout in zip(self.rgcn_layers, self.activations, self.dropouts):
            x = rgcn.forward(x, adjacency)
            x = act.forward(x)
            x = dropout.forward(x)
        pooled = self.pool.forward(x, batch.graph_index, batch.num_graphs)
        projected = self.pool_proj.forward(pooled)
        ff = self.ff2.forward(self.ff_act.forward(self.ff1.forward(projected)))
        graph_vectors = self.norm.forward(projected + ff)
        logits = self.classifier.forward(graph_vectors)
        self._cache = {"num_nodes": batch.num_nodes}
        return logits, graph_vectors

    # ----------------------------------------------------------------- infer
    def infer(self, plan) -> Tuple[np.ndarray, np.ndarray]:
        """Stateless evaluation-mode forward over an
        :class:`~repro.engine.ExecutionPlan`.

        Returns ``(logits, graph_vectors)`` with exactly the values an
        ``eval()``-mode :meth:`forward` would produce on the plan's source
        batch (bit for bit), but without touching ``self._cache`` or any
        layer's activation cache: concurrent ``infer`` calls are safe, and
        an ``infer`` between a training ``forward`` and its ``backward``
        leaves the pending gradients intact.  Dropout is the identity here
        regardless of the ``training`` flag — inference is eval-mode by
        definition.
        """
        x = self.embedding.infer(plan.token_ids)
        x = x + self.extra_proj.infer(plan.extra_features)
        for rgcn, act in zip(self.rgcn_layers, self.activations):
            x = rgcn.infer(x, plan.adjacency)
            x = act.infer(x)
        pooled = self.pool.infer(x, plan)
        projected = self.pool_proj.infer(pooled)
        ff = self.ff2.infer(self.ff_act.infer(self.ff1.infer(projected)))
        graph_vectors = self.norm.infer(projected + ff)
        logits = self.classifier.infer(graph_vectors)
        return logits, graph_vectors

    # -------------------------------------------------------------- backward
    def backward(self, grad_logits: np.ndarray, grad_graph_vectors: Optional[np.ndarray] = None) -> None:
        """Backpropagate from the classifier logits (and optionally from an
        additional gradient on the graph vectors)."""
        grad_z = self.classifier.backward(grad_logits)
        if grad_graph_vectors is not None:
            grad_z = grad_z + grad_graph_vectors
        grad_res = self.norm.backward(grad_z)
        # residual: z_in = projected + ff(projected)
        grad_ff = self.ff2.backward(grad_res)
        grad_ff = self.ff_act.backward(grad_ff)
        grad_ff = self.ff1.backward(grad_ff)
        grad_projected = grad_res + grad_ff
        grad_pooled = self.pool_proj.backward(grad_projected)
        grad_nodes = self.pool.backward(grad_pooled)
        for rgcn, act, dropout in zip(
            reversed(self.rgcn_layers), reversed(self.activations), reversed(self.dropouts)
        ):
            grad_nodes = dropout.backward(grad_nodes)
            grad_nodes = act.backward(grad_nodes)
            grad_nodes = rgcn.backward(grad_nodes)
        self.extra_proj.backward(grad_nodes)
        self.embedding.backward(grad_nodes)

    # ------------------------------------------------------------ high level
    def loss_and_gradients(
        self,
        batch: GraphBatch,
        class_weights: Optional[np.ndarray] = None,
    ) -> Tuple[float, float]:
        """Compute loss, accumulate gradients; returns (loss, accuracy)."""
        logits, _ = self.forward(batch)
        labels = batch.labels
        if (labels < 0).any():
            raise ValueError("all graphs in a training batch must carry labels")
        loss, grad_logits = cross_entropy(logits, labels, class_weights)
        self.backward(grad_logits)
        acc = float((logits.argmax(axis=1) == labels).mean())
        return loss, acc

    def predict(self, batch: GraphBatch) -> np.ndarray:
        """Predicted label per graph."""
        logits, _ = self.forward(batch)
        return logits.argmax(axis=1)

    def predict_proba(self, batch: GraphBatch) -> np.ndarray:
        from .losses import softmax

        logits, _ = self.forward(batch)
        return softmax(logits, axis=1)

    def graph_vectors(self, batch: GraphBatch) -> np.ndarray:
        """The normalised per-graph vectors (hybrid-model features)."""
        _, vectors = self.forward(batch)
        return vectors
