"""Gradient-descent optimizers."""

from __future__ import annotations

from typing import Dict

import numpy as np

from .parameters import ParameterStore


class Optimizer:
    """Base optimizer over a :class:`ParameterStore`."""

    def __init__(self, store: ParameterStore):
        self.store = store

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        self.store.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        store: ParameterStore,
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(store)
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self) -> None:
        for param in self.store:
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            if self.momentum:
                velocity = self._velocity.get(param.name)
                if velocity is None:
                    velocity = np.zeros_like(param.value)
                velocity = self.momentum * velocity + grad
                self._velocity[param.name] = velocity
                update = velocity
            else:
                update = grad
            param.value -= self.learning_rate * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba)."""

    def __init__(
        self,
        store: ParameterStore,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(store)
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param in self.store:
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            m = self._m.get(param.name)
            v = self._v.get(param.name)
            if m is None:
                m = np.zeros_like(param.value)
                v = np.zeros_like(param.value)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * (grad * grad)
            self._m[param.name] = m
            self._v[param.name] = v
            m_hat = m / bias1
            v_hat = v / bias2
            param.value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_gradients(store: ParameterStore, max_norm: float) -> float:
    """Clip the global gradient norm in place; returns the pre-clip norm."""
    total = 0.0
    for param in store:
        total += float((param.grad ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for param in store:
            param.grad *= scale
    return norm
