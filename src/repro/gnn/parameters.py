"""Parameter containers and weight initialisation for the NumPy GNN."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np


class Parameter:
    """A trainable array with its accumulated gradient."""

    __slots__ = ("name", "value", "grad")

    def __init__(self, name: str, value: np.ndarray):
        self.name = name
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.value.shape

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"<Parameter {self.name} {self.value.shape}>"


class ParameterStore:
    """Flat registry of parameters owned by a model."""

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}

    def create(self, name: str, value: np.ndarray) -> Parameter:
        if name in self._parameters:
            raise ValueError(f"duplicate parameter name {name!r}")
        param = Parameter(name, value)
        self._parameters[name] = param
        return param

    def __getitem__(self, name: str) -> Parameter:
        return self._parameters[name]

    def __contains__(self, name: str) -> bool:
        return name in self._parameters

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._parameters.values())

    def __len__(self) -> int:
        return len(self._parameters)

    def names(self) -> List[str]:
        return list(self._parameters)

    def zero_grad(self) -> None:
        for param in self._parameters.values():
            param.zero_grad()

    def num_weights(self) -> int:
        return int(sum(p.value.size for p in self._parameters.values()))

    # ------------------------------------------------------------ state dict
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.value.copy() for name, param in self._parameters.items()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for name, value in state.items():
            if name not in self._parameters:
                raise KeyError(f"unknown parameter {name!r}")
            if self._parameters[name].value.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{self._parameters[name].value.shape} vs {value.shape}"
                )
            self._parameters[name].value = np.asarray(value, dtype=np.float64).copy()


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def normal_init(rng: np.random.Generator, shape: Tuple[int, ...], scale: float = 0.02) -> np.ndarray:
    """Small-scale normal initialisation (used for embeddings)."""
    return rng.normal(0.0, scale, size=shape)
