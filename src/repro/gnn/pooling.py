"""Graph-level pooling (readout) layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .layers import Layer


class GlobalPool(Layer):
    """Pool node embeddings into one vector per graph.

    Supported modes: ``"mean"`` (default, as in the paper's architecture),
    ``"sum"`` and ``"max"``.  The ablation benchmark compares all three.
    """

    def __init__(self, mode: str = "mean"):
        if mode not in ("mean", "sum", "max"):
            raise ValueError(f"unknown pooling mode {mode!r}")
        self.mode = mode
        self._cache = None

    def forward(self, x: np.ndarray, graph_index: np.ndarray, num_graphs: int) -> np.ndarray:
        dim = x.shape[1]
        pooled = np.zeros((num_graphs, dim))
        counts = np.bincount(graph_index, minlength=num_graphs).astype(np.float64)
        counts[counts == 0] = 1.0
        if self.mode in ("mean", "sum"):
            np.add.at(pooled, graph_index, x)
            if self.mode == "mean":
                pooled = pooled / counts[:, None]
            self._cache = (graph_index, counts, x.shape, None)
        else:  # max
            pooled.fill(-np.inf)
            np.maximum.at(pooled, graph_index, x)
            pooled[np.isneginf(pooled)] = 0.0
            argmax_mask = x == pooled[graph_index]
            self._cache = (graph_index, counts, x.shape, argmax_mask)
        return pooled

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward called before forward"
        graph_index, counts, x_shape, argmax_mask = self._cache
        if self.mode == "sum":
            grad_input = grad_output[graph_index]
        elif self.mode == "mean":
            grad_input = grad_output[graph_index] / counts[graph_index][:, None]
        else:
            grad_input = grad_output[graph_index] * argmax_mask
        self._cache = None
        return grad_input
