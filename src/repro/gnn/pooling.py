"""Graph-level pooling (readout) layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .layers import Layer


def pool_segments(
    x: np.ndarray,
    graph_index: np.ndarray,
    num_graphs: int,
    counts: np.ndarray,
    mode: str,
) -> np.ndarray:
    """The one segment-readout kernel every pooling path shares.

    ``counts`` is the zero-clamped float64 divisor (only used by
    ``"mean"``).  The ``np.add.at``/``np.maximum.at`` accumulation order is
    the bit-parity contract between the training forward, the engine's
    single-fold ``infer`` and the fold-stacked sweep — change it here or
    nowhere.
    """
    pooled = np.zeros((num_graphs, x.shape[1]))
    if mode in ("mean", "sum"):
        np.add.at(pooled, graph_index, x)
        if mode == "mean":
            pooled = pooled / counts[:, None]
    else:  # max
        pooled.fill(-np.inf)
        np.maximum.at(pooled, graph_index, x)
        pooled[np.isneginf(pooled)] = 0.0
    return pooled


class GlobalPool(Layer):
    """Pool node embeddings into one vector per graph.

    Supported modes: ``"mean"`` (default, as in the paper's architecture),
    ``"sum"`` and ``"max"``.  The ablation benchmark compares all three.
    """

    def __init__(self, mode: str = "mean"):
        if mode not in ("mean", "sum", "max"):
            raise ValueError(f"unknown pooling mode {mode!r}")
        self.mode = mode
        self._cache = None

    def forward(self, x: np.ndarray, graph_index: np.ndarray, num_graphs: int) -> np.ndarray:
        counts = np.bincount(graph_index, minlength=num_graphs).astype(np.float64)
        counts[counts == 0] = 1.0
        pooled = pool_segments(x, graph_index, num_graphs, counts, self.mode)
        if self.mode in ("mean", "sum"):
            self._cache = (graph_index, counts, x.shape, None)
        else:
            argmax_mask = x == pooled[graph_index]
            self._cache = (graph_index, counts, x.shape, argmax_mask)
        return pooled

    # ------------------------------------------------------------------ infer
    def infer(self, x: np.ndarray, plan) -> np.ndarray:
        """Pure readout over a plan's segments: same values as
        :meth:`forward` (bit for bit — the shared :func:`pool_segments`
        kernel), no backward cache.  ``plan`` is an
        :class:`~repro.engine.ExecutionPlan` (duck-typed: ``graph_index``,
        ``num_graphs`` and the zero-clamped ``pool_counts`` divisor)."""
        return pool_segments(
            x, plan.graph_index, plan.num_graphs, plan.pool_counts, self.mode
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward called before forward"
        graph_index, counts, x_shape, argmax_mask = self._cache
        if self.mode == "sum":
            grad_input = grad_output[graph_index]
        elif self.mode == "mean":
            grad_input = grad_output[graph_index] / counts[graph_index][:, None]
        else:
            grad_input = grad_output[graph_index] * argmax_mask
        self._cache = None
        return grad_input
