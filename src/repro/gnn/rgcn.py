"""Relational Graph Convolution layer (Schlichtkrull et al.), NumPy.

Implements Equation (1) of the paper::

    h_i^(l+1) = sigma( W_0 h_i^(l) + sum_r sum_{j in N_i^r} 1/c_{i,r} W_r h_j^(l) )

with one weight matrix per relation, mean normalisation per target node and
relation, and an optional bias.  The layer operates on edge lists (one
``(2, e_r)`` array per relation) instead of dense adjacency matrices so
batched graphs of a few thousand nodes stay cheap.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from .layers import Layer
from .parameters import ParameterStore, glorot_uniform


class RGCNLayer(Layer):
    """One relational graph convolution."""

    def __init__(
        self,
        store: ParameterStore,
        name: str,
        in_features: int,
        out_features: int,
        relations: Sequence[str],
        rng: np.random.Generator,
        bias: bool = True,
    ):
        self.relations = list(relations)
        self.in_features = in_features
        self.out_features = out_features
        self.self_weight = store.create(
            f"{name}.self", glorot_uniform(rng, in_features, out_features)
        )
        self.relation_weights = {
            rel: store.create(f"{name}.rel.{rel}", glorot_uniform(rng, in_features, out_features))
            for rel in self.relations
        }
        self.bias = store.create(f"{name}.bias", np.zeros(out_features)) if bias else None
        self._cache = None

    # ------------------------------------------------------------------ fwd
    def forward(self, x: np.ndarray, adjacency: Dict[str, object]) -> np.ndarray:
        """``x`` is (num_nodes, in_features); ``adjacency`` maps relation name
        to the normalised sparse matrix ``Â_r`` (``Â_r[dst, src] = 1/c_dst``),
        as produced by :meth:`repro.graphs.batching.GraphBatch.normalized_adjacency`.
        """
        out = x @ self.self_weight.value
        propagated: Dict[str, Optional[np.ndarray]] = {}
        for rel in self.relations:
            matrix = adjacency.get(rel)
            if matrix is None:
                propagated[rel] = None
                continue
            # Â_r @ X, cached for the weight gradient in backward.
            ax = matrix @ x
            propagated[rel] = ax
            out += ax @ self.relation_weights[rel].value
        if self.bias is not None:
            out = out + self.bias.value
        self._cache = (x, adjacency, propagated)
        return out

    # ------------------------------------------------------------------ infer
    def infer(self, x: np.ndarray, adjacency: Dict[str, object]) -> np.ndarray:
        """Pure forward: same values as :meth:`forward` (bit for bit), no
        activation cache — safe to call concurrently and between a training
        ``forward`` and its ``backward``.  ``adjacency`` is the mapping held
        by an :class:`~repro.engine.ExecutionPlan` (or produced by
        ``GraphBatch.normalized_adjacency``)."""
        out = x @ self.self_weight.value
        for rel in self.relations:
            matrix = adjacency.get(rel)
            if matrix is None:
                continue
            out += (matrix @ x) @ self.relation_weights[rel].value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    # ------------------------------------------------------------------ bwd
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward called before forward"
        x, adjacency, propagated = self._cache
        grad_input = grad_output @ self.self_weight.value.T
        self.self_weight.grad += x.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        for rel in self.relations:
            matrix = adjacency.get(rel)
            ax = propagated.get(rel)
            if matrix is None or ax is None:
                continue
            weight = self.relation_weights[rel]
            # out_r = (Â_r X) W_r  =>  dW_r = (Â_r X)^T dOut,
            #                          dX  += Â_r^T (dOut W_r^T)
            weight.grad += ax.T @ grad_output
            grad_input += matrix.T @ (grad_output @ weight.value.T)
        self._cache = None
        return grad_input
