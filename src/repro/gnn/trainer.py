"""Training loop for the static RGCN model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..graphs.batching import collate, iterate_minibatches
from ..graphs.features import EncodedGraph
from .losses import class_weight_vector
from .metrics import TrainingHistory, accuracy_score
from .model import ModelConfig, StaticRGCNModel
from .optim import Adam, clip_gradients


@dataclass
class TrainerConfig:
    """Knobs of :class:`Trainer`."""

    epochs: int = 30
    batch_size: int = 32
    learning_rate: float = 2e-3
    weight_decay: float = 1e-5
    gradient_clip: float = 5.0
    use_class_weights: bool = True
    early_stopping_patience: int = 10
    seed: int = 0
    verbose: bool = False


class Trainer:
    """Fits a :class:`StaticRGCNModel` on encoded graphs."""

    def __init__(self, model: StaticRGCNModel, config: Optional[TrainerConfig] = None):
        self.model = model
        self.config = config or TrainerConfig()
        self.optimizer = Adam(
            model.store,
            learning_rate=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        train_graphs: Sequence[EncodedGraph],
        validation_graphs: Optional[Sequence[EncodedGraph]] = None,
    ) -> TrainingHistory:
        cfg = self.config
        if not train_graphs:
            raise ValueError("cannot train on an empty dataset")
        labels = np.array(
            [-1 if g.label is None else int(g.label) for g in train_graphs], dtype=np.int64
        )
        if (labels < 0).any():
            raise ValueError("every training graph must have a label")
        class_weights = None
        if cfg.use_class_weights:
            class_weights = class_weight_vector(labels, self.model.config.num_classes)

        history = TrainingHistory(train_loss=[], train_accuracy=[], validation_accuracy=[])
        best_val = -1.0
        best_state: Optional[Dict[str, np.ndarray]] = None
        patience = 0

        for epoch in range(cfg.epochs):
            self.model.train()
            epoch_losses: List[float] = []
            epoch_accs: List[float] = []
            for batch in iterate_minibatches(
                train_graphs, cfg.batch_size, shuffle=True, seed=cfg.seed + epoch
            ):
                self.optimizer.zero_grad()
                loss, acc = self.model.loss_and_gradients(batch, class_weights)
                clip_gradients(self.model.store, cfg.gradient_clip)
                self.optimizer.step()
                epoch_losses.append(loss)
                epoch_accs.append(acc)
            history.train_loss.append(float(np.mean(epoch_losses)))
            history.train_accuracy.append(float(np.mean(epoch_accs)))

            if validation_graphs:
                val_acc = self.evaluate(validation_graphs)
                history.validation_accuracy.append(val_acc)
                if val_acc > best_val:
                    best_val = val_acc
                    best_state = self.model.state_dict()
                    patience = 0
                else:
                    patience += 1
                    if patience >= cfg.early_stopping_patience:
                        break
            else:
                history.validation_accuracy.append(history.train_accuracy[-1])

            if cfg.verbose:  # pragma: no cover - cosmetic
                print(
                    f"epoch {epoch:3d} loss {history.train_loss[-1]:.4f} "
                    f"train_acc {history.train_accuracy[-1]:.3f} "
                    f"val_acc {history.validation_accuracy[-1]:.3f}"
                )

        if best_state is not None:
            self.model.load_state_dict(best_state)
        return history

    # ------------------------------------------------------------- inference
    def predict(self, graphs: Sequence[EncodedGraph], batch_size: int = 64) -> np.ndarray:
        self.model.eval()
        predictions: List[np.ndarray] = []
        for batch in iterate_minibatches(graphs, batch_size, shuffle=False):
            predictions.append(self.model.predict(batch))
        return np.concatenate(predictions) if predictions else np.zeros(0, dtype=np.int64)

    def predict_proba(self, graphs: Sequence[EncodedGraph], batch_size: int = 64) -> np.ndarray:
        self.model.eval()
        probabilities: List[np.ndarray] = []
        for batch in iterate_minibatches(graphs, batch_size, shuffle=False):
            probabilities.append(self.model.predict_proba(batch))
        if not probabilities:
            return np.zeros((0, self.model.config.num_classes))
        return np.concatenate(probabilities, axis=0)

    def graph_vectors(self, graphs: Sequence[EncodedGraph], batch_size: int = 64) -> np.ndarray:
        """Graph embedding vectors (features for the hybrid / flag models)."""
        self.model.eval()
        vectors: List[np.ndarray] = []
        for batch in iterate_minibatches(graphs, batch_size, shuffle=False):
            vectors.append(self.model.graph_vectors(batch))
        if not vectors:
            return np.zeros((0, self.model.config.graph_vector_dim))
        return np.concatenate(vectors, axis=0)

    def evaluate(self, graphs: Sequence[EncodedGraph], batch_size: int = 64) -> float:
        labels = np.array([g.label for g in graphs], dtype=np.int64)
        predictions = self.predict(graphs, batch_size)
        return accuracy_score(labels, predictions)


def build_model_and_trainer(
    vocabulary_size: int,
    num_classes: int,
    model_config: Optional[ModelConfig] = None,
    trainer_config: Optional[TrainerConfig] = None,
) -> Trainer:
    """Convenience constructor wiring a model and its trainer together."""
    if model_config is None:
        model_config = ModelConfig(vocabulary_size=vocabulary_size, num_classes=num_classes)
    else:
        model_config.vocabulary_size = vocabulary_size
        model_config.num_classes = num_classes
    model = StaticRGCNModel(model_config)
    return Trainer(model, trainer_config)
