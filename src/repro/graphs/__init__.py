"""ProGraML-style program graphs: construction, encoding and batching."""

from .batching import (
    GraphBatch,
    build_normalized_adjacency,
    collate,
    iterate_minibatches,
)
from .builder import GraphBuilder, build_graph, instruction_token, value_token
from .features import EncodedGraph, GraphEncoder, graph_statistics
from .fingerprint import FINGERPRINT_VERSION, fingerprint_many, graph_fingerprint
from .graph import (
    FLOW_CALL,
    FLOW_CONTROL,
    FLOW_DATA,
    FLOWS,
    NODE_KIND_CONSTANT,
    NODE_KIND_INSTRUCTION,
    NODE_KIND_VARIABLE,
    NODE_KINDS,
    RELATIONS,
    Edge,
    Node,
    ProgramGraph,
    merge_graphs,
)
from .vocabulary import KNOWN_EXTERNALS, UNKNOWN_TOKEN, Vocabulary, default_vocabulary

__all__ = [
    "GraphBatch",
    "build_normalized_adjacency",
    "collate",
    "iterate_minibatches",
    "GraphBuilder",
    "build_graph",
    "instruction_token",
    "value_token",
    "EncodedGraph",
    "GraphEncoder",
    "graph_statistics",
    "FINGERPRINT_VERSION",
    "fingerprint_many",
    "graph_fingerprint",
    "FLOW_CALL",
    "FLOW_CONTROL",
    "FLOW_DATA",
    "FLOWS",
    "NODE_KIND_CONSTANT",
    "NODE_KIND_INSTRUCTION",
    "NODE_KIND_VARIABLE",
    "NODE_KINDS",
    "RELATIONS",
    "Edge",
    "Node",
    "ProgramGraph",
    "merge_graphs",
    "KNOWN_EXTERNALS",
    "UNKNOWN_TOKEN",
    "Vocabulary",
    "default_vocabulary",
]
