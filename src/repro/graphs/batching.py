"""Mini-batching of encoded graphs (disjoint-union batching).

The RGCN operates on one big block-diagonal graph per batch: node arrays are
concatenated, edge indices are offset, and a ``graph_index`` vector maps
each node back to its graph for the pooling layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from .features import EncodedGraph
from .graph import RELATIONS


def build_normalized_adjacency(
    relations: Dict[str, np.ndarray], num_nodes: int
) -> Dict[str, object]:
    """Per-relation sparse matrices ``Â_r`` with ``Â_r[dst, src] = 1/c_dst``.

    Message passing then becomes ``Â_r @ X @ W_r``.  This is the single
    canonical constructor of the normalised adjacency: the training path
    reaches it through :meth:`GraphBatch.normalized_adjacency` (cached per
    batch) and the inference engine through
    :meth:`repro.engine.ExecutionPlan.from_batch` — both consume the exact
    same matrices, which is what makes engine/legacy parity bit-for-bit.

    Relations with no edges (or an empty batch) map to ``None`` so
    consumers can skip the matmul entirely.
    """
    from scipy import sparse

    adjacency: Dict[str, object] = {}
    for rel, edges in relations.items():
        if edges is None or edges.size == 0 or num_nodes == 0:
            adjacency[rel] = None
            continue
        src, dst = edges[0], edges[1]
        degree = np.bincount(dst, minlength=num_nodes).astype(np.float64)
        inv_degree = np.zeros(num_nodes)
        nonzero = degree > 0
        inv_degree[nonzero] = 1.0 / degree[nonzero]
        values = inv_degree[dst]
        adjacency[rel] = sparse.csr_matrix(
            (values, (dst, src)), shape=(num_nodes, num_nodes)
        )
    return adjacency


@dataclass(eq=False)  # identity equality: comparing ndarray fields is meaningless
class GraphBatch:
    """A batch of encoded graphs merged into one disjoint union."""

    token_ids: np.ndarray        # (total_nodes,)
    kind_ids: np.ndarray         # (total_nodes,)
    extra_features: np.ndarray   # (total_nodes, k)
    relations: Dict[str, np.ndarray]  # relation -> (2, e_r)
    graph_index: np.ndarray      # (total_nodes,) graph id per node
    labels: np.ndarray           # (num_graphs,) int labels (-1 when absent)
    names: List[str]
    # Kept out of __repr__ so printing a batch does not dump sparse matrices.
    _adjacency_cache: Optional[Dict[str, object]] = field(
        default=None, repr=False, compare=False
    )
    #: number of times the normalised adjacency was actually built; repeated
    #: forward/backward passes on the same batch must keep this at 1.
    adjacency_builds: int = field(default=0, repr=False, compare=False)

    @property
    def num_graphs(self) -> int:
        return len(self.names)

    @property
    def num_nodes(self) -> int:
        return int(self.token_ids.shape[0])

    def normalized_adjacency(self) -> Dict[str, object]:
        """Cached :func:`build_normalized_adjacency` over this batch's edges.

        The matrices are built once per batch and cached because every RGCN
        layer (and the backward pass) reuses them — as does every repeated
        ``forward`` call on the same batch, and the inference engine's
        :class:`~repro.engine.ExecutionPlan`, which wraps this same cache so
        one micro-batch never pays for two builds.
        """
        if self._adjacency_cache is not None:
            return self._adjacency_cache
        self._adjacency_cache = build_normalized_adjacency(
            self.relations, self.num_nodes
        )
        self.adjacency_builds += 1
        return self._adjacency_cache

    def invalidate_adjacency_cache(self) -> None:
        """Drop the cached adjacency (only needed if edges are mutated)."""
        self._adjacency_cache = None


def _readonly_view(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.flags.writeable = False
    return view


def _collate_one(graph: EncodedGraph) -> GraphBatch:
    """Batch-of-one fast path: no concatenation, no index offsetting.

    The serving layer collates a lot of single-graph batches (cache misses
    arriving one at a time), where the generic path's per-relation
    concatenates dominate.  Node/edge arrays are shared with the encoded
    graph as read-only views — the generic path hands out private copies,
    so mutating a size-1 batch must fail loudly rather than silently
    corrupt the source graph (and its fingerprint).
    """
    relations: Dict[str, np.ndarray] = {}
    for rel in RELATIONS:
        arr = graph.relations.get(rel)
        if arr is None or arr.size == 0:
            relations[rel] = np.zeros((2, 0), dtype=np.int64)
        else:
            relations[rel] = _readonly_view(arr)
    return GraphBatch(
        token_ids=_readonly_view(graph.token_ids),
        kind_ids=_readonly_view(graph.kind_ids),
        extra_features=_readonly_view(graph.extra_features),
        relations=relations,
        graph_index=np.zeros(graph.num_nodes, dtype=np.int64),
        labels=np.asarray(
            [-1 if graph.label is None else int(graph.label)], dtype=np.int64
        ),
        names=[graph.name],
    )


def collate(graphs: Sequence[EncodedGraph]) -> GraphBatch:
    """Merge ``graphs`` into one :class:`GraphBatch`."""
    if not graphs:
        raise ValueError("cannot collate an empty list of graphs")
    if len(graphs) == 1:
        return _collate_one(graphs[0])
    token_parts: List[np.ndarray] = []
    kind_parts: List[np.ndarray] = []
    extra_parts: List[np.ndarray] = []
    graph_index_parts: List[np.ndarray] = []
    labels: List[int] = []
    names: List[str] = []
    relation_parts: Dict[str, List[np.ndarray]] = {rel: [] for rel in RELATIONS}

    offset = 0
    for gi, graph in enumerate(graphs):
        n = graph.num_nodes
        token_parts.append(graph.token_ids)
        kind_parts.append(graph.kind_ids)
        extra_parts.append(graph.extra_features)
        graph_index_parts.append(np.full(n, gi, dtype=np.int64))
        labels.append(-1 if graph.label is None else int(graph.label))
        names.append(graph.name)
        for rel in RELATIONS:
            arr = graph.relations.get(rel)
            if arr is None or arr.size == 0:
                continue
            relation_parts[rel].append(arr + offset)
        offset += n

    relations: Dict[str, np.ndarray] = {}
    for rel, parts in relation_parts.items():
        if parts:
            relations[rel] = np.concatenate(parts, axis=1)
        else:
            relations[rel] = np.zeros((2, 0), dtype=np.int64)

    return GraphBatch(
        token_ids=np.concatenate(token_parts),
        kind_ids=np.concatenate(kind_parts),
        extra_features=np.concatenate(extra_parts, axis=0),
        relations=relations,
        graph_index=np.concatenate(graph_index_parts),
        labels=np.asarray(labels, dtype=np.int64),
        names=names,
    )


def iterate_minibatches(
    graphs: Sequence[EncodedGraph],
    batch_size: int,
    shuffle: bool = True,
    seed: Optional[int] = None,
    drop_last: bool = False,
) -> Iterator[GraphBatch]:
    """Yield :class:`GraphBatch` objects of ``batch_size`` graphs."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    indices = np.arange(len(graphs))
    if shuffle:
        rng = np.random.default_rng(seed)
        rng.shuffle(indices)
    for start in range(0, len(graphs), batch_size):
        chunk = indices[start : start + batch_size]
        if drop_last and len(chunk) < batch_size:
            break
        yield collate([graphs[i] for i in chunk])
