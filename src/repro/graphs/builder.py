"""Construction of ProGraML-style graphs from mini-IR modules.

The construction follows Cummins et al. (ProGraML):

* one **instruction node** per IR instruction (token = opcode, specialised
  for compare predicates, atomics and known call targets);
* one **variable node** per SSA value (instruction results and function
  arguments) and one **constant node** per distinct constant operand;
* **control edges** connect each instruction to the instruction(s) that can
  execute next (sequential within a block, terminator to the first
  instruction of each successor block);
* **data edges** connect a defining instruction to its value node and a
  value/constant node to each instruction that uses it (positional);
* **call edges** connect a call instruction to the entry instruction of the
  callee (when defined in the module) and the callee's returns back to the
  call site.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AtomicRMW,
    Call,
    FCmp,
    ICmp,
    Instruction,
    Phi,
    Return,
)
from ..ir.module import Module
from ..ir.values import Argument, Constant, GlobalVariable, Value
from .graph import (
    FLOW_CALL,
    FLOW_CONTROL,
    FLOW_DATA,
    NODE_KIND_CONSTANT,
    NODE_KIND_INSTRUCTION,
    NODE_KIND_VARIABLE,
    Node,
    ProgramGraph,
)
from .vocabulary import KNOWN_EXTERNALS


def instruction_token(inst: Instruction) -> str:
    """The vocabulary token describing ``inst``."""
    if isinstance(inst, ICmp):
        return f"icmp_{inst.predicate}"
    if isinstance(inst, FCmp):
        return f"fcmp_{inst.predicate}"
    if isinstance(inst, AtomicRMW):
        return f"atomicrmw_{inst.operation}"
    if isinstance(inst, Call):
        name = inst.callee_name
        if name in KNOWN_EXTERNALS:
            return f"call_{name}"
        return "call"
    return inst.opcode


def value_token(value: Value) -> str:
    """The vocabulary token describing a variable/constant node."""
    if isinstance(value, Argument):
        return "arg"
    if isinstance(value, GlobalVariable):
        return "global"
    kind = value.type.kind
    if isinstance(value, Constant):
        return f"const_{kind}"
    return f"var_{kind}"


class GraphBuilder:
    """Builds :class:`ProgramGraph` objects from functions or modules."""

    def __init__(self, include_call_edges: bool = True):
        self.include_call_edges = include_call_edges

    # ------------------------------------------------------------------ API
    def build_function(self, function: Function, name: Optional[str] = None) -> ProgramGraph:
        """Build the graph of a single function (no inter-procedural edges)."""
        graph = ProgramGraph(name or function.name)
        self._add_function(graph, function, {})
        graph.metadata["function"] = function.name
        return graph

    def build_module(self, module: Module, name: Optional[str] = None) -> ProgramGraph:
        """Build one graph covering every defined function in the module."""
        graph = ProgramGraph(name or module.name)
        entry_nodes: Dict[Function, Node] = {}
        return_nodes: Dict[Function, List[Node]] = {}
        call_sites: List[Tuple[Node, str]] = []
        for function in module.functions:
            if function.is_declaration:
                continue
            entry, returns, calls = self._add_function(graph, function, {})
            entry_nodes[function] = entry
            return_nodes[function] = returns
            call_sites.extend(calls)
        if self.include_call_edges:
            for call_node, callee_name in call_sites:
                callee = module.get_function(callee_name)
                if callee is None or callee.is_declaration:
                    continue
                callee_entry = entry_nodes.get(callee)
                if callee_entry is not None:
                    graph.add_edge(call_node, callee_entry, FLOW_CALL)
                for ret_node in return_nodes.get(callee, []):
                    graph.add_edge(ret_node, call_node, FLOW_CALL)
        graph.metadata["module"] = module.name
        graph.metadata.update(module.metadata)
        return graph

    def build_region(self, module: Module, region_function: str) -> ProgramGraph:
        """Graph of one OpenMP outlined region plus its callees."""
        from ..ir.module import extract_region

        extracted = extract_region(module, region_function)
        return self.build_module(extracted, name=f"{module.name}.{region_function}")

    # ------------------------------------------------------------- internals
    def _add_function(
        self,
        graph: ProgramGraph,
        function: Function,
        value_nodes: Dict[Value, Node],
    ) -> Tuple[Node, List[Node], List[Tuple[Node, str]]]:
        inst_nodes: Dict[Instruction, Node] = {}
        return_nodes: List[Node] = []
        call_sites: List[Tuple[Node, str]] = []

        # Loop nesting depth is a cheap static feature with a lot of signal
        # (it distinguishes flat streaming loops from nested CLOMP kernels).
        from ..ir.loops import loop_depth_map

        depths = loop_depth_map(function) if function.blocks else {}

        # Argument variable nodes.
        for arg in function.arguments:
            value_nodes[arg] = graph.add_node(
                NODE_KIND_VARIABLE, value_token(arg), function.name
            )

        # Instruction nodes plus the variable node for each defined value.
        for block in function.blocks:
            block_depth = float(depths.get(block, 0))
            for inst in block.instructions:
                node = graph.add_node(
                    NODE_KIND_INSTRUCTION,
                    instruction_token(inst),
                    function.name,
                    block.name,
                    loop_depth=float(inst.metadata.get("loop_depth", block_depth)),
                )
                inst_nodes[inst] = node
                if not inst.type.is_void:
                    result_node = graph.add_node(
                        NODE_KIND_VARIABLE, value_token(inst), function.name, block.name
                    )
                    value_nodes[inst] = result_node
                    graph.add_edge(node, result_node, FLOW_DATA, position=0)
                if isinstance(inst, Return):
                    return_nodes.append(node)
                if isinstance(inst, Call):
                    call_sites.append((node, inst.callee_name))

        # Data edges from operands to the instructions using them.
        constant_nodes: Dict[Tuple[str, object], Node] = {}
        for block in function.blocks:
            for inst in block.instructions:
                position = 0
                for op in inst.operands:
                    if isinstance(op, BasicBlock) or isinstance(op, Function):
                        continue
                    position += 1
                    source = self._operand_node(graph, function, op, value_nodes, constant_nodes)
                    if source is not None:
                        graph.add_edge(source, inst_nodes[inst], FLOW_DATA, position=position)

        # Control edges.
        for block in function.blocks:
            instructions = block.instructions
            for a, b in zip(instructions, instructions[1:]):
                graph.add_edge(inst_nodes[a], inst_nodes[b], FLOW_CONTROL)
            term = block.terminator
            if term is None:
                continue
            for succ in block.successors():
                if succ.instructions:
                    graph.add_edge(
                        inst_nodes[term], inst_nodes[succ.instructions[0]], FLOW_CONTROL
                    )

        entry_node = None
        entry = function.entry_block
        if entry is not None and entry.instructions:
            entry_node = inst_nodes[entry.instructions[0]]
        if entry_node is None:
            # Degenerate function: synthesise a placeholder instruction node.
            entry_node = graph.add_node(NODE_KIND_INSTRUCTION, "unreachable", function.name)
        return entry_node, return_nodes, call_sites

    def _operand_node(
        self,
        graph: ProgramGraph,
        function: Function,
        op: Value,
        value_nodes: Dict[Value, Node],
        constant_nodes: Dict[Tuple[str, object], Node],
    ) -> Optional[Node]:
        if isinstance(op, Constant):
            key = (repr(op.type), getattr(op, "value", None))
            node = constant_nodes.get(key)
            if node is None:
                literal = getattr(op, "value", 0.0) or 0.0
                node = graph.add_node(
                    NODE_KIND_CONSTANT,
                    value_token(op),
                    function.name,
                    literal_magnitude=float(abs(float(literal))),
                )
                constant_nodes[key] = node
            return node
        if isinstance(op, GlobalVariable):
            node = value_nodes.get(op)
            if node is None:
                node = graph.add_node(NODE_KIND_VARIABLE, value_token(op), "")
                value_nodes[op] = node
            return node
        return value_nodes.get(op)


def build_graph(module_or_function, name: Optional[str] = None) -> ProgramGraph:
    """Convenience helper building a graph from a module or a function."""
    builder = GraphBuilder()
    if isinstance(module_or_function, Module):
        return builder.build_module(module_or_function, name)
    return builder.build_function(module_or_function, name)
