"""Numeric encodings of program graphs for the GNN."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .graph import RELATIONS, ProgramGraph
from .vocabulary import Vocabulary, default_vocabulary


@dataclass
class EncodedGraph:
    """A program graph encoded as arrays ready for the RGCN.

    Attributes
    ----------
    token_ids:
        ``(num_nodes,)`` int array of vocabulary indices.
    kind_ids:
        ``(num_nodes,)`` int array: 0 instruction, 1 variable, 2 constant.
    extra_features:
        ``(num_nodes, k)`` float array of auxiliary per-node features
        (currently loop depth and degree statistics).
    relations:
        relation name -> ``(2, e_r)`` int array of (source, target) pairs.
    label:
        optional integer class label (best configuration index).
    metadata:
        free-form dictionary copied from the source graph.
    """

    name: str
    token_ids: np.ndarray
    kind_ids: np.ndarray
    extra_features: np.ndarray
    relations: Dict[str, np.ndarray]
    label: Optional[int] = None
    metadata: Optional[Dict[str, object]] = None

    @property
    def num_nodes(self) -> int:
        return int(self.token_ids.shape[0])

    @property
    def num_edges(self) -> int:
        return int(sum(arr.shape[1] for arr in self.relations.values()) // 2)


_KIND_INDEX = {"instruction": 0, "variable": 1, "constant": 2}


class GraphEncoder:
    """Encodes :class:`ProgramGraph` objects into :class:`EncodedGraph`."""

    #: number of auxiliary features appended to the learned embeddings
    NUM_EXTRA_FEATURES = 5

    def __init__(self, vocabulary: Optional[Vocabulary] = None):
        self.vocabulary = vocabulary or default_vocabulary()

    def encode(self, graph: ProgramGraph, label: Optional[int] = None) -> EncodedGraph:
        n = graph.num_nodes
        token_ids = np.zeros(n, dtype=np.int64)
        kind_ids = np.zeros(n, dtype=np.int64)
        extra = np.zeros((n, self.NUM_EXTRA_FEATURES), dtype=np.float64)

        in_degree = np.zeros(n, dtype=np.float64)
        out_degree = np.zeros(n, dtype=np.float64)
        for edge in graph.edges:
            out_degree[edge.source] += 1.0
            in_degree[edge.target] += 1.0

        for node in graph.nodes:
            token_ids[node.id] = self.vocabulary.index_of(node.text)
            kind_ids[node.id] = _KIND_INDEX[node.kind]
            extra[node.id, 0] = float(node.features.get("loop_depth", 0.0))
            extra[node.id, 1] = np.log1p(in_degree[node.id])
            extra[node.id, 2] = np.log1p(out_degree[node.id])
            extra[node.id, 3] = float(_KIND_INDEX[node.kind])
            # Literal magnitude exposes constant loop bounds, strides and
            # inner-loop trip counts to the model (log-compressed).
            extra[node.id, 4] = np.log1p(float(node.features.get("literal_magnitude", 0.0)))

        relations = graph.relation_edge_arrays()
        metadata = dict(graph.metadata)
        if label is None:
            label = metadata.get("label")  # type: ignore[assignment]
        return EncodedGraph(
            name=graph.name,
            token_ids=token_ids,
            kind_ids=kind_ids,
            extra_features=extra,
            relations=relations,
            label=None if label is None else int(label),
            metadata=metadata,
        )

    def encode_many(
        self, graphs: List[ProgramGraph], labels: Optional[List[int]] = None
    ) -> List[EncodedGraph]:
        encoded = []
        for i, graph in enumerate(graphs):
            label = labels[i] if labels is not None else None
            encoded.append(self.encode(graph, label))
        return encoded

    @property
    def vocabulary_size(self) -> int:
        return len(self.vocabulary)


def graph_statistics(graphs: List[ProgramGraph]) -> Dict[str, float]:
    """Aggregate statistics used in the documentation and sanity tests."""
    if not graphs:
        return {"count": 0.0}
    nodes = np.array([g.num_nodes for g in graphs], dtype=float)
    edges = np.array([g.num_edges for g in graphs], dtype=float)
    return {
        "count": float(len(graphs)),
        "nodes_mean": float(nodes.mean()),
        "nodes_max": float(nodes.max()),
        "nodes_min": float(nodes.min()),
        "edges_mean": float(edges.mean()),
        "edges_max": float(edges.max()),
    }
