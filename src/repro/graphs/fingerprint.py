"""Stable content fingerprints for encoded program graphs.

The serving layer caches expensive per-graph work (encoding, RGCN forward
passes) keyed on a canonical hash of the *encoded* graph.  Two encodings of
the same region under the same flag sequence must therefore hash
identically — across processes and across vocabulary reloads — while any
change to the node tokens, auxiliary features or edge structure must change
the hash.

The fingerprint covers exactly the arrays the model consumes (token ids,
kind ids, extra features, per-relation edge lists); it deliberately ignores
the graph ``name``, ``label`` and free-form ``metadata``, so the same code
region compiled twice maps onto one cache entry regardless of how it was
tagged.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable, List

import numpy as np

from .features import EncodedGraph

#: bump when the hashed byte layout changes so stale caches cannot collide
#: with fingerprints produced by a newer encoding.
FINGERPRINT_VERSION = 1

_HEADER = b"repro.graphs.fingerprint.v%d" % FINGERPRINT_VERSION


def _hash_array(hasher: "hashlib._Hash", array: np.ndarray, dtype: type) -> None:
    canonical = np.ascontiguousarray(array, dtype=dtype)
    hasher.update(struct.pack("<B", canonical.ndim))
    for dim in canonical.shape:
        hasher.update(struct.pack("<q", dim))
    hasher.update(canonical.tobytes())


def graph_fingerprint(graph: EncodedGraph) -> str:
    """Canonical SHA-256 hex digest of an :class:`EncodedGraph`'s content."""
    hasher = hashlib.sha256()
    hasher.update(_HEADER)
    _hash_array(hasher, graph.token_ids, np.int64)
    _hash_array(hasher, graph.kind_ids, np.int64)
    _hash_array(hasher, graph.extra_features, np.float64)
    for relation in sorted(graph.relations):
        edges = graph.relations[relation]
        if edges is None or edges.size == 0:
            # Normalise the many spellings of "no edges" ((2, 0) arrays,
            # empty arrays, missing dict entries) by hashing nothing at all:
            # a graph whose relation is absent and one whose relation is
            # present-but-empty feed the model identically, so they must
            # share a fingerprint.
            continue
        hasher.update(relation.encode("utf-8"))
        hasher.update(b"\x01")
        _hash_array(hasher, edges, np.int64)
    return hasher.hexdigest()


def fingerprint_many(graphs: Iterable[EncodedGraph]) -> List[str]:
    """Fingerprints of several graphs, in order."""
    return [graph_fingerprint(graph) for graph in graphs]
