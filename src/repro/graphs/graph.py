"""Program-graph data structures (ProGraML-style).

A :class:`ProgramGraph` is a heterogeneous directed graph with three node
kinds (instruction, variable, constant) and three edge flows (control, data,
call), following Cummins et al.'s ProGraML representation that the paper
reuses.  Reverse edges are materialised as separate relations when the graph
is exported for the RGCN, so information can flow both ways during message
passing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

NODE_KIND_INSTRUCTION = "instruction"
NODE_KIND_VARIABLE = "variable"
NODE_KIND_CONSTANT = "constant"
NODE_KINDS = (NODE_KIND_INSTRUCTION, NODE_KIND_VARIABLE, NODE_KIND_CONSTANT)

FLOW_CONTROL = "control"
FLOW_DATA = "data"
FLOW_CALL = "call"
FLOWS = (FLOW_CONTROL, FLOW_DATA, FLOW_CALL)

#: relation names used by the RGCN: each flow plus its reverse.
RELATIONS = tuple(
    [flow for flow in FLOWS] + [f"{flow}_rev" for flow in FLOWS]
)


@dataclass
class Node:
    """One node of a program graph."""

    id: int
    kind: str
    text: str
    function: str = ""
    block: str = ""
    features: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in NODE_KINDS:
            raise ValueError(f"unknown node kind {self.kind!r}")


@dataclass(frozen=True)
class Edge:
    """One directed edge with a flow type and a position (operand index)."""

    source: int
    target: int
    flow: str
    position: int = 0

    def __post_init__(self) -> None:
        if self.flow not in FLOWS:
            raise ValueError(f"unknown edge flow {self.flow!r}")


class ProgramGraph:
    """A ProGraML-style program graph."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self.nodes: List[Node] = []
        self.edges: List[Edge] = []
        #: free-form metadata: region name, flag sequence, label, ...
        self.metadata: Dict[str, object] = {}

    # ---------------------------------------------------------- construction
    def add_node(
        self,
        kind: str,
        text: str,
        function: str = "",
        block: str = "",
        **features: float,
    ) -> Node:
        node = Node(
            id=len(self.nodes),
            kind=kind,
            text=text,
            function=function,
            block=block,
            features=dict(features),
        )
        self.nodes.append(node)
        return node

    def add_edge(self, source: Node, target: Node, flow: str, position: int = 0) -> Edge:
        edge = Edge(source=source.id, target=target.id, flow=flow, position=position)
        self.edges.append(edge)
        return edge

    # --------------------------------------------------------------- queries
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def nodes_of_kind(self, kind: str) -> List[Node]:
        return [n for n in self.nodes if n.kind == kind]

    def edges_of_flow(self, flow: str) -> List[Edge]:
        return [e for e in self.edges if e.flow == flow]

    def edge_counts(self) -> Dict[str, int]:
        counts = {flow: 0 for flow in FLOWS}
        for edge in self.edges:
            counts[edge.flow] += 1
        return counts

    def out_degree(self, node_id: int, flow: Optional[str] = None) -> int:
        return sum(
            1
            for e in self.edges
            if e.source == node_id and (flow is None or e.flow == flow)
        )

    def in_degree(self, node_id: int, flow: Optional[str] = None) -> int:
        return sum(
            1
            for e in self.edges
            if e.target == node_id and (flow is None or e.flow == flow)
        )

    def validate(self) -> List[str]:
        """Structural sanity checks; returns a list of problems (empty = OK)."""
        problems: List[str] = []
        for i, node in enumerate(self.nodes):
            if node.id != i:
                problems.append(f"node {i} has id {node.id}")
        for edge in self.edges:
            if not (0 <= edge.source < len(self.nodes)):
                problems.append(f"edge source {edge.source} out of range")
            if not (0 <= edge.target < len(self.nodes)):
                problems.append(f"edge target {edge.target} out of range")
        return problems

    # ---------------------------------------------------------------- export
    def relation_edge_arrays(self) -> Dict[str, np.ndarray]:
        """Edge index arrays per relation (including reverse relations).

        Returns a dict mapping relation name to an int array of shape
        ``(2, num_edges_r)`` holding (source, target) rows.
        """
        arrays: Dict[str, List[Tuple[int, int]]] = {rel: [] for rel in RELATIONS}
        for edge in self.edges:
            arrays[edge.flow].append((edge.source, edge.target))
            arrays[f"{edge.flow}_rev"].append((edge.target, edge.source))
        result: Dict[str, np.ndarray] = {}
        for rel, pairs in arrays.items():
            if pairs:
                result[rel] = np.asarray(pairs, dtype=np.int64).T
            else:
                result[rel] = np.zeros((2, 0), dtype=np.int64)
        return result

    def to_networkx(self):
        """Export to a :class:`networkx.MultiDiGraph` for analysis/plotting."""
        import networkx as nx

        graph = nx.MultiDiGraph(name=self.name)
        for node in self.nodes:
            graph.add_node(
                node.id,
                kind=node.kind,
                text=node.text,
                function=node.function,
                block=node.block,
            )
        for edge in self.edges:
            graph.add_edge(edge.source, edge.target, flow=edge.flow, position=edge.position)
        return graph

    def __repr__(self) -> str:
        counts = self.edge_counts()
        return (
            f"<ProgramGraph {self.name}: {self.num_nodes} nodes, "
            f"{counts[FLOW_CONTROL]} control / {counts[FLOW_DATA]} data / "
            f"{counts[FLOW_CALL]} call edges>"
        )


def merge_graphs(graphs: Iterable[ProgramGraph], name: str = "merged") -> ProgramGraph:
    """Disjoint union of several program graphs (used rarely; batching for
    the GNN lives in :mod:`repro.graphs.batching`)."""
    merged = ProgramGraph(name)
    for graph in graphs:
        offset = merged.num_nodes
        for node in graph.nodes:
            merged.add_node(
                node.kind, node.text, node.function, node.block, **node.features
            )
        for edge in graph.edges:
            merged.edges.append(
                Edge(edge.source + offset, edge.target + offset, edge.flow, edge.position)
            )
    return merged
