"""Node-text vocabulary for program graphs.

ProGraML embeds each node from a text token derived from the instruction or
the value type.  The vocabulary here is *closed*: it is derived from the
mini-IR's opcode and type sets, so every graph built from valid IR maps onto
it without out-of-vocabulary handling (an explicit ``<unk>`` token exists as
a safety net and for forward compatibility).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..ir.instructions import (
    ATOMIC_OPS,
    BINARY_OPS,
    CAST_OPS,
    FCMP_PREDICATES,
    ICMP_PREDICATES,
)

UNKNOWN_TOKEN = "<unk>"

#: external functions the workload kernels may call; they get their own
#: tokens because the call target is a strong static signal (e.g. a kernel
#: calling ``omp_get_thread_num`` is doing manual work distribution).
KNOWN_EXTERNALS = (
    "sqrt",
    "fabs",
    "exp",
    "log",
    "sin",
    "cos",
    "pow",
    "fmax",
    "fmin",
    "floor",
    "ceil",
    "omp_get_thread_num",
    "omp_get_num_threads",
    "kmpc_barrier",
    "kmpc_critical",
    "kmpc_reduce",
)

#: type kind tokens used for variable/constant nodes.
TYPE_TOKENS = ("void", "label", "int", "float", "ptr", "array", "func")


def _instruction_tokens() -> List[str]:
    tokens: List[str] = []
    tokens.extend(BINARY_OPS)
    tokens.extend(f"icmp_{p}" for p in ICMP_PREDICATES)
    tokens.extend(f"fcmp_{p}" for p in FCMP_PREDICATES)
    tokens.extend(CAST_OPS)
    tokens.extend(
        [
            "alloca",
            "load",
            "store",
            "gep",
            "select",
            "phi",
            "br",
            "condbr",
            "switch",
            "ret",
            "unreachable",
            "call",
        ]
    )
    tokens.extend(f"atomicrmw_{op}" for op in ATOMIC_OPS)
    tokens.extend(f"call_{name}" for name in KNOWN_EXTERNALS)
    return tokens


def _value_tokens() -> List[str]:
    tokens = [f"var_{t}" for t in TYPE_TOKENS]
    tokens += [f"const_{t}" for t in TYPE_TOKENS]
    tokens += ["arg", "global"]
    return tokens


class Vocabulary:
    """Bidirectional token <-> index mapping."""

    def __init__(self, tokens: Iterable[str]):
        unique: List[str] = []
        seen = set()
        for token in tokens:
            if token not in seen:
                unique.append(token)
                seen.add(token)
        if UNKNOWN_TOKEN not in seen:
            unique.insert(0, UNKNOWN_TOKEN)
        self._tokens: List[str] = unique
        self._index: Dict[str, int] = {t: i for i, t in enumerate(unique)}

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._index

    def index_of(self, token: str) -> int:
        """Index of ``token`` (the ``<unk>`` index if unseen)."""
        return self._index.get(token, self._index[UNKNOWN_TOKEN])

    def token_at(self, index: int) -> str:
        return self._tokens[index]

    @property
    def tokens(self) -> List[str]:
        return list(self._tokens)


def default_vocabulary() -> Vocabulary:
    """The canonical vocabulary covering every token the builder emits."""
    return Vocabulary(_instruction_tokens() + _value_tokens())
