"""Basic blocks of the mini-IR."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from .instructions import Instruction, Phi
from .types import LABEL
from .values import Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .function import Function


class BasicBlock(Value):
    """A straight-line sequence of instructions ending in a terminator.

    Basic blocks are themselves :class:`Value` instances (of label type) so
    that branch instructions can reference them directly as operands, the
    same way LLVM does.
    """

    __slots__ = ("instructions", "parent")

    def __init__(self, name: str = "", parent: Optional["Function"] = None):
        super().__init__(LABEL, name)
        self.instructions: List[Instruction] = []
        self.parent = parent
        if parent is not None:
            parent.add_block(self)

    # ------------------------------------------------------------ structure
    def append(self, inst: Instruction) -> Instruction:
        """Append ``inst`` at the end of the block."""
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        """Insert ``inst`` at ``index``."""
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        """Insert ``inst`` just before the terminator (or append)."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.insert(len(self.instructions) - 1, inst)
        return self.append(inst)

    def remove(self, inst: Instruction) -> None:
        """Remove ``inst`` from this block."""
        self.instructions.remove(inst)
        inst.parent = None

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    # ------------------------------------------------------------- contents
    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def phis(self) -> List[Phi]:
        """Return the leading phi nodes of the block."""
        result: List[Phi] = []
        for inst in self.instructions:
            if isinstance(inst, Phi):
                result.append(inst)
            else:
                break
        return result

    def non_phi_instructions(self) -> List[Instruction]:
        return [inst for inst in self.instructions if not isinstance(inst, Phi)]

    def first_non_phi_index(self) -> int:
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, Phi):
                return i
        return len(self.instructions)

    # ----------------------------------------------------------------- CFG
    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        return term.successors()  # type: ignore[attr-defined]

    def predecessors(self) -> List["BasicBlock"]:
        """Predecessors computed by scanning the parent function."""
        if self.parent is None:
            return []
        preds: List[BasicBlock] = []
        for block in self.parent.blocks:
            if self in block.successors():
                preds.append(block)
        return preds

    def short(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"
