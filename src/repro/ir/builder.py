"""Convenience IR construction API (mirrors LLVM's IRBuilder)."""

from __future__ import annotations

from typing import Optional, Sequence

from .block import BasicBlock
from .function import Function
from .instructions import (
    Alloca,
    AtomicRMW,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .types import Type
from .values import Value


class IRBuilder:
    """Appends instructions to a current insertion block.

    Every ``build_*`` method creates the instruction, gives it a fresh name
    (when it produces a value), appends it to the insertion block and returns
    it, so straight-line construction code reads like the IR it produces.
    """

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block

    # --------------------------------------------------------------- control
    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise RuntimeError("builder has no insertion point")
        return self.block.parent

    def _insert(self, inst: Instruction, name: str = "") -> Instruction:
        if self.block is None:
            raise RuntimeError("builder has no insertion point")
        if not inst.type.is_void and not inst.name:
            inst.name = name or self.function.next_name()
        return self.block.append(inst)

    # ------------------------------------------------------------ arithmetic
    def binary(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self._insert(BinaryOp(opcode, lhs, rhs), name)  # type: ignore[return-value]

    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("sdiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("srem", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("xor", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("shl", lhs, rhs, name)

    def ashr(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("ashr", lhs, rhs, name)

    def fadd(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("fadd", lhs, rhs, name)

    def fsub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("fsub", lhs, rhs, name)

    def fmul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("fmul", lhs, rhs, name)

    def fdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binary("fdiv", lhs, rhs, name)

    # ----------------------------------------------------------- comparisons
    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        return self._insert(ICmp(predicate, lhs, rhs), name)  # type: ignore[return-value]

    def fcmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> FCmp:
        return self._insert(FCmp(predicate, lhs, rhs), name)  # type: ignore[return-value]

    def select(self, cond: Value, true_value: Value, false_value: Value, name: str = "") -> Select:
        return self._insert(Select(cond, true_value, false_value), name)  # type: ignore[return-value]

    def cast(self, opcode: str, value: Value, to_type: Type, name: str = "") -> Cast:
        return self._insert(Cast(opcode, value, to_type), name)  # type: ignore[return-value]

    # ---------------------------------------------------------------- memory
    def alloca(self, allocated_type: Type, array_size: int = 1, name: str = "") -> Alloca:
        return self._insert(Alloca(allocated_type, array_size=array_size), name)  # type: ignore[return-value]

    def load(self, pointer: Value, name: str = "", volatile: bool = False) -> Load:
        return self._insert(Load(pointer, volatile=volatile), name)  # type: ignore[return-value]

    def store(self, value: Value, pointer: Value, volatile: bool = False) -> Store:
        return self._insert(Store(value, pointer, volatile))  # type: ignore[return-value]

    def gep(self, pointer: Value, indices: Sequence[Value], name: str = "") -> GetElementPtr:
        return self._insert(GetElementPtr(pointer, indices), name)  # type: ignore[return-value]

    def atomicrmw(self, operation: str, pointer: Value, value: Value, name: str = "") -> AtomicRMW:
        return self._insert(AtomicRMW(operation, pointer, value), name)  # type: ignore[return-value]

    # ----------------------------------------------------------------- calls
    def call(self, callee, args: Sequence[Value] = (), return_type: Optional[Type] = None, name: str = "") -> Call:
        return self._insert(Call(callee, args, return_type), name)  # type: ignore[return-value]

    # ---------------------------------------------------------- control flow
    def br(self, target: BasicBlock) -> Branch:
        return self._insert(Branch(target))  # type: ignore[return-value]

    def condbr(self, condition: Value, if_true: BasicBlock, if_false: BasicBlock) -> CondBranch:
        return self._insert(CondBranch(condition, if_true, if_false))  # type: ignore[return-value]

    def switch(self, value: Value, default: BasicBlock, cases) -> Switch:
        return self._insert(Switch(value, default, cases))  # type: ignore[return-value]

    def ret(self, value: Optional[Value] = None) -> Return:
        return self._insert(Return(value))  # type: ignore[return-value]

    def unreachable(self) -> Unreachable:
        return self._insert(Unreachable())  # type: ignore[return-value]

    def phi(self, type: Type, name: str = "") -> Phi:
        """Create a phi at the *top* of the current block."""
        if self.block is None:
            raise RuntimeError("builder has no insertion point")
        phi = Phi(type)
        phi.name = name or self.function.next_name("phi")
        self.block.insert(self.block.first_non_phi_index(), phi)
        return phi
