"""Control-flow-graph analyses over functions."""

from __future__ import annotations

from typing import Dict, List, Set

from .block import BasicBlock
from .function import Function


def successors_map(function: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Block -> list of successor blocks."""
    return {block: block.successors() for block in function.blocks}


def predecessors_map(function: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Block -> list of predecessor blocks (computed in one sweep)."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {block: [] for block in function.blocks}
    for block in function.blocks:
        for succ in block.successors():
            if succ in preds:
                preds[succ].append(block)
    return preds


def reachable_blocks(function: Function) -> Set[BasicBlock]:
    """Blocks reachable from the entry block."""
    entry = function.entry_block
    if entry is None:
        return set()
    seen: Set[BasicBlock] = {entry}
    stack = [entry]
    while stack:
        block = stack.pop()
        for succ in block.successors():
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder of a DFS from the entry block."""
    entry = function.entry_block
    if entry is None:
        return []
    visited: Set[BasicBlock] = set()
    postorder: List[BasicBlock] = []

    def dfs(block: BasicBlock) -> None:
        visited.add(block)
        for succ in block.successors():
            if succ not in visited:
                dfs(succ)
        postorder.append(block)

    # Iterative DFS to avoid recursion limits on long CFG chains.
    stack: List[tuple[BasicBlock, int]] = [(entry, 0)]
    visited = {entry}
    postorder = []
    while stack:
        block, idx = stack[-1]
        succs = block.successors()
        if idx < len(succs):
            stack[-1] = (block, idx + 1)
            succ = succs[idx]
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, 0))
        else:
            postorder.append(block)
            stack.pop()
    return list(reversed(postorder))


def postorder(function: Function) -> List[BasicBlock]:
    """Blocks in postorder of a DFS from the entry block."""
    return list(reversed(reverse_postorder(function)))


def back_edges(function: Function) -> List[tuple[BasicBlock, BasicBlock]]:
    """CFG back edges (tail, head) determined via dominance."""
    from .dominators import DominatorTree

    domtree = DominatorTree(function)
    edges: List[tuple[BasicBlock, BasicBlock]] = []
    for block in reachable_blocks(function):
        for succ in block.successors():
            if domtree.dominates(succ, block):
                edges.append((block, succ))
    return edges


def is_acyclic(function: Function) -> bool:
    """True if the function's CFG has no cycles."""
    return not back_edges(function)
