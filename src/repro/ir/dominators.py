"""Dominator tree computation (Cooper-Harvey-Kennedy algorithm)."""

from __future__ import annotations

from typing import Dict, List, Optional

from .block import BasicBlock
from .cfg import predecessors_map, reverse_postorder
from .function import Function


class DominatorTree:
    """Immediate-dominator tree for a function's CFG.

    Implements the simple iterative algorithm of Cooper, Harvey & Kennedy
    ("A Simple, Fast Dominance Algorithm"), which is plenty fast for the
    region-sized functions this project manipulates.
    """

    def __init__(self, function: Function):
        self.function = function
        self.rpo: List[BasicBlock] = reverse_postorder(function)
        self._rpo_index: Dict[BasicBlock, int] = {b: i for i, b in enumerate(self.rpo)}
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._compute()

    # ------------------------------------------------------------------ core
    def _compute(self) -> None:
        if not self.rpo:
            return
        entry = self.rpo[0]
        preds = predecessors_map(self.function)
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {b: None for b in self.rpo}
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for block in self.rpo[1:]:
                candidates = [p for p in preds.get(block, []) if idom.get(p) is not None]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for other in candidates[1:]:
                    new_idom = self._intersect(new_idom, other, idom)
                if idom[block] is not new_idom:
                    idom[block] = new_idom
                    changed = True
        # Conventionally the entry block has no immediate dominator.
        idom[entry] = None
        self.idom = idom

    def _intersect(
        self,
        a: BasicBlock,
        b: BasicBlock,
        idom: Dict[BasicBlock, Optional[BasicBlock]],
    ) -> BasicBlock:
        finger_a, finger_b = a, b
        while finger_a is not finger_b:
            while self._rpo_index[finger_a] > self._rpo_index[finger_b]:
                parent = idom[finger_a]
                assert parent is not None
                finger_a = parent
            while self._rpo_index[finger_b] > self._rpo_index[finger_a]:
                parent = idom[finger_b]
                assert parent is not None
                finger_b = parent
        return finger_a

    # --------------------------------------------------------------- queries
    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        return self.idom.get(block)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (every block dominates itself)."""
        if a is b:
            return True
        runner: Optional[BasicBlock] = self.idom.get(b)
        while runner is not None:
            if runner is a:
                return True
            runner = self.idom.get(runner)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        """Blocks whose immediate dominator is ``block``."""
        return [b for b, parent in self.idom.items() if parent is block]

    def dominance_frontier(self) -> Dict[BasicBlock, set]:
        """Dominance frontiers for every reachable block."""
        preds = predecessors_map(self.function)
        frontier: Dict[BasicBlock, set] = {b: set() for b in self.rpo}
        for block in self.rpo:
            block_preds = preds.get(block, [])
            if len(block_preds) < 2:
                continue
            for pred in block_preds:
                if pred not in self._rpo_index:
                    continue
                runner: Optional[BasicBlock] = pred
                while runner is not None and runner is not self.idom[block]:
                    frontier[runner].add(block)
                    runner = self.idom[runner]
        return frontier
