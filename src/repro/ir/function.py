"""Functions of the mini-IR."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence

from .block import BasicBlock
from .instructions import Instruction, Phi
from .types import FunctionType, Type
from .values import Argument, Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .module import Module


class Function(Value):
    """A function: a named list of basic blocks with typed arguments.

    OpenMP parallel regions are modelled the way Clang lowers them: the
    region body becomes an *outlined* function whose ``is_omp_outlined``
    attribute is set; the paper's region extractor then pulls exactly these
    functions out of the module.
    """

    __slots__ = (
        "function_type",
        "arguments",
        "blocks",
        "parent",
        "attributes",
        "is_declaration",
        "_name_counter",
    )

    def __init__(
        self,
        name: str,
        function_type: FunctionType,
        arg_names: Optional[Sequence[str]] = None,
        parent: Optional["Module"] = None,
    ):
        super().__init__(function_type, name)
        self.function_type = function_type
        self.arguments: List[Argument] = []
        for i, param_type in enumerate(function_type.param_types):
            arg_name = arg_names[i] if arg_names and i < len(arg_names) else f"arg{i}"
            self.arguments.append(Argument(param_type, arg_name, i, self))
        self.blocks: List[BasicBlock] = []
        self.parent = parent
        #: free-form attributes: {"omp_outlined", "inline", "noinline", ...}
        self.attributes: set[str] = set()
        self.is_declaration = False
        self._name_counter = 0
        if parent is not None:
            parent.add_function(self)

    # --------------------------------------------------------------- naming
    def next_name(self, prefix: str = "t") -> str:
        """Generate a fresh value name unique within the function."""
        self._name_counter += 1
        return f"{prefix}{self._name_counter}"

    # ------------------------------------------------------------ structure
    @property
    def return_type(self) -> Type:
        return self.function_type.return_type

    @property
    def entry_block(self) -> Optional[BasicBlock]:
        return self.blocks[0] if self.blocks else None

    @property
    def is_omp_outlined(self) -> bool:
        return "omp_outlined" in self.attributes

    def add_block(self, block: BasicBlock) -> BasicBlock:
        block.parent = self
        if block not in self.blocks:
            self.blocks.append(block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def block_named(self, name: str) -> Optional[BasicBlock]:
        for block in self.blocks:
            if block.name == name:
                return block
        return None

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    # ---------------------------------------------------------- instruction
    def instructions(self) -> Iterator[Instruction]:
        """Iterate over every instruction in block order."""
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks)

    def uses_of(self, value: Value) -> List[Instruction]:
        """Return all instructions in this function using ``value``."""
        users: List[Instruction] = []
        for inst in self.instructions():
            if inst.uses_value(value):
                users.append(inst)
        return users

    def replace_all_uses_with(self, old: Value, new: Value) -> int:
        """Replace every use of ``old`` with ``new``; return number replaced."""
        count = 0
        for inst in self.instructions():
            count += inst.replace_operand(old, new)
        return count

    def defined_values(self) -> Dict[str, Instruction]:
        """Map of value-name -> defining instruction (non-void results)."""
        defs: Dict[str, Instruction] = {}
        for inst in self.instructions():
            if not inst.type.is_void and inst.name:
                defs[inst.name] = inst
        return defs

    # ------------------------------------------------------------- metrics
    def static_features(self) -> Dict[str, float]:
        """Cheap static descriptors used for diagnostics and sanity tests."""
        from .loops import find_loops  # local import to avoid a cycle

        opcount: Dict[str, int] = {}
        for inst in self.instructions():
            opcount[inst.opcode] = opcount.get(inst.opcode, 0) + 1
        num_insts = self.instruction_count()
        mem_ops = opcount.get("load", 0) + opcount.get("store", 0)
        flops = sum(opcount.get(op, 0) for op in ("fadd", "fsub", "fmul", "fdiv"))
        loops = find_loops(self)
        return {
            "num_blocks": float(len(self.blocks)),
            "num_instructions": float(num_insts),
            "num_loads": float(opcount.get("load", 0)),
            "num_stores": float(opcount.get("store", 0)),
            "num_flops": float(flops),
            "num_calls": float(opcount.get("call", 0)),
            "num_branches": float(opcount.get("condbr", 0) + opcount.get("br", 0)),
            "num_phis": float(opcount.get("phi", 0)),
            "num_atomics": float(opcount.get("atomicrmw", 0)),
            "num_loops": float(len(loops)),
            "mem_ratio": float(mem_ops) / max(1.0, float(num_insts)),
            "flop_ratio": float(flops) / max(1.0, float(num_insts)),
        }

    def short(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        return f"<Function @{self.name} ({len(self.blocks)} blocks)>"


def remove_block_and_fix_phis(function: Function, block: BasicBlock) -> None:
    """Remove ``block`` from ``function`` and drop phi edges referencing it."""
    for other in function.blocks:
        for phi in other.phis():
            phi.remove_incoming(block)
    if block in function.blocks:
        function.remove_block(block)


def renumber_values(function: Function) -> None:
    """Give every unnamed instruction result a sequential name.

    The printer requires every non-void instruction to have a name; passes
    that synthesize instructions may leave them unnamed.
    """
    taken = {inst.name for inst in function.instructions() if inst.name}
    taken.update(arg.name for arg in function.arguments)
    counter = 0
    for inst in function.instructions():
        if inst.type.is_void or isinstance(inst, Phi) and inst.name:
            continue
        if not inst.name:
            counter += 1
            candidate = f"v{counter}"
            while candidate in taken:
                counter += 1
                candidate = f"v{counter}"
            inst.name = candidate
            taken.add(candidate)
