"""Instruction set of the mini-IR.

The instruction set intentionally mirrors the subset of LLVM IR that the
paper's OpenMP parallel regions exercise: integer/float arithmetic, memory
access through pointers and GEPs, control flow, calls (including the OpenMP
runtime calls such as ``omp_get_thread_num``), phis and atomics for
reductions.

Instructions are SSA values: the instruction object itself *is* the value it
defines.  Operands are stored in a plain list; helper methods keep use/def
queries simple without maintaining intrusive use lists.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from .types import (
    BOOL,
    LABEL,
    VOID,
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    Type,
)
from .values import Constant, Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .block import BasicBlock
    from .function import Function


# Opcode groups --------------------------------------------------------------
INT_BINARY_OPS = (
    "add",
    "sub",
    "mul",
    "sdiv",
    "udiv",
    "srem",
    "urem",
    "and",
    "or",
    "xor",
    "shl",
    "lshr",
    "ashr",
)
FLOAT_BINARY_OPS = ("fadd", "fsub", "fmul", "fdiv", "frem")
BINARY_OPS = INT_BINARY_OPS + FLOAT_BINARY_OPS

ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")
FCMP_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge")

CAST_OPS = ("trunc", "zext", "sext", "fptosi", "sitofp", "fpext", "fptrunc", "bitcast")

COMMUTATIVE_OPS = frozenset({"add", "mul", "and", "or", "xor", "fadd", "fmul"})

#: opcodes that may trap or have side effects and must never be removed by DCE
SIDE_EFFECT_OPS = frozenset({"store", "call", "ret", "br", "atomicrmw", "fence"})

ATOMIC_OPS = ("add", "fadd", "max", "min", "and", "or", "xor", "xchg")


class Instruction(Value):
    """Base class of all instructions."""

    __slots__ = ("opcode", "operands", "parent", "metadata")

    def __init__(
        self,
        opcode: str,
        type: Type,
        operands: Sequence[Value] = (),
        name: str = "",
    ):
        super().__init__(type, name)
        self.opcode = opcode
        self.operands: List[Value] = list(operands)
        self.parent: Optional["BasicBlock"] = None
        #: free-form metadata (loop depth, source hints, OpenMP markers, ...)
        self.metadata: dict[str, object] = {}

    # ------------------------------------------------------------------ uses
    def uses_value(self, value: Value) -> bool:
        """True if ``value`` appears among this instruction's operands."""
        return any(op is value for op in self.operands)

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` with ``new``; return count."""
        count = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                count += 1
        return count

    # ----------------------------------------------------------------- flags
    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Branch, CondBranch, Return, Switch, Unreachable))

    @property
    def has_side_effects(self) -> bool:
        if self.opcode in SIDE_EFFECT_OPS:
            return True
        if isinstance(self, Load) and self.is_volatile:
            return True
        return False

    @property
    def is_pure(self) -> bool:
        """True if the instruction can be removed when its result is unused."""
        if self.has_side_effects or self.is_terminator:
            return False
        if isinstance(self, (Load, Alloca, Phi)):
            # loads are value-dependent on memory, allocas define storage and
            # phis carry control-dependence; all handled by dedicated passes.
            return not isinstance(self, Load) or not self.is_volatile
        return True

    @property
    def function(self) -> Optional["Function"]:
        return self.parent.parent if self.parent is not None else None

    def clone(self) -> "Instruction":
        """Shallow-clone the instruction (same operands, no parent)."""
        inst = type(self).__new__(type(self))
        Instruction.__init__(inst, self.opcode, self.type, list(self.operands), self.name)
        for slot in getattr(type(self), "__slots__", ()):
            if slot in ("opcode", "operands", "parent", "metadata", "type", "name"):
                continue
            setattr(inst, slot, getattr(self, slot))
        inst.metadata = dict(self.metadata)
        return inst

    def __repr__(self) -> str:
        ops = ", ".join(op.short() for op in self.operands)
        return f"<{self.opcode} {self.short()} [{ops}]>"


# ---------------------------------------------------------------------------
# Arithmetic / logic
# ---------------------------------------------------------------------------
class BinaryOp(Instruction):
    """Two-operand arithmetic or bitwise instruction."""

    __slots__ = ()

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in BINARY_OPS:
            raise ValueError(f"unknown binary opcode {opcode!r}")
        super().__init__(opcode, lhs.type, [lhs, rhs], name)

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    @property
    def is_commutative(self) -> bool:
        return self.opcode in COMMUTATIVE_OPS


class ICmp(Instruction):
    """Integer comparison producing an ``i1``."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate {predicate!r}")
        super().__init__("icmp", BOOL, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class FCmp(Instruction):
    """Floating-point comparison producing an ``i1``."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in FCMP_PREDICATES:
            raise ValueError(f"unknown fcmp predicate {predicate!r}")
        super().__init__("fcmp", BOOL, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class Select(Instruction):
    """``select cond, a, b`` — ternary value selection."""

    __slots__ = ()

    def __init__(self, cond: Value, true_value: Value, false_value: Value, name: str = ""):
        super().__init__("select", true_value.type, [cond, true_value, false_value], name)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_value(self) -> Value:
        return self.operands[1]

    @property
    def false_value(self) -> Value:
        return self.operands[2]


class Cast(Instruction):
    """Type conversion instruction."""

    __slots__ = ()

    def __init__(self, opcode: str, value: Value, to_type: Type, name: str = ""):
        if opcode not in CAST_OPS:
            raise ValueError(f"unknown cast opcode {opcode!r}")
        super().__init__(opcode, to_type, [value], name)

    @property
    def source(self) -> Value:
        return self.operands[0]


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------
class Alloca(Instruction):
    """Stack allocation; result is a pointer to ``allocated_type``."""

    __slots__ = ("allocated_type", "array_size")

    def __init__(self, allocated_type: Type, name: str = "", array_size: int = 1):
        super().__init__("alloca", PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type
        self.array_size = array_size


class Load(Instruction):
    """Load a value through a pointer."""

    __slots__ = ("is_volatile",)

    def __init__(self, pointer: Value, name: str = "", volatile: bool = False):
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"load requires a pointer operand, got {pointer.type!r}")
        super().__init__("load", pointer.type.pointee, [pointer], name)
        self.is_volatile = volatile

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    """Store a value through a pointer."""

    __slots__ = ("is_volatile",)

    def __init__(self, value: Value, pointer: Value, volatile: bool = False):
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"store requires a pointer operand, got {pointer.type!r}")
        super().__init__("store", VOID, [value, pointer], "")
        self.is_volatile = volatile

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class GetElementPtr(Instruction):
    """Pointer arithmetic (array indexing).

    The result type is a pointer to the element type obtained by stepping
    through arrays with the provided indices, mirroring LLVM's ``getelementptr``
    for the array/pointer subset we support.
    """

    __slots__ = ()

    def __init__(self, pointer: Value, indices: Sequence[Value], name: str = ""):
        if not isinstance(pointer.type, PointerType):
            raise TypeError("gep requires a pointer operand")
        result_type = self._compute_type(pointer.type, len(indices))
        super().__init__("gep", result_type, [pointer, *indices], name)

    @staticmethod
    def _compute_type(ptr_type: PointerType, num_indices: int) -> PointerType:
        current: Type = ptr_type.pointee
        # The first index steps over the pointer itself, remaining indices
        # descend into array types.
        for _ in range(max(0, num_indices - 1)):
            if isinstance(current, ArrayType):
                current = current.element
            else:
                break
        return PointerType(current)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:]


class AtomicRMW(Instruction):
    """Atomic read-modify-write (used for OpenMP reductions/critical)."""

    __slots__ = ("operation",)

    def __init__(self, operation: str, pointer: Value, value: Value, name: str = ""):
        if operation not in ATOMIC_OPS:
            raise ValueError(f"unknown atomic operation {operation!r}")
        if not isinstance(pointer.type, PointerType):
            raise TypeError("atomicrmw requires a pointer operand")
        super().__init__("atomicrmw", pointer.type.pointee, [pointer, value], name)
        self.operation = operation

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def value(self) -> Value:
        return self.operands[1]


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------
class Branch(Instruction):
    """Unconditional branch."""

    __slots__ = ()

    def __init__(self, target: "BasicBlock"):
        super().__init__("br", VOID, [target], "")

    @property
    def target(self) -> "BasicBlock":
        return self.operands[0]  # type: ignore[return-value]

    def successors(self) -> List["BasicBlock"]:
        return [self.target]


class CondBranch(Instruction):
    """Conditional branch."""

    __slots__ = ()

    def __init__(self, condition: Value, if_true: "BasicBlock", if_false: "BasicBlock"):
        super().__init__("condbr", VOID, [condition, if_true, if_false], "")

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def if_true(self) -> "BasicBlock":
        return self.operands[1]  # type: ignore[return-value]

    @property
    def if_false(self) -> "BasicBlock":
        return self.operands[2]  # type: ignore[return-value]

    def successors(self) -> List["BasicBlock"]:
        return [self.if_true, self.if_false]


class Switch(Instruction):
    """Multi-way branch on an integer value."""

    __slots__ = ("cases",)

    def __init__(
        self,
        value: Value,
        default: "BasicBlock",
        cases: Sequence[Tuple[int, "BasicBlock"]] = (),
    ):
        operands: List[Value] = [value, default]
        for _case_value, block in cases:
            operands.append(block)
        super().__init__("switch", VOID, operands, "")
        self.cases: List[Tuple[int, "BasicBlock"]] = [(cv, blk) for cv, blk in cases]

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def default(self) -> "BasicBlock":
        return self.operands[1]  # type: ignore[return-value]

    def successors(self) -> List["BasicBlock"]:
        return [self.default] + [blk for _, blk in self.cases]


class Return(Instruction):
    """Function return (optionally with a value)."""

    __slots__ = ()

    def __init__(self, value: Optional[Value] = None):
        super().__init__("ret", VOID, [value] if value is not None else [], "")

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def successors(self) -> List["BasicBlock"]:
        return []


class Unreachable(Instruction):
    """Marks unreachable control flow."""

    __slots__ = ()

    def __init__(self):
        super().__init__("unreachable", VOID, [], "")

    def successors(self) -> List["BasicBlock"]:
        return []


class Phi(Instruction):
    """SSA phi node; incoming values are (value, block) pairs."""

    __slots__ = ("incoming_blocks",)

    def __init__(self, type: Type, name: str = ""):
        super().__init__("phi", type, [], name)
        self.incoming_blocks: List["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self.operands.append(value)
        self.incoming_blocks.append(block)

    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_value_for(self, block: "BasicBlock") -> Optional[Value]:
        for value, blk in zip(self.operands, self.incoming_blocks):
            if blk is block:
                return value
        return None

    def remove_incoming(self, block: "BasicBlock") -> None:
        """Drop the incoming edge from ``block`` if present."""
        for i, blk in enumerate(self.incoming_blocks):
            if blk is block:
                del self.incoming_blocks[i]
                del self.operands[i]
                return

    def clone(self) -> "Phi":
        phi = Phi(self.type, self.name)
        phi.operands = list(self.operands)
        phi.incoming_blocks = list(self.incoming_blocks)
        phi.metadata = dict(self.metadata)
        return phi


class Call(Instruction):
    """Function call.

    ``callee`` may be a :class:`repro.ir.function.Function` or a plain string
    symbol for external functions (``sqrt``, ``omp_get_thread_num``...).
    """

    __slots__ = ("callee",)

    def __init__(
        self,
        callee,
        args: Sequence[Value] = (),
        return_type: Optional[Type] = None,
        name: str = "",
    ):
        if return_type is None:
            fn_type = getattr(callee, "type", None)
            if isinstance(fn_type, FunctionType):
                return_type = fn_type.return_type
            else:
                return_type = VOID
        super().__init__("call", return_type, list(args), name)
        self.callee = callee

    @property
    def callee_name(self) -> str:
        name = getattr(self.callee, "name", None)
        return name if name is not None else str(self.callee)

    @property
    def args(self) -> List[Value]:
        return list(self.operands)


def iter_used_values(inst: Instruction) -> Iterable[Value]:
    """Yield the SSA values used by ``inst`` (excluding block operands)."""
    from .block import BasicBlock  # local import to avoid a cycle

    for op in inst.operands:
        if not isinstance(op, BasicBlock):
            yield op
