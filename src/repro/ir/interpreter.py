"""A reference interpreter for the mini-IR.

The interpreter exists for one purpose: testing that compiler passes are
semantics-preserving.  Property-based tests execute a function before and
after a pass pipeline on random inputs and require identical results.

Pointers are modelled as ``(buffer, offset)`` pairs where ``buffer`` is a
Python list of scalars; this is enough for the array-based kernels the
workload generator emits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .block import BasicBlock
from .function import Function
from .instructions import (
    Alloca,
    AtomicRMW,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .types import ArrayType, IntType, PointerType, Type
from .values import Argument, ConstantFloat, ConstantInt, GlobalVariable, Undef, Value


class InterpreterError(RuntimeError):
    """Raised on invalid runtime behaviour (OOB access, step overflow...)."""


@dataclass
class Pointer:
    """Runtime pointer: a buffer plus an element offset."""

    buffer: List[float]
    offset: int = 0

    def displaced(self, delta: int) -> "Pointer":
        return Pointer(self.buffer, self.offset + delta)

    def load(self) -> float:
        if not (0 <= self.offset < len(self.buffer)):
            raise InterpreterError(
                f"load out of bounds: offset {self.offset} of {len(self.buffer)}"
            )
        return self.buffer[self.offset]

    def store(self, value: float) -> None:
        if not (0 <= self.offset < len(self.buffer)):
            raise InterpreterError(
                f"store out of bounds: offset {self.offset} of {len(self.buffer)}"
            )
        self.buffer[self.offset] = value


def _scalar_count(ty: Type) -> int:
    """Number of scalar elements occupied by a value of type ``ty``."""
    if isinstance(ty, ArrayType):
        return ty.count * _scalar_count(ty.element)
    return 1


_EXTERNAL_MATH: Dict[str, Callable[..., float]] = {
    "sqrt": math.sqrt,
    "fabs": abs,
    "exp": math.exp,
    "log": lambda x: math.log(x) if x > 0 else 0.0,
    "sin": math.sin,
    "cos": math.cos,
    "pow": math.pow,
    "fmax": max,
    "fmin": min,
    "floor": math.floor,
    "ceil": math.ceil,
}


class Interpreter:
    """Executes mini-IR functions.

    Parameters
    ----------
    max_steps:
        Hard cap on executed instructions, protecting property tests from
        accidentally unrolled infinite loops.
    thread_id / num_threads:
        Values returned by the OpenMP runtime stubs ``omp_get_thread_num``
        and ``omp_get_num_threads``.
    """

    def __init__(self, max_steps: int = 2_000_000, thread_id: int = 0, num_threads: int = 1):
        self.max_steps = max_steps
        self.thread_id = thread_id
        self.num_threads = num_threads
        self.steps = 0
        self.globals: Dict[str, Pointer] = {}

    # ------------------------------------------------------------------ API
    def run(self, function: Function, args: Sequence[object]) -> Optional[object]:
        """Execute ``function`` with ``args`` and return its result.

        Arguments may be ints, floats, lists (passed as pointers to a fresh
        buffer — mutated in place) or :class:`Pointer` objects.
        """
        if function.is_declaration:
            raise InterpreterError(f"cannot execute declaration @{function.name}")
        if len(args) != len(function.arguments):
            raise InterpreterError(
                f"@{function.name} expects {len(function.arguments)} args, got {len(args)}"
            )
        env: Dict[Value, object] = {}
        for formal, actual in zip(function.arguments, args):
            env[formal] = self._coerce_argument(actual)
        return self._run_function(function, env)

    # ------------------------------------------------------------- internals
    def _coerce_argument(self, value: object) -> object:
        if isinstance(value, list):
            return Pointer(value, 0)
        return value

    def _global_pointer(self, gv: GlobalVariable) -> Pointer:
        existing = self.globals.get(gv.name)
        if existing is not None:
            return existing
        size = _scalar_count(gv.value_type)
        init = 0.0
        if isinstance(gv.initializer, ConstantFloat):
            init = gv.initializer.value
        elif isinstance(gv.initializer, ConstantInt):
            init = gv.initializer.value
        pointer = Pointer([init] * max(1, size), 0)
        self.globals[gv.name] = pointer
        return pointer

    def _value(self, value: Value, env: Dict[Value, object]) -> object:
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, ConstantFloat):
            return value.value
        if isinstance(value, Undef):
            return 0
        if isinstance(value, GlobalVariable):
            return self._global_pointer(value)
        if value in env:
            return env[value]
        raise InterpreterError(f"value {value!r} has no runtime binding")

    def _run_function(self, function: Function, env: Dict[Value, object]) -> Optional[object]:
        block = function.entry_block
        if block is None:
            raise InterpreterError(f"@{function.name} has no entry block")
        previous: Optional[BasicBlock] = None
        while True:
            next_block, result, is_return = self._run_block(function, block, previous, env)
            if is_return:
                return result
            previous = block
            assert next_block is not None
            block = next_block

    def _run_block(
        self,
        function: Function,
        block: BasicBlock,
        previous: Optional[BasicBlock],
        env: Dict[Value, object],
    ):
        # Phase 1: evaluate all phis against the incoming edge simultaneously.
        phi_values: Dict[Phi, object] = {}
        for phi in block.phis():
            if previous is None:
                raise InterpreterError(f"phi %{phi.name} in entry block")
            incoming = phi.incoming_value_for(previous)
            if incoming is None:
                raise InterpreterError(
                    f"phi %{phi.name} has no incoming value for block {previous.name}"
                )
            phi_values[phi] = self._value(incoming, env)
        for phi, value in phi_values.items():
            env[phi] = value

        for inst in block.instructions:
            if isinstance(inst, Phi):
                continue
            self.steps += 1
            if self.steps > self.max_steps:
                raise InterpreterError("maximum interpreter steps exceeded")
            if isinstance(inst, Return):
                value = self._value(inst.value, env) if inst.value is not None else None
                return None, value, True
            if isinstance(inst, Branch):
                return inst.target, None, False
            if isinstance(inst, CondBranch):
                cond = self._value(inst.condition, env)
                return (inst.if_true if cond else inst.if_false), None, False
            if isinstance(inst, Switch):
                selector = self._value(inst.value, env)
                target = inst.default
                for case_value, case_block in inst.cases:
                    if case_value == selector:
                        target = case_block
                        break
                return target, None, False
            if isinstance(inst, Unreachable):
                raise InterpreterError("executed unreachable")
            env[inst] = self._execute(function, inst, env)
        raise InterpreterError(f"block {block.name} fell through without terminator")

    # ---------------------------------------------------------- instruction
    def _execute(self, function: Function, inst: Instruction, env: Dict[Value, object]) -> object:
        if isinstance(inst, BinaryOp):
            return self._binary(inst, env)
        if isinstance(inst, ICmp):
            return int(self._compare_int(inst, env))
        if isinstance(inst, FCmp):
            return int(self._compare_float(inst, env))
        if isinstance(inst, Select):
            cond = self._value(inst.condition, env)
            return self._value(inst.true_value if cond else inst.false_value, env)
        if isinstance(inst, Cast):
            return self._cast(inst, env)
        if isinstance(inst, Alloca):
            size = _scalar_count(inst.allocated_type) * max(1, inst.array_size)
            return Pointer([0.0] * size, 0)
        if isinstance(inst, Load):
            pointer = self._value(inst.pointer, env)
            if not isinstance(pointer, Pointer):
                raise InterpreterError("load from non-pointer value")
            value = pointer.load()
            if inst.type.is_int:
                return int(value)
            return value
        if isinstance(inst, Store):
            pointer = self._value(inst.pointer, env)
            if not isinstance(pointer, Pointer):
                raise InterpreterError("store to non-pointer value")
            pointer.store(self._value(inst.value, env))
            return None
        if isinstance(inst, GetElementPtr):
            return self._gep(inst, env)
        if isinstance(inst, AtomicRMW):
            return self._atomic(inst, env)
        if isinstance(inst, Call):
            return self._call(function, inst, env)
        raise InterpreterError(f"cannot execute opcode {inst.opcode}")

    def _binary(self, inst: BinaryOp, env: Dict[Value, object]) -> object:
        lhs = self._value(inst.lhs, env)
        rhs = self._value(inst.rhs, env)
        op = inst.opcode
        if op in ("fadd", "fsub", "fmul", "fdiv", "frem"):
            lhs_f, rhs_f = float(lhs), float(rhs)
            if op == "fadd":
                return lhs_f + rhs_f
            if op == "fsub":
                return lhs_f - rhs_f
            if op == "fmul":
                return lhs_f * rhs_f
            if op == "fdiv":
                return lhs_f / rhs_f if rhs_f != 0.0 else 0.0
            return math.fmod(lhs_f, rhs_f) if rhs_f != 0.0 else 0.0
        lhs_i, rhs_i = int(lhs), int(rhs)
        ty = inst.type
        assert isinstance(ty, IntType)
        if op == "add":
            result = lhs_i + rhs_i
        elif op == "sub":
            result = lhs_i - rhs_i
        elif op == "mul":
            result = lhs_i * rhs_i
        elif op in ("sdiv", "udiv"):
            result = int(lhs_i / rhs_i) if rhs_i != 0 else 0
        elif op in ("srem", "urem"):
            result = int(math.fmod(lhs_i, rhs_i)) if rhs_i != 0 else 0
        elif op == "and":
            result = lhs_i & rhs_i
        elif op == "or":
            result = lhs_i | rhs_i
        elif op == "xor":
            result = lhs_i ^ rhs_i
        elif op == "shl":
            result = lhs_i << (rhs_i % ty.bits)
        elif op == "lshr":
            result = (lhs_i % (1 << ty.bits)) >> (rhs_i % ty.bits)
        elif op == "ashr":
            result = lhs_i >> (rhs_i % ty.bits)
        else:  # pragma: no cover - exhaustive above
            raise InterpreterError(f"unknown binary opcode {op}")
        return ty.wrap(result)

    def _compare_int(self, inst: ICmp, env: Dict[Value, object]) -> bool:
        lhs = int(self._value(inst.lhs, env))
        rhs = int(self._value(inst.rhs, env))
        pred = inst.predicate
        if pred in ("ult", "ule", "ugt", "uge"):
            bits = inst.lhs.type.bits if isinstance(inst.lhs.type, IntType) else 64
            mask = (1 << bits) - 1
            lhs &= mask
            rhs &= mask
            pred = {"ult": "slt", "ule": "sle", "ugt": "sgt", "uge": "sge"}[pred]
        return {
            "eq": lhs == rhs,
            "ne": lhs != rhs,
            "slt": lhs < rhs,
            "sle": lhs <= rhs,
            "sgt": lhs > rhs,
            "sge": lhs >= rhs,
        }[pred]

    def _compare_float(self, inst: FCmp, env: Dict[Value, object]) -> bool:
        lhs = float(self._value(inst.lhs, env))
        rhs = float(self._value(inst.rhs, env))
        return {
            "oeq": lhs == rhs,
            "one": lhs != rhs,
            "olt": lhs < rhs,
            "ole": lhs <= rhs,
            "ogt": lhs > rhs,
            "oge": lhs >= rhs,
        }[inst.predicate]

    def _cast(self, inst: Cast, env: Dict[Value, object]) -> object:
        value = self._value(inst.source, env)
        op = inst.opcode
        if op in ("zext", "sext", "trunc"):
            ty = inst.type
            assert isinstance(ty, IntType)
            return ty.wrap(int(value))
        if op == "fptosi":
            return int(value)
        if op in ("sitofp", "fpext", "fptrunc"):
            return float(value)
        if op == "bitcast":
            return value
        raise InterpreterError(f"unknown cast {op}")

    def _gep(self, inst: GetElementPtr, env: Dict[Value, object]) -> Pointer:
        pointer = self._value(inst.pointer, env)
        if not isinstance(pointer, Pointer):
            raise InterpreterError("gep on non-pointer value")
        ptr_type = inst.pointer.type
        assert isinstance(ptr_type, PointerType)
        current: Type = ptr_type.pointee
        indices = [int(self._value(idx, env)) for idx in inst.indices]
        offset = indices[0] * _scalar_count(current)
        for idx in indices[1:]:
            if isinstance(current, ArrayType):
                current = current.element
                offset += idx * _scalar_count(current)
            else:
                offset += idx
        return pointer.displaced(offset)

    def _atomic(self, inst: AtomicRMW, env: Dict[Value, object]) -> object:
        pointer = self._value(inst.pointer, env)
        if not isinstance(pointer, Pointer):
            raise InterpreterError("atomicrmw on non-pointer value")
        old = pointer.load()
        operand = self._value(inst.value, env)
        op = inst.operation
        if op in ("add", "fadd"):
            new = old + operand
        elif op == "max":
            new = max(old, operand)
        elif op == "min":
            new = min(old, operand)
        elif op == "and":
            new = int(old) & int(operand)
        elif op == "or":
            new = int(old) | int(operand)
        elif op == "xor":
            new = int(old) ^ int(operand)
        elif op == "xchg":
            new = operand
        else:  # pragma: no cover
            raise InterpreterError(f"unknown atomic op {op}")
        pointer.store(new)
        return old

    def _call(self, function: Function, inst: Call, env: Dict[Value, object]) -> object:
        args = [self._value(a, env) for a in inst.operands]
        callee = inst.callee
        if isinstance(callee, Function) and not callee.is_declaration:
            sub_env: Dict[Value, object] = {}
            for formal, actual in zip(callee.arguments, args):
                sub_env[formal] = actual
            return self._run_function(callee, sub_env)
        name = inst.callee_name
        if name == "omp_get_thread_num":
            return self.thread_id
        if name == "omp_get_num_threads":
            return self.num_threads
        if name in _EXTERNAL_MATH:
            return _EXTERNAL_MATH[name](*[float(a) for a in args])
        # Unknown externals behave as pure functions returning 0; they still
        # count as side-effecting for the optimizer, which is all that matters.
        return 0 if inst.type.is_int else 0.0


def run_function(function: Function, args: Sequence[object], **kwargs) -> Optional[object]:
    """One-shot helper: interpret ``function`` on ``args``."""
    return Interpreter(**kwargs).run(function, args)
