"""Natural-loop detection and loop metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .block import BasicBlock
from .cfg import predecessors_map
from .dominators import DominatorTree
from .function import Function
from .instructions import CondBranch, ICmp, Phi
from .values import ConstantInt, Value


@dataclass
class Loop:
    """A natural loop: header plus the set of blocks in its body."""

    header: BasicBlock
    blocks: Set[BasicBlock] = field(default_factory=set)
    latches: List[BasicBlock] = field(default_factory=list)
    parent: Optional["Loop"] = None
    children: List["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        depth = 1
        current = self.parent
        while current is not None:
            depth += 1
            current = current.parent
        return depth

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks outside the loop that are targeted from inside it."""
        exits: List[BasicBlock] = []
        for block in self.blocks:
            for succ in block.successors():
                if succ not in self.blocks and succ not in exits:
                    exits.append(succ)
        return exits

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if any."""
        if self.header.parent is None:
            return None
        outside = [
            pred
            for pred in self.header.predecessors()
            if pred not in self.blocks
        ]
        return outside[0] if len(outside) == 1 else None

    def induction_phi(self) -> Optional[Phi]:
        """Heuristically find the canonical induction-variable phi."""
        for phi in self.header.phis():
            if phi.type.is_int and len(phi.operands) == 2:
                return phi
        return None

    def trip_count(self) -> Optional[int]:
        """Constant trip count if the loop bound is a compile-time constant.

        Recognizes the canonical counted-loop shape emitted by the workload
        generator: ``i = phi [init, preheader], [i+step, latch]`` guarded by
        ``icmp slt i_next, N`` (or on ``i``).
        """
        phi = self.induction_phi()
        if phi is None:
            return None
        term = self.header.terminator
        cond = None
        if isinstance(term, CondBranch) and isinstance(term.condition, ICmp):
            cond = term.condition
        else:
            for latch in self.latches:
                lt = latch.terminator
                if isinstance(lt, CondBranch) and isinstance(lt.condition, ICmp):
                    cond = lt.condition
                    break
        if cond is None or cond.predicate not in ("slt", "sle", "ult", "ule"):
            return None
        bound = cond.rhs
        if not isinstance(bound, ConstantInt):
            return None
        init: Optional[Value] = None
        for value, block in phi.incoming():
            if block not in self.blocks:
                init = value
        if not isinstance(init, ConstantInt):
            return None
        count = bound.value - init.value
        if cond.predicate in ("sle", "ule"):
            count += 1
        return max(0, count)


def find_loops(function: Function) -> List[Loop]:
    """Detect all natural loops of ``function`` and nest them."""
    if not function.blocks:
        return []
    domtree = DominatorTree(function)
    preds = predecessors_map(function)
    loops_by_header: Dict[BasicBlock, Loop] = {}

    for block in function.blocks:
        for succ in block.successors():
            if domtree.dominates(succ, block):
                # back edge block -> succ; succ is the loop header.
                loop = loops_by_header.setdefault(succ, Loop(header=succ, blocks={succ}))
                loop.latches.append(block)
                # Collect the loop body by walking predecessors from the latch.
                stack = [block]
                while stack:
                    current = stack.pop()
                    if current in loop.blocks:
                        continue
                    loop.blocks.add(current)
                    for pred in preds.get(current, []):
                        if pred not in loop.blocks:
                            stack.append(pred)

    loops = list(loops_by_header.values())
    # Establish nesting: a loop is a child of the smallest loop strictly
    # containing its header.
    for loop in loops:
        best: Optional[Loop] = None
        for other in loops:
            if other is loop:
                continue
            if loop.header in other.blocks and loop.blocks <= other.blocks:
                if best is None or len(other.blocks) < len(best.blocks):
                    best = other
        loop.parent = best
        if best is not None:
            best.children.append(loop)
    return loops


def loop_depth_map(function: Function) -> Dict[BasicBlock, int]:
    """Block -> nesting depth (0 outside any loop)."""
    depths: Dict[BasicBlock, int] = {block: 0 for block in function.blocks}
    for loop in find_loops(function):
        for block in loop.blocks:
            depths[block] = max(depths[block], loop.depth)
    return depths


def max_loop_depth(function: Function) -> int:
    depths = loop_depth_map(function)
    return max(depths.values(), default=0)
