"""Modules (translation units) of the mini-IR."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .function import Function
from .values import GlobalVariable


class Module:
    """A compilation unit: global variables plus functions.

    A module corresponds to one benchmark source file after "compilation";
    OpenMP parallel regions appear as outlined functions within it.
    """

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: List[Function] = []
        self.globals: List[GlobalVariable] = []
        #: free-form metadata (benchmark family, region id, flag sequence, ...)
        self.metadata: Dict[str, object] = {}

    # ------------------------------------------------------------ functions
    def add_function(self, function: Function) -> Function:
        function.parent = self
        if function not in self.functions:
            self.functions.append(function)
        return function

    def remove_function(self, function: Function) -> None:
        self.functions.remove(function)
        function.parent = None

    def get_function(self, name: str) -> Optional[Function]:
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None

    def omp_outlined_functions(self) -> List[Function]:
        """The OpenMP parallel-region functions (the paper's code regions)."""
        return [fn for fn in self.functions if fn.is_omp_outlined]

    # -------------------------------------------------------------- globals
    def add_global(self, gv: GlobalVariable) -> GlobalVariable:
        if gv not in self.globals:
            self.globals.append(gv)
        return gv

    def get_global(self, name: str) -> Optional[GlobalVariable]:
        for gv in self.globals:
            if gv.name == name:
                return gv
        return None

    # -------------------------------------------------------------- queries
    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions)

    def instruction_count(self) -> int:
        return sum(fn.instruction_count() for fn in self.functions)

    def clone(self) -> "Module":
        """Deep-copy the module via a print/parse round trip.

        Modules are mutated destructively by compiler passes; the dataset
        augmentation step needs to run many independent flag sequences over
        the *same* source module, so cloning must produce fully disjoint IR
        object graphs.  A textual round trip is the simplest way to guarantee
        that and doubles as a continuous test of the printer/parser pair.
        """
        from .parser import parse_module
        from .printer import print_module

        cloned = parse_module(print_module(self))
        cloned.metadata = dict(self.metadata)
        return cloned

    def __repr__(self) -> str:
        return f"<Module {self.name} ({len(self.functions)} functions)>"


def extract_region(module: Module, function_name: str) -> Module:
    """Extract one function into a standalone module (``llvm-extract``).

    Mirrors the paper's region-extraction step: the OpenMP outlined function
    is pulled into its own small module together with any globals and callees
    it references, so the graph builder sees only the parallel region.
    """
    target = module.get_function(function_name)
    if target is None:
        raise KeyError(f"no function named {function_name!r} in module {module.name}")

    extracted = Module(f"{module.name}.{function_name}")
    extracted.metadata = dict(module.metadata)
    extracted.metadata["extracted_from"] = module.name

    # Collect referenced globals and directly-called module functions.
    needed_functions = {target}
    worklist = [target]
    while worklist:
        fn = worklist.pop()
        for inst in fn.instructions():
            callee = getattr(inst, "callee", None)
            if isinstance(callee, Function) and callee.parent is module:
                if callee not in needed_functions:
                    needed_functions.add(callee)
                    worklist.append(callee)

    referenced_global_names = set()
    for fn in needed_functions:
        for inst in fn.instructions():
            for op in inst.operands:
                if isinstance(op, GlobalVariable):
                    referenced_global_names.add(op.name)

    for gv in module.globals:
        if gv.name in referenced_global_names:
            extracted.add_global(gv)

    # Re-parse through text to obtain an independent copy of the subgraph.
    from .parser import parse_module
    from .printer import print_function, print_global

    text_parts = [print_global(gv) for gv in extracted.globals]
    order = [fn for fn in module.functions if fn in needed_functions]
    text_parts.extend(print_function(fn) for fn in order)
    fresh = parse_module("\n\n".join(text_parts), name=extracted.name)
    fresh.metadata = dict(extracted.metadata)
    return fresh
