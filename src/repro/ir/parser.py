"""Parser for the textual mini-IR format produced by :mod:`repro.ir.printer`.

The parser is deliberately forgiving about whitespace but strict about
structure; it is exercised continuously because :meth:`Module.clone` uses a
print/parse round trip.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .block import BasicBlock
from .function import Function
from .instructions import (
    ATOMIC_OPS,
    BINARY_OPS,
    CAST_OPS,
    FCMP_PREDICATES,
    ICMP_PREDICATES,
    Alloca,
    AtomicRMW,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .module import Module
from .types import BOOL, VOID, FunctionType, PointerType, Type, parse_type
from .values import (
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    Undef,
    Value,
)


class ParseError(ValueError):
    """Raised when the textual IR cannot be parsed."""


# ---------------------------------------------------------------------------
# Small lexing helpers
# ---------------------------------------------------------------------------
def strip_comment(line: str) -> str:
    idx = line.find(";")
    return line[:idx] if idx >= 0 else line


def split_type_prefix(text: str) -> Tuple[Type, str]:
    """Parse a type from the front of ``text``; return (type, remainder)."""
    text = text.lstrip()
    if text.startswith("["):
        depth = 0
        for i, ch in enumerate(text):
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
                if depth == 0:
                    end = i + 1
                    while end < len(text) and text[end] == "*":
                        end += 1
                    return parse_type(text[:end]), text[end:].lstrip()
        raise ParseError(f"unbalanced array type in {text!r}")
    match = re.match(r"(void|label|i\d+|f\d+)(\**)", text)
    if not match:
        raise ParseError(f"expected a type at {text!r}")
    return parse_type(match.group(0)), text[match.end():].lstrip()


def split_top_level(text: str, sep: str = ",") -> List[str]:
    """Split ``text`` on ``sep`` ignoring separators inside brackets/parens."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch in "[(":
            depth += 1
        elif ch in "])":
            depth -= 1
        if ch == sep and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class _Forward(Value):
    """Placeholder for a not-yet-defined local value (forward reference)."""

    __slots__ = ("ref_name",)

    def __init__(self, type: Type, ref_name: str):
        super().__init__(type, ref_name)
        self.ref_name = ref_name


class _FunctionParser:
    """Parses the body of one ``define``."""

    def __init__(self, module: Module, function: Function, lines: List[str]):
        self.module = module
        self.function = function
        self.lines = lines
        self.blocks: Dict[str, BasicBlock] = {}
        self.locals: Dict[str, Value] = {arg.name: arg for arg in function.arguments}
        self.result_types: Dict[str, Type] = {}
        self.fixups: List[Tuple[Instruction, int, str]] = []

    # ---------------------------------------------------------------- passes
    def parse(self) -> None:
        self._collect_blocks_and_types()
        self._build_instructions()
        self._apply_fixups()

    def _collect_blocks_and_types(self) -> None:
        for raw in self.lines:
            line = strip_comment(raw).strip()
            if not line:
                continue
            if line.endswith(":") and not line.startswith("%"):
                name = line[:-1].strip()
                self.blocks[name] = BasicBlock(name, self.function)
                continue
            if "=" in line and line.startswith("%"):
                name, rhs = line.split("=", 1)
                name = name.strip().lstrip("%")
                self.result_types[name] = self._result_type(rhs.strip())
        if not self.blocks:
            raise ParseError(f"function @{self.function.name} has no blocks")

    def _result_type(self, rhs: str) -> Type:
        tokens = rhs.split(None, 1)
        opcode = tokens[0]
        rest = tokens[1] if len(tokens) > 1 else ""
        if opcode in ("icmp", "fcmp"):
            return BOOL
        if opcode == "alloca":
            ty, _ = split_type_prefix(rest)
            return PointerType(ty)
        if opcode == "atomicrmw":
            _op, rest2 = rest.split(None, 1)
            ty, _ = split_type_prefix(rest2)
            return ty
        if opcode == "load":
            if rest.startswith("volatile"):
                rest = rest[len("volatile"):].lstrip()
            ty, _ = split_type_prefix(rest)
            return ty
        if opcode in BINARY_OPS or opcode in CAST_OPS or opcode in (
            "select",
            "gep",
            "call",
            "phi",
        ):
            ty, _ = split_type_prefix(rest)
            return ty
        raise ParseError(f"cannot infer result type of {rhs!r}")

    # -------------------------------------------------------------- operands
    def parse_operand(self, text: str) -> Value:
        text = text.strip()
        if text.startswith("%"):
            name = text[1:]
            value = self.locals.get(name)
            if value is not None:
                return value
            ty = self.result_types.get(name)
            if ty is None:
                raise ParseError(
                    f"use of undefined value %{name} in @{self.function.name}"
                )
            return _Forward(ty, name)
        if text.startswith("^"):
            name = text[1:]
            block = self.blocks.get(name)
            if block is None:
                raise ParseError(f"unknown block ^{name}")
            return block
        if text.startswith("@"):
            name = text[1:]
            gv = self.module.get_global(name)
            if gv is not None:
                return gv
            fn = self.module.get_function(name)
            if fn is not None:
                return fn
            raise ParseError(f"unknown global @{name}")
        if text.startswith("undef:"):
            return Undef(parse_type(text[len("undef:"):]))
        if ":" in text:
            literal, _, type_text = text.rpartition(":")
            ty = parse_type(type_text)
            if ty.is_float:
                return ConstantFloat(float(literal), ty)  # type: ignore[arg-type]
            return ConstantInt(int(literal), ty)  # type: ignore[arg-type]
        raise ParseError(f"cannot parse operand {text!r}")

    def _operand_with_fixup(self, text: str) -> Value:
        return self.parse_operand(text)

    def _register(self, name: str, inst: Instruction) -> None:
        inst.name = name
        self.locals[name] = inst

    # ---------------------------------------------------------- instructions
    def _build_instructions(self) -> None:
        current: Optional[BasicBlock] = None
        for raw in self.lines:
            line = strip_comment(raw).strip()
            if not line:
                continue
            if line.endswith(":") and not line.startswith("%"):
                current = self.blocks[line[:-1].strip()]
                continue
            if current is None:
                raise ParseError(f"instruction before first block label: {line!r}")
            inst = self._parse_instruction(line)
            current.append(inst)
            self._record_forward_uses(inst)

    def _record_forward_uses(self, inst: Instruction) -> None:
        for i, op in enumerate(inst.operands):
            if isinstance(op, _Forward):
                self.fixups.append((inst, i, op.ref_name))

    def _apply_fixups(self) -> None:
        for inst, index, name in self.fixups:
            value = self.locals.get(name)
            if value is None:
                raise ParseError(
                    f"forward reference %{name} never defined in @{self.function.name}"
                )
            inst.operands[index] = value

    def _parse_instruction(self, line: str) -> Instruction:
        if "=" in line and line.startswith("%"):
            name_part, rhs = line.split("=", 1)
            name = name_part.strip().lstrip("%")
            inst = self._parse_rhs(rhs.strip())
            self._register(name, inst)
            return inst
        return self._parse_statement(line)

    def _parse_rhs(self, rhs: str) -> Instruction:
        opcode, _, rest = rhs.partition(" ")
        rest = rest.strip()
        if opcode in BINARY_OPS:
            _ty, operand_text = split_type_prefix(rest)
            lhs_text, rhs_text = split_top_level(operand_text)
            return BinaryOp(opcode, self.parse_operand(lhs_text), self.parse_operand(rhs_text))
        if opcode == "icmp":
            pred, _, operand_text = rest.partition(" ")
            if pred not in ICMP_PREDICATES:
                raise ParseError(f"bad icmp predicate {pred!r}")
            lhs_text, rhs_text = split_top_level(operand_text)
            return ICmp(pred, self.parse_operand(lhs_text), self.parse_operand(rhs_text))
        if opcode == "fcmp":
            pred, _, operand_text = rest.partition(" ")
            if pred not in FCMP_PREDICATES:
                raise ParseError(f"bad fcmp predicate {pred!r}")
            lhs_text, rhs_text = split_top_level(operand_text)
            return FCmp(pred, self.parse_operand(lhs_text), self.parse_operand(rhs_text))
        if opcode == "select":
            _ty, operand_text = split_type_prefix(rest)
            cond_text, true_text, false_text = split_top_level(operand_text)
            return Select(
                self.parse_operand(cond_text),
                self.parse_operand(true_text),
                self.parse_operand(false_text),
            )
        if opcode in CAST_OPS:
            ty, operand_text = split_type_prefix(rest)
            return Cast(opcode, self.parse_operand(operand_text), ty)
        if opcode == "alloca":
            parts = split_top_level(rest)
            ty, _ = split_type_prefix(parts[0])
            array_size = int(parts[1]) if len(parts) > 1 else 1
            return Alloca(ty, array_size=array_size)
        if opcode == "load":
            volatile = False
            if rest.startswith("volatile"):
                volatile = True
                rest = rest[len("volatile"):].lstrip()
            _ty, ptr_text = split_type_prefix(rest)
            return Load(self.parse_operand(ptr_text), volatile=volatile)
        if opcode == "gep":
            _ty, operand_text = split_type_prefix(rest)
            parts = split_top_level(operand_text)
            pointer = self.parse_operand(parts[0])
            indices = [self.parse_operand(p) for p in parts[1:]]
            return GetElementPtr(pointer, indices)
        if opcode == "atomicrmw":
            op, _, rest2 = rest.partition(" ")
            if op not in ATOMIC_OPS:
                raise ParseError(f"bad atomic op {op!r}")
            _ty, operand_text = split_type_prefix(rest2)
            ptr_text, val_text = split_top_level(operand_text)
            return AtomicRMW(op, self.parse_operand(ptr_text), self.parse_operand(val_text))
        if opcode == "call":
            ty, call_text = split_type_prefix(rest)
            return self._parse_call(ty, call_text)
        if opcode == "phi":
            ty, pairs_text = split_type_prefix(rest)
            phi = Phi(ty)
            for pair in split_top_level(pairs_text):
                if not (pair.startswith("[") and pair.endswith("]")):
                    raise ParseError(f"malformed phi incoming {pair!r}")
                value_text, block_text = split_top_level(pair[1:-1])
                block = self.parse_operand(block_text)
                if not isinstance(block, BasicBlock):
                    raise ParseError(f"phi incoming block {block_text!r} is not a block")
                phi.add_incoming(self.parse_operand(value_text), block)
            return phi
        raise ParseError(f"unknown instruction {rhs!r}")

    def _parse_call(self, return_type: Type, call_text: str) -> Call:
        match = re.match(r"@([\w.$]+)\((.*)\)$", call_text.strip())
        if not match:
            raise ParseError(f"malformed call {call_text!r}")
        callee_name, args_text = match.group(1), match.group(2)
        callee = self.module.get_function(callee_name)
        args = [self.parse_operand(a) for a in split_top_level(args_text) if a]
        return Call(callee if callee is not None else callee_name, args, return_type)

    def _parse_statement(self, line: str) -> Instruction:
        opcode, _, rest = line.partition(" ")
        rest = rest.strip()
        if opcode == "store":
            volatile = False
            if rest.startswith("volatile"):
                volatile = True
                rest = rest[len("volatile"):].lstrip()
            _ty, operand_text = split_type_prefix(rest)
            value_text, ptr_text = split_top_level(operand_text)
            return Store(self.parse_operand(value_text), self.parse_operand(ptr_text), volatile)
        if opcode == "br":
            target = self.parse_operand(rest)
            if not isinstance(target, BasicBlock):
                raise ParseError(f"br target {rest!r} is not a block")
            return Branch(target)
        if opcode == "condbr":
            cond_text, true_text, false_text = split_top_level(rest)
            true_block = self.parse_operand(true_text)
            false_block = self.parse_operand(false_text)
            if not isinstance(true_block, BasicBlock) or not isinstance(false_block, BasicBlock):
                raise ParseError(f"condbr targets must be blocks: {rest!r}")
            return CondBranch(self.parse_operand(cond_text), true_block, false_block)
        if opcode == "switch":
            head, _, cases_text = rest.partition("[")
            cases_text = cases_text.rstrip("]")
            value_text, default_text = split_top_level(head)
            default = self.parse_operand(default_text)
            if not isinstance(default, BasicBlock):
                raise ParseError("switch default must be a block")
            cases: List[Tuple[int, BasicBlock]] = []
            for case in split_top_level(cases_text):
                if not case:
                    continue
                cv_text, _, blk_text = case.partition(":")
                block = self.parse_operand(blk_text.strip())
                if not isinstance(block, BasicBlock):
                    raise ParseError("switch case target must be a block")
                cases.append((int(cv_text.strip()), block))
            return Switch(self.parse_operand(value_text), default, cases)
        if opcode == "ret":
            if rest:
                return Return(self.parse_operand(rest))
            return Return()
        if opcode == "unreachable" or line == "unreachable":
            return Unreachable()
        if opcode == "call":
            ty, call_text = split_type_prefix(rest)
            return self._parse_call(ty, call_text)
        raise ParseError(f"unknown statement {line!r}")


# ---------------------------------------------------------------------------
# Module-level parsing
# ---------------------------------------------------------------------------
_DEFINE_RE = re.compile(r"define\s+(.+?)\s+@([\w.$]+)\((.*?)\)\s*([\w\s]*)\{")
_DECLARE_RE = re.compile(r"declare\s+(.+?)\s+@([\w.$]+)\((.*?)\)\s*([\w\s]*)$")
_GLOBAL_RE = re.compile(r"@([\w.$]+)\s*=\s*global\s+(.+)$")


def _parse_params(text: str) -> Tuple[List[Type], List[str]]:
    types: List[Type] = []
    names: List[str] = []
    for i, part in enumerate(split_top_level(text)):
        if not part:
            continue
        ty, rest = split_type_prefix(part)
        types.append(ty)
        rest = rest.strip()
        names.append(rest.lstrip("%") if rest else f"arg{i}")
    return types, names


def parse_module(text: str, name: str = "module") -> Module:
    """Parse a full module from text."""
    module = Module(name)
    lines = text.splitlines()
    i = 0
    pending: List[Tuple[Function, List[str]]] = []
    while i < len(lines):
        line = strip_comment(lines[i]).strip()
        if line.startswith("; module") or not line:
            if lines[i].strip().startswith("; module"):
                module.name = lines[i].strip()[len("; module"):].strip() or module.name
            i += 1
            continue
        gmatch = _GLOBAL_RE.match(line)
        if gmatch and "define" not in line:
            gv_name, rhs = gmatch.group(1), gmatch.group(2)
            is_const = rhs.rstrip().endswith(" const")
            if is_const:
                rhs = rhs.rstrip()[: -len(" const")]
            ty, init_text = split_type_prefix(rhs)
            initializer = None
            init_text = init_text.strip()
            if init_text:
                literal, _, type_text = init_text.rpartition(":")
                init_ty = parse_type(type_text)
                if init_ty.is_float:
                    initializer = ConstantFloat(float(literal), init_ty)  # type: ignore[arg-type]
                else:
                    initializer = ConstantInt(int(literal), init_ty)  # type: ignore[arg-type]
            module.add_global(GlobalVariable(ty, gv_name, initializer, is_const))
            i += 1
            continue
        dmatch = _DECLARE_RE.match(line)
        if dmatch:
            ret_ty = parse_type(dmatch.group(1))
            fn_name = dmatch.group(2)
            param_types, param_names = _parse_params(dmatch.group(3))
            fn = Function(fn_name, FunctionType(ret_ty, param_types), param_names, module)
            fn.is_declaration = True
            for attr in dmatch.group(4).split():
                fn.attributes.add(attr)
            i += 1
            continue
        fmatch = _DEFINE_RE.match(line)
        if fmatch:
            ret_ty = parse_type(fmatch.group(1))
            fn_name = fmatch.group(2)
            param_types, param_names = _parse_params(fmatch.group(3))
            fn = Function(fn_name, FunctionType(ret_ty, param_types), param_names, module)
            for attr in fmatch.group(4).split():
                fn.attributes.add(attr)
            body: List[str] = []
            i += 1
            while i < len(lines) and strip_comment(lines[i]).strip() != "}":
                body.append(lines[i])
                i += 1
            if i >= len(lines):
                raise ParseError(f"unterminated function @{fn_name}")
            i += 1  # skip closing brace
            pending.append((fn, body))
            continue
        raise ParseError(f"cannot parse module line: {line!r}")

    # Bodies are parsed after all function headers exist so that calls can
    # resolve to module functions regardless of definition order.
    for fn, body in pending:
        _FunctionParser(module, fn, body).parse()
    return module


def parse_function(text: str) -> Function:
    """Parse a single function given as text; returns the first function."""
    module = parse_module(text)
    if not module.functions:
        raise ParseError("no function found in text")
    return module.functions[0]
