"""Textual serialization of the mini-IR.

The format is a compact LLVM-inspired syntax designed to round-trip through
:mod:`repro.ir.parser`.  Every value-producing instruction states its result
type explicitly right after the opcode, which keeps the parser single-pass
(modulo forward-reference patching for phi nodes).

Example::

    define f64 @dot(i64 %n, f64* %a, f64* %b) omp_outlined {
    entry:
      br ^loop
    loop:
      %i = phi i64 [0:i64, ^entry], [%inext, ^loop]
      %acc = phi f64 [0.0:f64, ^entry], [%accnext, ^loop]
      %pa = gep f64* %a, %i
      %va = load f64 %pa
      %pb = gep f64* %b, %i
      %vb = load f64 %pb
      %prod = fmul f64 %va, %vb
      %accnext = fadd f64 %acc, %prod
      %inext = add i64 %i, 1:i64
      %cond = icmp slt %inext, %n
      condbr %cond, ^loop, ^exit
    exit:
      ret %accnext
    }
"""

from __future__ import annotations

from typing import List

from .block import BasicBlock
from .function import Function
from .instructions import (
    Alloca,
    AtomicRMW,
    BinaryOp,
    Branch,
    Call,
    Cast,
    CondBranch,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Return,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .module import Module
from .values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    Undef,
    Value,
)


def format_operand(value: Value) -> str:
    """Render one operand reference."""
    if isinstance(value, ConstantInt):
        return f"{value.value}:{value.type!r}"
    if isinstance(value, ConstantFloat):
        return f"{value.value!r}:{value.type!r}"
    if isinstance(value, Undef):
        return f"undef:{value.type!r}"
    if isinstance(value, BasicBlock):
        return f"^{value.name}"
    if isinstance(value, GlobalVariable):
        return f"@{value.name}"
    if isinstance(value, (Argument, Instruction)):
        return f"%{value.name}"
    if isinstance(value, Function):
        return f"@{value.name}"
    raise TypeError(f"cannot format operand {value!r}")


def print_instruction(inst: Instruction) -> str:
    """Render one instruction (without indentation)."""
    def res() -> str:
        return f"%{inst.name} = "

    if isinstance(inst, BinaryOp):
        return f"{res()}{inst.opcode} {inst.type!r} {format_operand(inst.lhs)}, {format_operand(inst.rhs)}"
    if isinstance(inst, ICmp):
        return f"{res()}icmp {inst.predicate} {format_operand(inst.lhs)}, {format_operand(inst.rhs)}"
    if isinstance(inst, FCmp):
        return f"{res()}fcmp {inst.predicate} {format_operand(inst.lhs)}, {format_operand(inst.rhs)}"
    if isinstance(inst, Select):
        ops = ", ".join(format_operand(o) for o in inst.operands)
        return f"{res()}select {inst.type!r} {ops}"
    if isinstance(inst, Cast):
        return f"{res()}{inst.opcode} {inst.type!r} {format_operand(inst.source)}"
    if isinstance(inst, Alloca):
        suffix = f", {inst.array_size}" if inst.array_size != 1 else ""
        return f"{res()}alloca {inst.allocated_type!r}{suffix}"
    if isinstance(inst, Load):
        vol = " volatile" if inst.is_volatile else ""
        return f"{res()}load{vol} {inst.type!r} {format_operand(inst.pointer)}"
    if isinstance(inst, Store):
        vol = " volatile" if inst.is_volatile else ""
        return (
            f"store{vol} {inst.value.type!r} {format_operand(inst.value)}, "
            f"{format_operand(inst.pointer)}"
        )
    if isinstance(inst, GetElementPtr):
        indices = ", ".join(format_operand(i) for i in inst.indices)
        return f"{res()}gep {inst.type!r} {format_operand(inst.pointer)}, {indices}"
    if isinstance(inst, AtomicRMW):
        return (
            f"{res()}atomicrmw {inst.operation} {inst.type!r} "
            f"{format_operand(inst.pointer)}, {format_operand(inst.value)}"
        )
    if isinstance(inst, Call):
        args = ", ".join(format_operand(a) for a in inst.operands)
        callee = inst.callee_name
        prefix = res() if not inst.type.is_void else ""
        return f"{prefix}call {inst.type!r} @{callee}({args})"
    if isinstance(inst, Phi):
        pairs = ", ".join(
            f"[{format_operand(v)}, ^{b.name}]" for v, b in inst.incoming()
        )
        return f"{res()}phi {inst.type!r} {pairs}"
    if isinstance(inst, Branch):
        return f"br ^{inst.target.name}"
    if isinstance(inst, CondBranch):
        return (
            f"condbr {format_operand(inst.condition)}, "
            f"^{inst.if_true.name}, ^{inst.if_false.name}"
        )
    if isinstance(inst, Switch):
        cases = ", ".join(f"{v}: ^{b.name}" for v, b in inst.cases)
        return f"switch {format_operand(inst.value)}, ^{inst.default.name} [{cases}]"
    if isinstance(inst, Return):
        if inst.value is None:
            return "ret"
        return f"ret {format_operand(inst.value)}"
    if isinstance(inst, Unreachable):
        return "unreachable"
    raise TypeError(f"cannot print instruction {inst!r}")


def print_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    for inst in block.instructions:
        lines.append(f"  {print_instruction(inst)}")
    return "\n".join(lines)


def print_function(function: Function) -> str:
    params = ", ".join(
        f"{arg.type!r} %{arg.name}" for arg in function.arguments
    )
    attrs = " ".join(sorted(function.attributes))
    attrs = f" {attrs}" if attrs else ""
    header = f"define {function.return_type!r} @{function.name}({params}){attrs}"
    if function.is_declaration or not function.blocks:
        return f"declare {function.return_type!r} @{function.name}({params}){attrs}"
    body = "\n".join(print_block(block) for block in function.blocks)
    return f"{header} {{\n{body}\n}}"


def print_global(gv: GlobalVariable) -> str:
    init = ""
    if gv.initializer is not None:
        init = f" {format_operand(gv.initializer)}"
    const = " const" if gv.is_constant_global else ""
    return f"@{gv.name} = global {gv.value_type!r}{init}{const}"


def print_module(module: Module) -> str:
    """Serialize a whole module."""
    parts: List[str] = [f"; module {module.name}"]
    for gv in module.globals:
        parts.append(print_global(gv))
    for fn in module.functions:
        parts.append(print_function(fn))
    return "\n\n".join(parts) + "\n"
