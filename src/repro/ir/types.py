"""Type system for the mini-IR.

The reproduction does not depend on LLVM; instead it ships a small typed,
SSA-based intermediate representation whose surface is close enough to LLVM
IR that the paper's pipeline (flag-sequence augmentation, ProGraML-style
graph construction) can be exercised faithfully.

Types are immutable and interned where it is cheap to do so, which makes
equality checks fast in the hot paths of the pass pipeline.
"""

from __future__ import annotations

from typing import Sequence, Tuple


class Type:
    """Base class of all IR types."""

    #: short kind tag used by the graph vocabulary
    kind: str = "type"

    def __eq__(self, other: object) -> bool:  # pragma: no cover - overridden
        return self is other

    def __hash__(self) -> int:
        return hash(repr(self))

    def __repr__(self) -> str:  # pragma: no cover - overridden
        return self.kind

    # Convenience predicates -------------------------------------------------
    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_int(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_bool(self) -> bool:
        return isinstance(self, IntType) and self.bits == 1

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    @property
    def is_label(self) -> bool:
        return isinstance(self, LabelType)

    @property
    def is_numeric(self) -> bool:
        return self.is_int or self.is_float


class VoidType(Type):
    """The ``void`` type (functions with no return value)."""

    kind = "void"
    _instance: "VoidType | None" = None

    def __new__(cls) -> "VoidType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")

    def __repr__(self) -> str:
        return "void"


class LabelType(Type):
    """Type of basic-block labels (used only by branch operands)."""

    kind = "label"
    _instance: "LabelType | None" = None

    def __new__(cls) -> "LabelType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LabelType)

    def __hash__(self) -> int:
        return hash("label")

    def __repr__(self) -> str:
        return "label"


class IntType(Type):
    """Fixed-width integer type ``iN``."""

    kind = "int"
    __slots__ = ("bits",)
    _cache: dict[int, "IntType"] = {}

    def __new__(cls, bits: int) -> "IntType":
        if bits <= 0:
            raise ValueError(f"integer width must be positive, got {bits}")
        cached = cls._cache.get(bits)
        if cached is not None:
            return cached
        inst = super().__new__(cls)
        inst.bits = bits
        cls._cache[bits] = inst
        return inst

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("int", self.bits))

    def __repr__(self) -> str:
        return f"i{self.bits}"

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.bits > 1 else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.bits > 1 else 1

    def wrap(self, value: int) -> int:
        """Wrap ``value`` to the two's-complement range of this type."""
        mask = (1 << self.bits) - 1
        value &= mask
        if self.bits > 1 and value >= (1 << (self.bits - 1)):
            value -= 1 << self.bits
        return value


class FloatType(Type):
    """IEEE floating point type (``f32`` or ``f64``)."""

    kind = "float"
    __slots__ = ("bits",)
    _cache: dict[int, "FloatType"] = {}

    def __new__(cls, bits: int = 64) -> "FloatType":
        if bits not in (32, 64):
            raise ValueError(f"float width must be 32 or 64, got {bits}")
        cached = cls._cache.get(bits)
        if cached is not None:
            return cached
        inst = super().__new__(cls)
        inst.bits = bits
        cls._cache[bits] = inst
        return inst

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FloatType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("float", self.bits))

    def __repr__(self) -> str:
        return f"f{self.bits}"


class PointerType(Type):
    """Pointer to another type."""

    kind = "ptr"
    __slots__ = ("pointee",)

    def __init__(self, pointee: Type):
        self.pointee = pointee

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"


class ArrayType(Type):
    """Fixed-length array type ``[N x T]``."""

    kind = "array"
    __slots__ = ("element", "count")

    def __init__(self, element: Type, count: int):
        if count < 0:
            raise ValueError("array length must be non-negative")
        self.element = element
        self.count = count

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.element == self.element
            and other.count == self.count
        )

    def __hash__(self) -> int:
        return hash(("array", self.element, self.count))

    def __repr__(self) -> str:
        return f"[{self.count} x {self.element!r}]"


class FunctionType(Type):
    """Function signature type."""

    kind = "func"
    __slots__ = ("return_type", "param_types")

    def __init__(self, return_type: Type, param_types: Sequence[Type] = ()):
        self.return_type = return_type
        self.param_types: Tuple[Type, ...] = tuple(param_types)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.return_type == self.return_type
            and other.param_types == self.param_types
        )

    def __hash__(self) -> int:
        return hash(("func", self.return_type, self.param_types))

    def __repr__(self) -> str:
        params = ", ".join(repr(p) for p in self.param_types)
        return f"{self.return_type!r} ({params})"


# ---------------------------------------------------------------------------
# Canonical singletons used throughout the codebase.
# ---------------------------------------------------------------------------
VOID = VoidType()
LABEL = LabelType()
BOOL = IntType(1)
I8 = IntType(8)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)


def pointer_to(ty: Type) -> PointerType:
    """Return a pointer type to ``ty``."""
    return PointerType(ty)


def array_of(ty: Type, count: int) -> ArrayType:
    """Return the array type ``[count x ty]``."""
    return ArrayType(ty, count)


def parse_type(text: str) -> Type:
    """Parse a textual type such as ``i32``, ``f64*`` or ``[8 x f32]``.

    This is deliberately small: it covers the types the workload generator
    emits, which is all the parser needs.
    """
    text = text.strip()
    if text.endswith("*"):
        return PointerType(parse_type(text[:-1]))
    if text == "void":
        return VOID
    if text == "label":
        return LABEL
    if text.startswith("i"):
        return IntType(int(text[1:]))
    if text.startswith("f"):
        return FloatType(int(text[1:]))
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1]
        count_str, _, elem_str = inner.partition(" x ")
        return ArrayType(parse_type(elem_str), int(count_str))
    raise ValueError(f"cannot parse type {text!r}")
