"""Value hierarchy of the mini-IR.

Every operand of an instruction is a :class:`Value`: constants, function
arguments, global variables, basic blocks (as branch targets), functions
(as call targets) and instructions themselves (SSA results).
"""

from __future__ import annotations

from typing import Optional

from .types import BOOL, F64, I64, FloatType, IntType, PointerType, Type


class Value:
    """Base class for everything that can appear as an operand."""

    __slots__ = ("type", "name")

    def __init__(self, type: Type, name: str = ""):
        self.type = type
        self.name = name

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    def short(self) -> str:
        """Short printable reference used by the printer."""
        return f"%{self.name}" if self.name else "%<anon>"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.short()} : {self.type!r}>"


class Constant(Value):
    """Base class of constants."""

    __slots__ = ()


class ConstantInt(Constant):
    """Integer (or boolean) constant."""

    __slots__ = ("value",)

    def __init__(self, value: int, type: IntType = I64):
        if not isinstance(type, IntType):
            raise TypeError("ConstantInt requires an IntType")
        super().__init__(type, "")
        self.value = type.wrap(int(value))

    def short(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantInt)
            and other.value == self.value
            and other.type == self.type
        )

    def __hash__(self) -> int:
        return hash(("cint", self.value, self.type))


class ConstantFloat(Constant):
    """Floating-point constant."""

    __slots__ = ("value",)

    def __init__(self, value: float, type: FloatType = F64):
        if not isinstance(type, FloatType):
            raise TypeError("ConstantFloat requires a FloatType")
        super().__init__(type, "")
        self.value = float(value)

    def short(self) -> str:
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantFloat)
            and other.value == self.value
            and other.type == self.type
        )

    def __hash__(self) -> int:
        return hash(("cfloat", self.value, self.type))


class Undef(Constant):
    """An undefined value of a given type (result of removed computation)."""

    __slots__ = ()

    def __init__(self, type: Type):
        super().__init__(type, "")

    def short(self) -> str:
        return "undef"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Undef) and other.type == self.type

    def __hash__(self) -> int:
        return hash(("undef", self.type))


class Argument(Value):
    """Formal parameter of a function."""

    __slots__ = ("parent", "index", "attributes")

    def __init__(self, type: Type, name: str, index: int, parent=None):
        super().__init__(type, name)
        self.parent = parent
        self.index = index
        #: free-form attribute strings, e.g. {"noalias", "shared"}
        self.attributes: set[str] = set()

    def short(self) -> str:
        return f"%{self.name}"


class GlobalVariable(Value):
    """Module-level global variable.

    The value type is a pointer to ``value_type`` mirroring LLVM semantics
    (globals are addresses).
    """

    __slots__ = ("value_type", "initializer", "is_constant_global")

    def __init__(
        self,
        value_type: Type,
        name: str,
        initializer: Optional[Constant] = None,
        is_constant_global: bool = False,
    ):
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.is_constant_global = is_constant_global

    def short(self) -> str:
        return f"@{self.name}"


def const_int(value: int, type: IntType = I64) -> ConstantInt:
    """Convenience constructor for integer constants."""
    return ConstantInt(value, type)


def const_float(value: float, type: FloatType = F64) -> ConstantFloat:
    """Convenience constructor for float constants."""
    return ConstantFloat(value, type)


def const_bool(value: bool) -> ConstantInt:
    """Convenience constructor for boolean constants."""
    return ConstantInt(1 if value else 0, BOOL)
