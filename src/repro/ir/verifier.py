"""Structural verifier for the mini-IR.

The verifier enforces the invariants the passes and the graph builder rely
on; it is run after every pass in the test suite to catch miscompilations
early (the same role ``opt -verify`` plays in LLVM).
"""

from __future__ import annotations

from typing import List

from .block import BasicBlock
from .cfg import predecessors_map, reachable_blocks
from .dominators import DominatorTree
from .function import Function
from .instructions import Instruction, Phi
from .module import Module
from .values import Argument, Constant, GlobalVariable, Value


class VerificationError(Exception):
    """Raised when the IR violates a structural invariant."""

    def __init__(self, errors: List[str]):
        super().__init__("; ".join(errors))
        self.errors = errors


def verify_function(function: Function, strict_ssa: bool = True) -> List[str]:
    """Return the list of invariant violations for ``function``."""
    errors: List[str] = []
    if function.is_declaration:
        return errors
    if not function.blocks:
        errors.append(f"@{function.name}: defined function has no blocks")
        return errors

    # --- every block terminated, exactly one terminator, phis leading
    for block in function.blocks:
        if not block.is_terminated:
            errors.append(f"@{function.name}/{block.name}: block not terminated")
        seen_non_phi = False
        for i, inst in enumerate(block.instructions):
            if inst.parent is not block:
                errors.append(
                    f"@{function.name}/{block.name}: instruction {inst.opcode} has wrong parent"
                )
            if inst.is_terminator and i != len(block.instructions) - 1:
                errors.append(
                    f"@{function.name}/{block.name}: terminator {inst.opcode} not at block end"
                )
            if isinstance(inst, Phi):
                if seen_non_phi:
                    errors.append(
                        f"@{function.name}/{block.name}: phi after non-phi instruction"
                    )
            else:
                seen_non_phi = True

    # --- names: every non-void instruction has a unique name
    names: dict[str, Instruction] = {}
    for inst in function.instructions():
        if inst.type.is_void:
            continue
        if not inst.name:
            errors.append(f"@{function.name}: unnamed {inst.opcode} result")
            continue
        if inst.name in names:
            errors.append(f"@{function.name}: duplicate value name %{inst.name}")
        names[inst.name] = inst
    for arg in function.arguments:
        if arg.name in names:
            errors.append(f"@{function.name}: argument %{arg.name} shadows a value")

    # --- operand sanity: every operand is a known kind of value and, if an
    #     instruction, is defined within this function
    defined = set(function.instructions())
    blocks = set(function.blocks)
    for inst in function.instructions():
        for op in inst.operands:
            if isinstance(op, BasicBlock):
                if op not in blocks:
                    errors.append(
                        f"@{function.name}: {inst.opcode} references foreign block {op.name}"
                    )
            elif isinstance(op, Instruction):
                if op not in defined:
                    errors.append(
                        f"@{function.name}: {inst.opcode} uses value %{op.name} "
                        "not defined in this function"
                    )
            elif isinstance(op, Argument):
                if op not in function.arguments:
                    errors.append(
                        f"@{function.name}: {inst.opcode} uses foreign argument %{op.name}"
                    )
            elif isinstance(op, (Constant, GlobalVariable, Function)):
                pass
            elif isinstance(op, Value):
                errors.append(
                    f"@{function.name}: {inst.opcode} has unexpected operand kind {type(op).__name__}"
                )

    # --- phi incoming edges match predecessors
    preds = predecessors_map(function)
    reachable = reachable_blocks(function)
    for block in function.blocks:
        block_preds = set(preds.get(block, []))
        for phi in block.phis():
            incoming_blocks = set(phi.incoming_blocks)
            if len(phi.operands) != len(phi.incoming_blocks):
                errors.append(
                    f"@{function.name}/{block.name}: phi %{phi.name} has mismatched "
                    "values/blocks"
                )
            if block in reachable:
                missing = block_preds - incoming_blocks
                extra = incoming_blocks - block_preds
                if missing:
                    errors.append(
                        f"@{function.name}/{block.name}: phi %{phi.name} missing incoming "
                        f"for predecessors {[b.name for b in missing]}"
                    )
                if extra:
                    errors.append(
                        f"@{function.name}/{block.name}: phi %{phi.name} has incoming for "
                        f"non-predecessors {[b.name for b in extra]}"
                    )

    # --- SSA dominance: every use is dominated by its definition
    if strict_ssa and not errors:
        domtree = DominatorTree(function)
        def_block = {inst: inst.parent for inst in function.instructions()}
        for block in function.blocks:
            if block not in reachable:
                continue
            position = {inst: i for i, inst in enumerate(block.instructions)}
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    for value, incoming in inst.incoming():
                        if isinstance(value, Instruction):
                            vb = def_block.get(value)
                            if vb is None or incoming not in reachable:
                                continue
                            if not domtree.dominates(vb, incoming):
                                errors.append(
                                    f"@{function.name}/{block.name}: phi %{inst.name} incoming "
                                    f"%{value.name} does not dominate edge from {incoming.name}"
                                )
                    continue
                for op in inst.operands:
                    if isinstance(op, Instruction):
                        vb = def_block.get(op)
                        if vb is None:
                            continue
                        if vb is block:
                            if position.get(op, -1) >= position.get(inst, 0):
                                errors.append(
                                    f"@{function.name}/{block.name}: use of %{op.name} before "
                                    f"definition in {inst.opcode}"
                                )
                        elif not domtree.dominates(vb, block):
                            errors.append(
                                f"@{function.name}/{block.name}: %{op.name} used in {inst.opcode} "
                                "without dominating definition"
                            )
    return errors


def verify_module(module: Module, strict_ssa: bool = True) -> List[str]:
    """Return all invariant violations in ``module``."""
    errors: List[str] = []
    seen_names: set[str] = set()
    for fn in module.functions:
        if fn.name in seen_names:
            errors.append(f"duplicate function name @{fn.name}")
        seen_names.add(fn.name)
        errors.extend(verify_function(fn, strict_ssa=strict_ssa))
    return errors


def assert_valid(module_or_function, strict_ssa: bool = True) -> None:
    """Raise :class:`VerificationError` if the IR is invalid."""
    if isinstance(module_or_function, Module):
        errors = verify_module(module_or_function, strict_ssa=strict_ssa)
    else:
        errors = verify_function(module_or_function, strict_ssa=strict_ssa)
    if errors:
        raise VerificationError(errors)
