"""Classic-ML substrate: decision trees, GA feature selection, CV, scaling."""

from .crossval import (
    fold_of_groups,
    grouped_kfold,
    kfold_indices,
    train_validation_split,
)
from .decision_tree import DecisionTreeClassifier
from .feature_selection import (
    FeatureSelectionResult,
    ReducedTreeClassifier,
    select_features_ga,
)
from .genetic import GAConfig, SubsetGeneticAlgorithm
from .scaling import MinMaxScaler, StandardScaler

__all__ = [
    "fold_of_groups",
    "grouped_kfold",
    "kfold_indices",
    "train_validation_split",
    "DecisionTreeClassifier",
    "FeatureSelectionResult",
    "ReducedTreeClassifier",
    "select_features_ga",
    "GAConfig",
    "SubsetGeneticAlgorithm",
    "MinMaxScaler",
    "StandardScaler",
]
