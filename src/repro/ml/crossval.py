"""Cross-validation utilities.

The paper evaluates every model with 10-fold cross validation over the 57
regions: folds partition *regions*, and all augmented variants of a region
stay in the same fold (otherwise the model would see near-duplicates of the
validation programs during training).  ``grouped_kfold`` implements exactly
that contract.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np


def kfold_indices(
    num_samples: int, folds: int, seed: int = 0, shuffle: bool = True
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (train_indices, test_indices) pairs for plain k-fold CV."""
    if folds < 2:
        raise ValueError("folds must be >= 2")
    indices = np.arange(num_samples)
    if shuffle:
        rng = np.random.default_rng(seed)
        rng.shuffle(indices)
    splits = np.array_split(indices, folds)
    for i in range(folds):
        test = splits[i]
        train = np.concatenate([splits[j] for j in range(folds) if j != i]) if folds > 1 else test
        yield train, test


def grouped_kfold(
    groups: Sequence[str], folds: int = 10, seed: int = 0
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """K-fold CV where all samples of a group land in the same fold.

    ``groups`` gives the group key of every sample (here: the region name).
    Returns a list of (train_indices, test_indices) pairs over *samples*.
    """
    if folds < 2:
        raise ValueError("folds must be >= 2")
    group_names = sorted(set(groups))
    if len(group_names) < folds:
        folds = max(2, len(group_names))
    rng = np.random.default_rng(seed)
    shuffled = list(group_names)
    rng.shuffle(shuffled)
    fold_of_group: Dict[str, int] = {
        name: i % folds for i, name in enumerate(shuffled)
    }
    sample_folds = np.array([fold_of_group[g] for g in groups])
    result: List[Tuple[np.ndarray, np.ndarray]] = []
    for fold in range(folds):
        test = np.where(sample_folds == fold)[0]
        train = np.where(sample_folds != fold)[0]
        if test.size == 0:
            continue
        result.append((train, test))
    return result


def fold_of_groups(groups: Sequence[str], folds: int = 10, seed: int = 0) -> Dict[str, int]:
    """Map each group name to its fold index (consistent with grouped_kfold)."""
    group_names = sorted(set(groups))
    if len(group_names) < folds:
        folds = max(2, len(group_names))
    rng = np.random.default_rng(seed)
    shuffled = list(group_names)
    rng.shuffle(shuffled)
    return {name: i % folds for i, name in enumerate(shuffled)}


def train_validation_split(
    num_samples: int, validation_fraction: float = 0.2, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Single random split into train and validation index arrays."""
    if not 0.0 < validation_fraction < 1.0:
        raise ValueError("validation_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    indices = np.arange(num_samples)
    rng.shuffle(indices)
    cut = max(1, int(round(num_samples * validation_fraction)))
    return indices[cut:], indices[:cut]
