"""CART decision-tree classifier (NumPy).

A from-scratch replacement for scikit-learn's
``DecisionTreeClassifier(criterion="gini")`` with default parameters, which
is what the paper uses for the hybrid (static-vs-dynamic) classifier, the
flag-prediction model and the dynamic performance-counter baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class _TreeNode:
    """One node of a fitted tree."""

    prediction: int
    probabilities: np.ndarray
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    # ------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        data: dict = {
            "prediction": int(self.prediction),
            "probabilities": [float(p) for p in self.probabilities],
        }
        if not self.is_leaf:
            data["feature"] = int(self.feature)
            data["threshold"] = float(self.threshold)
            data["left"] = self.left.to_dict()
            data["right"] = self.right.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "_TreeNode":
        node = cls(
            prediction=int(data["prediction"]),
            probabilities=np.asarray(data["probabilities"], dtype=np.float64),
        )
        if "left" in data:
            node.feature = int(data["feature"])
            node.threshold = float(data["threshold"])
            node.left = cls.from_dict(data["left"])
            node.right = cls.from_dict(data["right"])
        return node


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p * p).sum())


class DecisionTreeClassifier:
    """Binary-split CART classifier with the gini criterion.

    Parameters mirror scikit-learn's defaults: grow until leaves are pure or
    below ``min_samples_split`` samples, no depth limit unless requested.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        random_state: int = 0,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._root: Optional[_TreeNode] = None
        self._num_classes = 0

    # ------------------------------------------------------------------ fit
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTreeClassifier":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D (samples, features)")
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must have the same length")
        if features.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._num_classes = int(labels.max()) + 1 if labels.size else 1
        rng = np.random.default_rng(self.random_state)
        self._root = self._build(features, labels, depth=0, rng=rng)
        return self

    def _build(
        self, features: np.ndarray, labels: np.ndarray, depth: int, rng: np.random.Generator
    ) -> _TreeNode:
        counts = np.bincount(labels, minlength=self._num_classes)
        node = _TreeNode(
            prediction=int(counts.argmax()),
            probabilities=counts / max(1, counts.sum()),
        )
        if (
            labels.size < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or counts.max() == labels.size
        ):
            return node
        split = self._best_split(features, labels, counts, rng)
        if split is None:
            return node
        feature, threshold = split
        mask = features[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(features[mask], labels[mask], depth + 1, rng)
        node.right = self._build(features[~mask], labels[~mask], depth + 1, rng)
        return node

    def _best_split(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        parent_counts: np.ndarray,
        rng: np.random.Generator,
    ) -> Optional[Tuple[int, float]]:
        n_samples, n_features = features.shape
        parent_gini = _gini(parent_counts)
        best_gain = 1e-12
        best: Optional[Tuple[int, float]] = None
        feature_indices = np.arange(n_features)
        if self.max_features is not None and self.max_features < n_features:
            feature_indices = rng.choice(n_features, size=self.max_features, replace=False)
        for feature in feature_indices:
            column = features[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_values = column[order]
            sorted_labels = labels[order]
            left_counts = np.zeros(self._num_classes)
            right_counts = parent_counts.astype(np.float64).copy()
            for i in range(n_samples - 1):
                cls = sorted_labels[i]
                left_counts[cls] += 1
                right_counts[cls] -= 1
                if sorted_values[i] == sorted_values[i + 1]:
                    continue
                n_left = i + 1
                n_right = n_samples - n_left
                gain = parent_gini - (
                    n_left / n_samples * _gini(left_counts)
                    + n_right / n_samples * _gini(right_counts)
                )
                if gain > best_gain:
                    best_gain = gain
                    threshold = (sorted_values[i] + sorted_values[i + 1]) / 2.0
                    best = (int(feature), float(threshold))
        return best

    # -------------------------------------------------------------- predict
    def _leaf_for(self, row: np.ndarray) -> _TreeNode:
        if self._root is None:
            raise RuntimeError("predict called before fit")
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right  # type: ignore[assignment]
        return node

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[None, :]
        return np.array([self._leaf_for(row).prediction for row in features], dtype=np.int64)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[None, :]
        return np.stack([self._leaf_for(row).probabilities for row in features])

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        predictions = self.predict(features)
        labels = np.asarray(labels, dtype=np.int64)
        return float((predictions == labels).mean()) if labels.size else 0.0

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        """JSON-serialisable snapshot of the fitted tree (for registries)."""
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "random_state": self.random_state,
            "num_classes": self._num_classes,
            "root": None if self._root is None else self._root.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionTreeClassifier":
        tree = cls(
            max_depth=data.get("max_depth"),
            min_samples_split=data.get("min_samples_split", 2),
            min_samples_leaf=data.get("min_samples_leaf", 1),
            max_features=data.get("max_features"),
            random_state=data.get("random_state", 0),
        )
        tree._num_classes = int(data.get("num_classes", 0))
        root = data.get("root")
        tree._root = None if root is None else _TreeNode.from_dict(root)
        return tree

    # --------------------------------------------------------------- inspect
    def depth(self) -> int:
        def walk(node: Optional[_TreeNode]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def node_count(self) -> int:
        def walk(node: Optional[_TreeNode]) -> int:
            if node is None:
                return 0
            return 1 + walk(node.left) + walk(node.right)

        return walk(self._root)

    def feature_importances(self, num_features: int) -> np.ndarray:
        """Split-count based importances (normalised)."""
        importances = np.zeros(num_features)

        def walk(node: Optional[_TreeNode]) -> None:
            if node is None or node.is_leaf:
                return
            importances[node.feature] += 1.0
            walk(node.left)
            walk(node.right)

        walk(self._root)
        total = importances.sum()
        return importances / total if total > 0 else importances
