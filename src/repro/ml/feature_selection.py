"""GA-driven feature selection for decision trees on GNN vectors.

Combines :class:`SubsetGeneticAlgorithm` with
:class:`DecisionTreeClassifier`: candidate subsets of vector dimensions are
scored by the cross-validated accuracy of a decision tree restricted to
those dimensions, exactly the procedure the paper describes for the hybrid
and flag-prediction models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .crossval import kfold_indices
from .decision_tree import DecisionTreeClassifier
from .genetic import GAConfig, SubsetGeneticAlgorithm


@dataclass
class FeatureSelectionResult:
    """Outcome of the GA feature search."""

    selected: Tuple[int, ...]
    fitness: float
    evaluations: int


def _subset_cv_accuracy(
    features: np.ndarray,
    labels: np.ndarray,
    subset: Tuple[int, ...],
    folds: int,
    seed: int,
) -> float:
    reduced = features[:, list(subset)]
    if labels.size < folds or len(np.unique(labels)) < 2:
        tree = DecisionTreeClassifier(random_state=seed)
        tree.fit(reduced, labels)
        return tree.score(reduced, labels)
    accuracies = []
    for train_idx, test_idx in kfold_indices(labels.size, folds, seed=seed):
        if len(np.unique(labels[train_idx])) < 1 or test_idx.size == 0:
            continue
        tree = DecisionTreeClassifier(random_state=seed)
        tree.fit(reduced[train_idx], labels[train_idx])
        accuracies.append(tree.score(reduced[test_idx], labels[test_idx]))
    return float(np.mean(accuracies)) if accuracies else 0.0


def select_features_ga(
    features: np.ndarray,
    labels: np.ndarray,
    subset_size: int = 10,
    folds: int = 3,
    ga_config: Optional[GAConfig] = None,
    seed: int = 0,
) -> FeatureSelectionResult:
    """Run the GA feature search; returns the best dimension subset.

    The defaults follow the paper (10-element subsets) but the GA budget is
    left to the caller: the experiment drivers use a reduced population for
    tractability while the ablation benchmark can dial it back up.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if features.ndim != 2:
        raise ValueError("features must be 2-D")
    num_dims = features.shape[1]
    subset_size = min(subset_size, num_dims)
    config = ga_config or GAConfig(population_size=60, generations=10, seed=seed)

    def fitness(subset: Tuple[int, ...]) -> float:
        return _subset_cv_accuracy(features, labels, subset, folds, seed)

    ga = SubsetGeneticAlgorithm(num_dims, subset_size, fitness, config)
    best_subset, best_fitness = ga.run()
    return FeatureSelectionResult(
        selected=tuple(int(i) for i in best_subset),
        fitness=float(best_fitness),
        evaluations=ga.evaluations,
    )


class ReducedTreeClassifier:
    """Decision tree operating on a fixed subset of input dimensions.

    This is the deployable artefact of GA feature selection: it stores the
    selected dimensions and applies them transparently on ``predict``.
    """

    def __init__(self, selected: Tuple[int, ...], random_state: int = 0):
        self.selected = tuple(selected)
        self.tree = DecisionTreeClassifier(random_state=random_state)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "ReducedTreeClassifier":
        self.tree.fit(np.asarray(features)[:, list(self.selected)], labels)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.tree.predict(np.asarray(features)[:, list(self.selected)])

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return self.tree.predict_proba(np.asarray(features)[:, list(self.selected)])

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        return self.tree.score(np.asarray(features)[:, list(self.selected)], labels)

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        return {"selected": list(self.selected), "tree": self.tree.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "ReducedTreeClassifier":
        classifier = cls(tuple(int(i) for i in data["selected"]))
        classifier.tree = DecisionTreeClassifier.from_dict(data["tree"])
        return classifier
