"""Genetic algorithm for subset selection (pyeasyga replacement).

The paper uses a GA (population 500, crossover 0.8, mutation 0.1) to select
10-element subsets of the 256-dimensional GNN vectors before feeding them to
a decision tree.  This module implements exactly that search: individuals
are fixed-size index subsets, fitness is supplied by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class GAConfig:
    """Genetic-algorithm hyper-parameters (paper defaults)."""

    population_size: int = 500
    generations: int = 20
    crossover_probability: float = 0.8
    mutation_probability: float = 0.1
    elitism: int = 2
    tournament_size: int = 3
    seed: int = 0


class SubsetGeneticAlgorithm:
    """Searches for the fixed-size index subset maximising a fitness function.

    Parameters
    ----------
    num_items:
        Size of the universe (e.g. 256 vector dimensions).
    subset_size:
        Number of indices per individual (10 in the paper).
    fitness:
        Callable mapping a sorted tuple of indices to a float score (higher
        is better).  Results are memoised, so expensive fitness functions
        (training a decision tree per candidate) are evaluated once per
        distinct subset.
    """

    def __init__(
        self,
        num_items: int,
        subset_size: int,
        fitness: Callable[[Tuple[int, ...]], float],
        config: Optional[GAConfig] = None,
    ):
        if subset_size > num_items:
            raise ValueError("subset_size cannot exceed num_items")
        self.num_items = num_items
        self.subset_size = subset_size
        self.fitness = fitness
        self.config = config or GAConfig()
        self._cache: dict[Tuple[int, ...], float] = {}

    # ------------------------------------------------------------------ run
    def run(self) -> Tuple[Tuple[int, ...], float]:
        """Run the GA; return (best subset, best fitness)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        population = [self._random_individual(rng) for _ in range(cfg.population_size)]
        best_individual = population[0]
        best_fitness = self._evaluate(best_individual)

        for _generation in range(cfg.generations):
            scored = [(self._evaluate(ind), ind) for ind in population]
            scored.sort(key=lambda pair: pair[0], reverse=True)
            if scored[0][0] > best_fitness:
                best_fitness, best_individual = scored[0]
            next_population: List[Tuple[int, ...]] = [
                ind for _, ind in scored[: cfg.elitism]
            ]
            while len(next_population) < cfg.population_size:
                parent_a = self._tournament(scored, rng)
                parent_b = self._tournament(scored, rng)
                if rng.random() < cfg.crossover_probability:
                    child = self._crossover(parent_a, parent_b, rng)
                else:
                    child = parent_a
                if rng.random() < cfg.mutation_probability:
                    child = self._mutate(child, rng)
                next_population.append(child)
            population = next_population

        # Final evaluation pass.
        for individual in population:
            score = self._evaluate(individual)
            if score > best_fitness:
                best_fitness, best_individual = score, individual
        return best_individual, best_fitness

    # ------------------------------------------------------------ operators
    def _random_individual(self, rng: np.random.Generator) -> Tuple[int, ...]:
        return tuple(sorted(rng.choice(self.num_items, size=self.subset_size, replace=False)))

    def _evaluate(self, individual: Tuple[int, ...]) -> float:
        cached = self._cache.get(individual)
        if cached is None:
            cached = float(self.fitness(individual))
            self._cache[individual] = cached
        return cached

    def _tournament(
        self, scored: Sequence[Tuple[float, Tuple[int, ...]]], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        indices = rng.integers(0, len(scored), size=self.config.tournament_size)
        best = max(indices, key=lambda i: scored[i][0])
        return scored[best][1]

    def _crossover(
        self, parent_a: Tuple[int, ...], parent_b: Tuple[int, ...], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        pool = list(dict.fromkeys(list(parent_a) + list(parent_b)))
        if len(pool) < self.subset_size:
            extras = [i for i in range(self.num_items) if i not in pool]
            rng.shuffle(extras)
            pool.extend(extras[: self.subset_size - len(pool)])
        chosen = rng.choice(len(pool), size=self.subset_size, replace=False)
        return tuple(sorted(pool[i] for i in chosen))

    def _mutate(self, individual: Tuple[int, ...], rng: np.random.Generator) -> Tuple[int, ...]:
        as_list = list(individual)
        position = int(rng.integers(0, len(as_list)))
        candidates = [i for i in range(self.num_items) if i not in individual]
        if not candidates:
            return individual
        as_list[position] = int(rng.choice(candidates))
        return tuple(sorted(as_list))

    @property
    def evaluations(self) -> int:
        """Number of distinct fitness evaluations performed."""
        return len(self._cache)
