"""Feature scaling helpers."""

from __future__ import annotations

from typing import Optional

import numpy as np


class StandardScaler:
    """Zero-mean / unit-variance feature scaling (fit on train, apply to all)."""

    def __init__(self):
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        features = np.asarray(features, dtype=np.float64)
        self.mean_ = features.mean(axis=0)
        std = features.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("transform called before fit")
        return (np.asarray(features, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)


class MinMaxScaler:
    """Scale features to [0, 1] based on the training range."""

    def __init__(self):
        self.min_: Optional[np.ndarray] = None
        self.range_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "MinMaxScaler":
        features = np.asarray(features, dtype=np.float64)
        self.min_ = features.min(axis=0)
        value_range = features.max(axis=0) - self.min_
        value_range[value_range == 0.0] = 1.0
        self.range_ = value_range
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("transform called before fit")
        return (np.asarray(features, dtype=np.float64) - self.min_) / self.range_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)
