"""NUMA + hardware-prefetcher machine simulator.

This subpackage substitutes for the paper's physical Sandy Bridge and
Skylake testbeds: it provides machine topologies, the 288/320-point
configuration space (threads, nodes, thread mapping, page mapping, 16
prefetcher settings), and an analytical timing model that produces execution
times and performance counters for a workload profile.
"""

from .configuration import (
    Configuration,
    build_configuration_space,
    build_numa_points,
    configuration_distance,
    default_configuration,
    space_summary,
    translate_configuration,
)
from .counters import COUNTER_NAMES, PerformanceCounters, SimulationResult
from .engine import EngineConfig, NumaPrefetchSimulator, simulate
from .machines import MACHINES, machine_by_name, sandy_bridge, skylake, skylake_gold
from .mapping import (
    PAGE_MAPPINGS,
    THREAD_MAPPINGS,
    PageMapping,
    Placement,
    ThreadMapping,
    compute_placement,
    map_threads,
)
from .prefetchers import (
    PrefetchEffect,
    PrefetcherSetting,
    all_prefetcher_settings,
    prefetcher_effect,
    prefetcher_setting_table,
)
from .profile import WorkloadProfile
from .topology import CacheLevel, MachineTopology, standard_cache_hierarchy

__all__ = [
    "Configuration",
    "build_configuration_space",
    "build_numa_points",
    "configuration_distance",
    "default_configuration",
    "space_summary",
    "translate_configuration",
    "COUNTER_NAMES",
    "PerformanceCounters",
    "SimulationResult",
    "EngineConfig",
    "NumaPrefetchSimulator",
    "simulate",
    "MACHINES",
    "machine_by_name",
    "sandy_bridge",
    "skylake",
    "skylake_gold",
    "PAGE_MAPPINGS",
    "THREAD_MAPPINGS",
    "PageMapping",
    "Placement",
    "ThreadMapping",
    "compute_placement",
    "map_threads",
    "PrefetchEffect",
    "PrefetcherSetting",
    "all_prefetcher_settings",
    "prefetcher_effect",
    "prefetcher_setting_table",
    "WorkloadProfile",
    "CacheLevel",
    "MachineTopology",
    "standard_cache_hierarchy",
]
