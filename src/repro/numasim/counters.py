"""Performance counters produced by the simulator.

The dynamic baseline of the paper (Sánchez Barrera et al.) trains on a small
set of hardware counters — most importantly the package power and the L3
miss ratio.  The simulator produces those plus a few more so the dynamic
model has the same kind of information a real profiler would provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

#: canonical ordering of counter features used by the dynamic model
COUNTER_NAMES = (
    "package_power_w",
    "l3_miss_ratio",
    "l2_miss_ratio",
    "l1_miss_ratio",
    "dram_bandwidth_gbs",
    "remote_access_ratio",
    "bandwidth_utilization",
    "ipc",
    "stall_fraction",
    "prefetch_traffic_ratio",
)


@dataclass
class PerformanceCounters:
    """One configuration's worth of simulated hardware counters."""

    package_power_w: float = 0.0
    l3_miss_ratio: float = 0.0
    l2_miss_ratio: float = 0.0
    l1_miss_ratio: float = 0.0
    dram_bandwidth_gbs: float = 0.0
    remote_access_ratio: float = 0.0
    bandwidth_utilization: float = 0.0
    ipc: float = 0.0
    stall_fraction: float = 0.0
    prefetch_traffic_ratio: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {name: float(getattr(self, name)) for name in COUNTER_NAMES}

    def as_vector(self) -> np.ndarray:
        """Counters as a feature vector in :data:`COUNTER_NAMES` order."""
        return np.array([getattr(self, name) for name in COUNTER_NAMES], dtype=np.float64)

    @staticmethod
    def feature_names() -> List[str]:
        return list(COUNTER_NAMES)

    @staticmethod
    def from_vector(vector: np.ndarray) -> "PerformanceCounters":
        values = dict(zip(COUNTER_NAMES, np.asarray(vector, dtype=np.float64)))
        return PerformanceCounters(**values)


@dataclass
class SimulationResult:
    """Outcome of simulating one region under one configuration."""

    time_seconds: float
    counters: PerformanceCounters
    per_call_times: List[float] = field(default_factory=list)
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def time_ms(self) -> float:
        return self.time_seconds * 1e3

    def speedup_against(self, baseline: "SimulationResult") -> float:
        """Speedup of this result relative to ``baseline``."""
        if self.time_seconds <= 0:
            return 0.0
        return baseline.time_seconds / self.time_seconds
