"""Analytical timing model for NUMA + prefetcher configurations.

The model is a roofline-style composition of four components:

1. **Compute**: FLOPs over the effective issue rate (reduced by dependency
   chains and branch mispredictions).
2. **Latency**: demand misses that reach DRAM pay local or remote latency
   depending on the page placement; hardware prefetchers hide a
   pattern-dependent fraction of that latency; memory-level parallelism
   overlaps part of the rest.
3. **Bandwidth**: demand plus prefetch traffic is spread over the memory
   nodes according to the page placement; the most loaded node and the
   cross-node interconnect bound the streaming throughput.
4. **Synchronisation / serial**: Amdahl serial fraction, barriers, atomics,
   critical sections and load imbalance.

None of the constants claims cycle accuracy — the goal is that the *relative
ordering* of configurations responds to workload characteristics the way it
does on real machines: bandwidth-bound streams want many nodes, interleaved
pages and prefetchers on; latency-bound irregular kernels want locality and
prefetchers off; synchronisation-heavy kernels want fewer threads; and a
serial first-touch initialisation makes ``first_touch`` placement a trap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from .configuration import Configuration
from .counters import PerformanceCounters, SimulationResult
from .mapping import compute_placement
from .prefetchers import prefetcher_effect
from .profile import WorkloadProfile
from .topology import MachineTopology

#: fixed cost (microseconds) of one OpenMP barrier, plus a per-thread term.
BARRIER_BASE_US = 1.5
BARRIER_PER_LOG_THREAD_US = 0.9
#: per-thread fork/join + loop-scheduling overhead per region call (microseconds).
SCHEDULING_US_PER_THREAD = 0.6
#: cost of one uncontended atomic operation (nanoseconds).
ATOMIC_BASE_NS = 18.0
#: additional cost per extra sharer of a contended atomic line (nanoseconds).
ATOMIC_CONTENTION_NS = 9.0
#: cache line (false) sharing penalty per iteration per extra sharer (ns).
FALSE_SHARING_NS = 2.5


@dataclass
class EngineConfig:
    """Simulator knobs."""

    measurement_noise: float = 0.0      # lognormal sigma on the final time
    default_calls: Optional[int] = None  # override profile.calls when set
    seed: int = 1234


class NumaPrefetchSimulator:
    """Simulates one region under one configuration on one machine."""

    def __init__(self, machine: MachineTopology, config: Optional[EngineConfig] = None):
        self.machine = machine
        self.engine_config = config or EngineConfig()

    # ------------------------------------------------------------------ API
    def simulate(
        self,
        profile: WorkloadProfile,
        configuration: Configuration,
        rng: Optional[np.random.Generator] = None,
    ) -> SimulationResult:
        """Simulate ``profile`` under ``configuration``; returns the result."""
        calls = self.engine_config.default_calls or profile.calls
        base_time, counters, breakdown = self._single_call_time(profile, configuration)

        per_call: List[float] = []
        noise = self.engine_config.measurement_noise
        local_rng = rng or np.random.default_rng(
            (hash((profile.name, configuration.key, self.machine.name)) ^ self.engine_config.seed)
            & 0x7FFFFFFF
        )
        for call_index in range(calls):
            call_time = base_time * self._phase_factor(profile, configuration, call_index)
            if noise > 0.0:
                call_time *= float(np.exp(local_rng.normal(0.0, noise)))
            per_call.append(call_time)
        total = float(np.sum(per_call))
        return SimulationResult(
            time_seconds=total,
            counters=counters,
            per_call_times=per_call,
            breakdown=breakdown,
        )

    def simulate_space(
        self,
        profile: WorkloadProfile,
        configurations: Iterable[Configuration],
    ) -> Dict[Configuration, SimulationResult]:
        """Simulate the region across a whole configuration space."""
        return {cfg: self.simulate(profile, cfg) for cfg in configurations}

    # ------------------------------------------------------------- internals
    def _phase_factor(
        self, profile: WorkloadProfile, configuration: Configuration, call_index: int
    ) -> float:
        """Per-call behaviour drift (Figure 12).

        Regions with ``phase_variability`` > 0 alternate between a fast and a
        slow phase; the slow phase is more memory-bound and therefore suffers
        more when prefetchers are disabled or threads are packed.
        """
        v = profile.phase_variability
        if v <= 0.0:
            return 1.0
        phase = math.sin(2.0 * math.pi * (call_index / max(2.0, profile.calls / 2.0)))
        swing = 0.5 * v * (1.0 + phase)
        # Slow phases get slower when fewer prefetchers are enabled.
        prefetch_relief = 0.15 * configuration.prefetchers.enabled_count / 4.0
        return 1.0 + swing * (1.0 - prefetch_relief)

    def _single_call_time(
        self, profile: WorkloadProfile, configuration: Configuration
    ):
        machine = self.machine
        nodes = min(configuration.nodes, machine.num_nodes)
        threads = min(configuration.threads, nodes * machine.cores_per_node)
        threads = max(1, threads)
        if profile.scalability_limit is not None:
            effective_threads = min(threads, profile.scalability_limit)
        else:
            effective_threads = threads

        placement = compute_placement(
            threads=threads,
            nodes=nodes,
            cores_per_node=machine.cores_per_node,
            thread_mapping=configuration.thread_mapping,
            page_mapping=configuration.page_mapping,
            shared_fraction=profile.shared_fraction,
            init_by_master=profile.init_by_master,
            locality_quality=1.0 - 0.85 * profile.irregular_fraction,
        )
        effect = prefetcher_effect(
            configuration.prefetchers,
            profile.sequential_fraction,
            profile.strided_fraction,
            profile.irregular_fraction,
            profile.branch_regularity,
        )

        # ----------------------------------------------------------- compute
        iterations_per_thread = profile.iterations / effective_threads
        critical_path_iterations = iterations_per_thread * profile.load_imbalance
        flops = critical_path_iterations * profile.flops_per_iter
        issue_efficiency = (
            (0.35 + 0.65 * (1.0 - profile.dependency_chain))
            * (0.7 + 0.3 * profile.branch_regularity)
        )
        peak_flops_per_core = machine.frequency_ghz * 1e9 * machine.flops_per_cycle
        compute_time = flops / (peak_flops_per_core * issue_efficiency)

        # ------------------------------------------------------------ caches
        miss_ratios = self._miss_ratios(profile, placement, effect)
        line_bytes = machine.l1.line_bytes

        accesses_per_iter = max(1.0, profile.bytes_per_iter / 8.0)
        accesses = critical_path_iterations * accesses_per_iter
        dram_lines_per_thread = (
            critical_path_iterations * profile.bytes_per_iter * miss_ratios["to_dram"] / line_bytes
        )

        # --------------------------------------------------------- bandwidth
        write_factor = 1.0 + profile.write_ratio  # write-allocate + writeback
        demand_bytes_total = (
            profile.iterations
            * profile.bytes_per_iter
            * miss_ratios["to_dram"]
            * write_factor
        )
        traffic_bytes_total = demand_bytes_total * effect.bandwidth_overhead
        node_shares = np.asarray(placement.node_traffic_share[: machine.num_nodes])
        if node_shares.size == 0:
            node_shares = np.array([1.0])
        hottest_share = float(node_shares.max())
        hottest_node_bytes = traffic_bytes_total * hottest_share
        bandwidth_time = hottest_node_bytes / (machine.node_bandwidth_gbs * 1e9)
        local_fraction = placement.local_fraction
        remote_bytes = traffic_bytes_total * (1.0 - local_fraction)
        links = max(1, placement.active_nodes)
        interconnect_time = remote_bytes / (machine.interconnect_bandwidth_gbs * 1e9 * links)
        bandwidth_time = max(bandwidth_time, interconnect_time)

        # ----------------------------------------------------------- latency
        effective_latency_ns = (
            machine.dram_latency_ns * local_fraction
            + machine.remote_latency_ns * (1.0 - local_fraction)
        )
        # Memory-level parallelism: streams expose many outstanding misses,
        # pointer chases almost none.
        mlp = 1.5 + 8.5 * (profile.sequential_fraction + 0.6 * profile.strided_fraction)
        mlp *= 0.5 + 0.5 * (1.0 - profile.dependency_chain)
        mlp = max(1.0, mlp)
        uncovered = max(0.05, 1.0 - effect.latency_coverage)
        # Queueing delay at the memory controllers: when the configuration
        # pushes the hottest node close to its bandwidth limit, every miss
        # waits longer.  This is the mechanism that makes prefetcher overshoot
        # and thread over-subscription actively harmful rather than neutral.
        raw_latency_time = dram_lines_per_thread * effective_latency_ns * 1e-9 * uncovered / mlp
        demand_period = max(compute_time + raw_latency_time, 1e-9)
        utilization_estimate = min(0.95, bandwidth_time / demand_period)
        queueing_factor = 1.0 / (1.0 - 0.85 * utilization_estimate)
        latency_time = raw_latency_time * queueing_factor

        # ------------------------------------------------ synchronisation etc.
        barrier_time = (
            profile.barriers_per_call
            * (BARRIER_BASE_US + BARRIER_PER_LOG_THREAD_US * math.log2(max(2, threads)))
            * 1e-6
        )
        scheduling_time = SCHEDULING_US_PER_THREAD * threads * 1e-6
        # Contended atomics serialise through the owning cache line: the cost
        # is paid on the *total* number of atomic operations and grows with
        # the number of sharers (line ping-pong).
        sharers = max(1.0, threads * profile.shared_fraction)
        total_atomics = profile.atomics_per_iter * profile.iterations
        if total_atomics > 0:
            # Atomics on shared lines serialise and get slower as more threads
            # bounce the line; atomics on private data scale with the threads.
            shared_atomics = total_atomics * profile.shared_fraction
            private_atomics = total_atomics - shared_atomics
            atomic_time = (
                shared_atomics * (ATOMIC_BASE_NS + ATOMIC_CONTENTION_NS * (sharers - 1.0))
                + private_atomics * ATOMIC_BASE_NS / effective_threads
            ) * 1e-9
        else:
            atomic_time = 0.0
        if threads > 1 and profile.false_sharing > 0.0:
            # Each falsely-shared store forces a line transfer from another
            # core; transfers that cross the socket boundary are far more
            # expensive, so false sharing primarily punishes multi-node runs.
            sharers_on_line = min(threads - 1, 7)
            cross_node_fraction = (
                (placement.active_nodes - 1) / placement.active_nodes
                if placement.active_nodes > 1
                else 0.0
            )
            transfer_ns = FALSE_SHARING_NS * (1.0 + 5.0 * cross_node_fraction)
            false_sharing_time = (
                profile.false_sharing
                * iterations_per_thread
                * transfer_ns
                * sharers_on_line
                * 1e-9
            )
        else:
            false_sharing_time = 0.0
        parallel_core_time = compute_time + latency_time + atomic_time + false_sharing_time
        parallel_time = max(parallel_core_time, bandwidth_time) + barrier_time + scheduling_time
        critical_time = profile.critical_fraction * parallel_core_time * (threads - 1)

        single_thread_work = (
            profile.iterations
            * profile.flops_per_iter
            / (peak_flops_per_core * issue_efficiency)
        )
        serial_time = profile.serial_fraction * single_thread_work

        total_time = serial_time + parallel_time + critical_time
        total_time = max(total_time, 1e-7)

        # ----------------------------------------------------------- counters
        dram_bandwidth_gbs = traffic_bytes_total / total_time / 1e9
        utilization = dram_bandwidth_gbs / (
            machine.node_bandwidth_gbs * max(1, placement.memory_nodes)
        )
        instructions = profile.iterations * (
            profile.flops_per_iter + accesses_per_iter + 2.0
        )
        cycles = total_time * machine.frequency_ghz * 1e9 * threads
        ipc = instructions / max(1.0, cycles)
        active_cores = threads
        power = (
            machine.base_power_w * max(1, placement.active_nodes) / machine.num_nodes
            + machine.core_power_w * active_cores
            + machine.dram_power_per_gbs_w * dram_bandwidth_gbs
        )
        stall_fraction = min(
            0.99, (latency_time + max(0.0, bandwidth_time - compute_time)) / total_time
        )
        counters = PerformanceCounters(
            package_power_w=float(power),
            l3_miss_ratio=float(miss_ratios["l3"]),
            l2_miss_ratio=float(miss_ratios["l2"]),
            l1_miss_ratio=float(miss_ratios["l1"]),
            dram_bandwidth_gbs=float(dram_bandwidth_gbs),
            remote_access_ratio=float(1.0 - local_fraction),
            bandwidth_utilization=float(min(1.5, utilization)),
            ipc=float(min(8.0, ipc)),
            stall_fraction=float(stall_fraction),
            prefetch_traffic_ratio=float(effect.bandwidth_overhead - 1.0),
        )
        breakdown = {
            "compute": compute_time,
            "latency": latency_time,
            "bandwidth": bandwidth_time,
            "barrier": barrier_time,
            "atomic": atomic_time,
            "false_sharing": false_sharing_time,
            "serial": serial_time,
            "critical": critical_time,
        }
        return total_time, counters, breakdown

    # ------------------------------------------------------------------
    def _miss_ratios(self, profile: WorkloadProfile, placement, effect) -> Dict[str, float]:
        """Approximate miss ratios at each level plus the DRAM-bound fraction
        of demand bytes."""
        machine = self.machine
        streaming = profile.sequential_fraction + profile.strided_fraction
        irregular = profile.irregular_fraction
        resident = profile.cache_resident_fraction

        # Effective cache capacity per thread: private L1/L2 plus an L3 share
        # that shrinks as more threads are packed per node.
        threads_per_node = max(1, max(placement.threads_per_node))
        l3_share_kb = machine.l3.size_kb / threads_per_node
        working_set_kb = max(1.0, profile.working_set_kb)

        def fit(capacity_kb: float) -> float:
            return min(1.0, capacity_kb / working_set_kb)

        line_elems = machine.l1.line_bytes / 8.0
        # Streaming data misses once per line regardless of capacity; strided
        # accesses may skip lines (approximated the same way).
        streaming_l1_miss = 1.0 / line_elems
        irregular_l1_miss = 1.0 - fit(machine.l1.size_kb)
        l1_miss = (
            streaming * streaming_l1_miss
            + irregular * irregular_l1_miss
            + resident * 0.01
        )
        l1_miss = min(1.0, l1_miss + effect.pollution * 0.2)

        l2_survive = 1.0 - fit(machine.l2.size_kb) * 0.6
        l3_survive = 1.0 - fit(l3_share_kb) * 0.8
        # Footprints far larger than the LLC defeat any reuse.
        footprint_factor = min(
            1.0, profile.footprint_mb * 1024.0 / max(1.0, machine.l3.size_kb)
        )
        l3_survive = max(l3_survive, footprint_factor * streaming * 0.9)

        l2_miss = min(1.0, l1_miss * max(0.05, l2_survive) / max(l1_miss, 1e-9)) if l1_miss > 0 else 0.0
        l2_miss = min(1.0, max(0.02, l2_survive) * (0.6 + 0.4 * irregular))
        l3_miss = min(1.0, max(0.02, l3_survive) * (0.7 + 0.3 * irregular))
        l3_miss = min(1.0, l3_miss + effect.pollution * 0.15)

        to_dram = min(1.0, l1_miss * l2_miss * l3_miss / max(streaming_l1_miss, 1e-9))
        # Normalise: "to_dram" is the fraction of demand *bytes* that reach
        # DRAM.  Streaming bytes reach DRAM whenever the footprint exceeds the
        # LLC; irregular bytes follow the composed miss path.
        streaming_dram = streaming * footprint_factor
        irregular_dram = irregular * irregular_l1_miss * max(0.2, l3_miss)
        to_dram = min(1.0, streaming_dram + irregular_dram + resident * 0.005)

        return {
            "l1": float(min(1.0, l1_miss)),
            "l2": float(min(1.0, l2_miss)),
            "l3": float(min(1.0, l3_miss)),
            "to_dram": float(to_dram),
        }


def simulate(
    profile: WorkloadProfile,
    configuration: Configuration,
    machine: MachineTopology,
    engine_config: Optional[EngineConfig] = None,
) -> SimulationResult:
    """One-shot convenience wrapper."""
    return NumaPrefetchSimulator(machine, engine_config).simulate(profile, configuration)
