"""Preset machine topologies mirroring the paper's testbeds."""

from __future__ import annotations

from .topology import MachineTopology, standard_cache_hierarchy


def sandy_bridge() -> MachineTopology:
    """Four-node Intel Sandy Bridge EP E5-4650 analogue (4 x 8 cores)."""
    return MachineTopology(
        name="sandy-bridge",
        num_nodes=4,
        cores_per_node=8,
        frequency_ghz=2.7,
        flops_per_cycle=8.0,   # AVX: 4 DP FMA-less adds + muls
        issue_width=4.0,
        caches=standard_cache_hierarchy(
            l1_kb=32.0, l2_kb=256.0, l3_kb=20_480.0, cores_sharing_l3=8
        ),
        dram_latency_ns=85.0,
        remote_latency_ns=160.0,
        node_bandwidth_gbs=38.0,
        interconnect_bandwidth_gbs=16.0,
        base_power_w=60.0,
        core_power_w=8.0,
        dram_power_per_gbs_w=0.35,
    )


def skylake() -> MachineTopology:
    """Dual-node Intel Skylake Platinum 8168 analogue (2 x 24 cores)."""
    return MachineTopology(
        name="skylake",
        num_nodes=2,
        cores_per_node=24,
        frequency_ghz=2.7,
        flops_per_cycle=16.0,  # AVX-512
        issue_width=4.0,
        caches=standard_cache_hierarchy(
            l1_kb=32.0, l2_kb=1024.0, l3_kb=33_792.0, cores_sharing_l3=24
        ),
        dram_latency_ns=80.0,
        remote_latency_ns=138.0,
        node_bandwidth_gbs=105.0,
        interconnect_bandwidth_gbs=41.0,
        base_power_w=80.0,
        core_power_w=6.0,
        dram_power_per_gbs_w=0.30,
    )


def skylake_gold() -> MachineTopology:
    """Skylake Xeon Gold 6130 analogue (2 x 16 cores) — the Grid'5000 machine
    used for the input-size experiment (Figure 10)."""
    return MachineTopology(
        name="skylake-gold",
        num_nodes=2,
        cores_per_node=16,
        frequency_ghz=2.1,
        flops_per_cycle=16.0,
        issue_width=4.0,
        caches=standard_cache_hierarchy(
            l1_kb=32.0, l2_kb=1024.0, l3_kb=22_528.0, cores_sharing_l3=16
        ),
        dram_latency_ns=82.0,
        remote_latency_ns=142.0,
        node_bandwidth_gbs=85.0,
        interconnect_bandwidth_gbs=38.0,
        base_power_w=70.0,
        core_power_w=6.0,
        dram_power_per_gbs_w=0.30,
    )


MACHINES = {
    "sandy-bridge": sandy_bridge,
    "skylake": skylake,
    "skylake-gold": skylake_gold,
}


def machine_by_name(name: str) -> MachineTopology:
    """Look a preset machine up by name."""
    try:
        return MACHINES[name]()
    except KeyError as exc:
        raise KeyError(f"unknown machine {name!r}; known: {sorted(MACHINES)}") from exc
