"""Thread and page mapping policies.

Thread mapping decides which cores execute the OpenMP threads; page mapping
decides which NUMA node each memory page lives on.  Both policies are
modelled at the level that matters for the timing model: how many threads
run on each node, and what fraction of each thread's accesses are local
versus remote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


class ThreadMapping:
    """Thread-mapping policy names."""

    CONTIGUOUS = "contiguous"     # pack threads node by node (compact)
    ROUND_ROBIN = "round_robin"   # scatter threads across nodes


class PageMapping:
    """Page-mapping policy names."""

    FIRST_TOUCH = "first_touch"   # pages on the node of the first writer
    LOCALITY = "locality"         # pages on the node of their dominant user
    INTERLEAVE = "interleave"     # pages round-robin across used nodes
    BALANCE = "balance"           # split between locality and interleave


THREAD_MAPPINGS = (ThreadMapping.CONTIGUOUS, ThreadMapping.ROUND_ROBIN)
PAGE_MAPPINGS = (
    PageMapping.FIRST_TOUCH,
    PageMapping.LOCALITY,
    PageMapping.INTERLEAVE,
    PageMapping.BALANCE,
)


@dataclass(frozen=True)
class Placement:
    """Result of applying thread + page mapping on a machine.

    Attributes
    ----------
    threads_per_node:
        Number of threads running on each *used* node.
    active_nodes:
        Number of nodes that run at least one thread.
    memory_nodes:
        Number of nodes holding data pages.
    local_fraction:
        Average fraction of a thread's accesses served by its own node.
    node_traffic_share:
        Per-memory-node share of total memory traffic (sums to 1); captures
        congestion when pages concentrate on few nodes (e.g. first touch
        after a serial initialisation).
    """

    threads_per_node: tuple
    active_nodes: int
    memory_nodes: int
    local_fraction: float
    node_traffic_share: tuple


def map_threads(total_threads: int, nodes: int, cores_per_node: int, policy: str) -> List[int]:
    """Distribute ``total_threads`` over ``nodes`` according to ``policy``."""
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    total_threads = min(total_threads, nodes * cores_per_node)
    counts = [0] * nodes
    if policy == ThreadMapping.CONTIGUOUS:
        remaining = total_threads
        for node in range(nodes):
            take = min(cores_per_node, remaining)
            counts[node] = take
            remaining -= take
            if remaining == 0:
                break
    elif policy == ThreadMapping.ROUND_ROBIN:
        for i in range(total_threads):
            counts[i % nodes] += 1
    else:
        raise ValueError(f"unknown thread mapping {policy!r}")
    return counts


def compute_placement(
    threads: int,
    nodes: int,
    cores_per_node: int,
    thread_mapping: str,
    page_mapping: str,
    shared_fraction: float,
    init_by_master: bool,
    locality_quality: float = 1.0,
) -> Placement:
    """Derive the placement summary used by the timing model.

    Parameters
    ----------
    shared_fraction:
        Fraction of a thread's accesses that target data shared with other
        threads (as opposed to its private partition).
    init_by_master:
        True when the benchmark initialises its data in a serial phase, which
        makes ``first_touch`` place every page on node 0.
    locality_quality:
        How well locality-style placement can actually follow the accesses
        (1 = perfectly partitionable streaming, 0 = irregular accesses whose
        pages effectively stay where they were allocated, i.e. node 0).
        Interleaving starts winning over locality once this drops, which is
        the behaviour graph-like benchmarks show on real NUMA machines.
    """
    threads_per_node = map_threads(threads, nodes, cores_per_node, thread_mapping)
    active_nodes = sum(1 for c in threads_per_node if c > 0)
    used = max(1, active_nodes)
    locality_quality = float(np.clip(locality_quality, 0.0, 1.0))

    thread_share = [c / max(1, threads) for c in threads_per_node]
    node0_concentration = [0.0] * nodes
    node0_concentration[0] = 1.0
    node0_local = (threads_per_node[0] if threads_per_node else 0) / max(1, threads)
    ideal_local = (1.0 - shared_fraction) + shared_fraction / used

    if page_mapping == PageMapping.FIRST_TOUCH and init_by_master:
        # Everything lives on node 0: only node-0 threads enjoy locality and
        # node 0's memory controller takes all the traffic.
        memory_nodes = 1
        local_fraction = node0_local
        traffic = list(node0_concentration)
    elif page_mapping in (PageMapping.FIRST_TOUCH, PageMapping.LOCALITY):
        # Private, partitionable data is local; the irregular remainder stays
        # concentrated where it was allocated.
        memory_nodes = used
        local_fraction = locality_quality * ideal_local + (1.0 - locality_quality) * node0_local
        traffic = [
            locality_quality * share + (1.0 - locality_quality) * conc
            for share, conc in zip(thread_share, node0_concentration)
        ]
        if locality_quality < 0.5 and used > 1:
            memory_nodes = 1
    elif page_mapping == PageMapping.INTERLEAVE:
        memory_nodes = used
        local_fraction = 1.0 / used
        traffic = [1.0 / used if c > 0 else 0.0 for c in threads_per_node]
    elif page_mapping == PageMapping.BALANCE:
        memory_nodes = used
        locality_local = locality_quality * ideal_local + (1.0 - locality_quality) * node0_local
        interleave_local = 1.0 / used
        local_fraction = 0.5 * (locality_local + interleave_local)
        locality_traffic = [
            locality_quality * share + (1.0 - locality_quality) * conc
            for share, conc in zip(thread_share, node0_concentration)
        ]
        traffic = [
            0.5 * lt + 0.5 * (1.0 / used if c > 0 else 0.0)
            for lt, c in zip(locality_traffic, threads_per_node)
        ]
    else:
        raise ValueError(f"unknown page mapping {page_mapping!r}")

    total_traffic = sum(traffic)
    if total_traffic <= 0:
        traffic = [1.0] + [0.0] * (nodes - 1)
        total_traffic = 1.0
    traffic = [t / total_traffic for t in traffic]

    return Placement(
        threads_per_node=tuple(threads_per_node),
        active_nodes=active_nodes,
        memory_nodes=memory_nodes,
        local_fraction=float(np.clip(local_fraction, 0.0, 1.0)),
        node_traffic_share=tuple(traffic),
    )
