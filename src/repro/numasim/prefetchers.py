"""Intel hardware prefetcher model (MSR 0x1A4).

Each core exposes four independent prefetchers:

* **L2 streamer** — detects forward/backward streams of cache lines and
  prefetches ahead into L2/L3.  Excellent for sequential and small-stride
  traffic, wasteful for irregular traffic.
* **L2 adjacent line** — fetches the sibling line completing a 128-byte pair.
  Cheap spatial-locality boost; pure overhead for random accesses.
* **DCU next-line (L1)** — brings the next line into L1 on a load.
* **DCU IP-correlated (L1)** — per-instruction stride predictor; captures
  regular strides even when interleaved across instructions.

The :class:`PrefetcherSetting` value object enumerates the 16 on/off
combinations; :func:`prefetcher_effect` converts a setting plus an access
pattern into (coverage, bandwidth overhead, pollution) factors consumed by
the timing model in :mod:`repro.numasim.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

# Bit positions follow MSR 0x1A4 (a set bit *disables* the prefetcher on real
# hardware; here we store "enabled" flags and expose the MSR encoding).
BIT_L2_STREAMER = 0
BIT_L2_ADJACENT = 1
BIT_DCU_NEXT = 2
BIT_DCU_IP = 3


@dataclass(frozen=True)
class PrefetcherSetting:
    """On/off state of the four hardware prefetchers."""

    l2_streamer: bool = True
    l2_adjacent: bool = True
    dcu_next: bool = True
    dcu_ip: bool = True

    # ------------------------------------------------------------- encoding
    @property
    def mask(self) -> int:
        """Enabled-prefetcher bitmask (bit set = enabled)."""
        return (
            (int(self.l2_streamer) << BIT_L2_STREAMER)
            | (int(self.l2_adjacent) << BIT_L2_ADJACENT)
            | (int(self.dcu_next) << BIT_DCU_NEXT)
            | (int(self.dcu_ip) << BIT_DCU_IP)
        )

    @property
    def msr_value(self) -> int:
        """The value to write to MSR 0x1A4 (set bit = disabled)."""
        return (~self.mask) & 0xF

    @classmethod
    def from_mask(cls, mask: int) -> "PrefetcherSetting":
        return cls(
            l2_streamer=bool(mask & (1 << BIT_L2_STREAMER)),
            l2_adjacent=bool(mask & (1 << BIT_L2_ADJACENT)),
            dcu_next=bool(mask & (1 << BIT_DCU_NEXT)),
            dcu_ip=bool(mask & (1 << BIT_DCU_IP)),
        )

    @classmethod
    def all_on(cls) -> "PrefetcherSetting":
        return cls(True, True, True, True)

    @classmethod
    def all_off(cls) -> "PrefetcherSetting":
        return cls(False, False, False, False)

    @property
    def enabled_count(self) -> int:
        return bin(self.mask).count("1")

    def describe(self) -> str:
        parts = []
        parts.append("stream" if self.l2_streamer else "-")
        parts.append("adj" if self.l2_adjacent else "-")
        parts.append("dcu" if self.dcu_next else "-")
        parts.append("ip" if self.dcu_ip else "-")
        return "/".join(parts)


def all_prefetcher_settings() -> List[PrefetcherSetting]:
    """All 16 combinations, ordered by mask."""
    return [PrefetcherSetting.from_mask(mask) for mask in range(16)]


@dataclass(frozen=True)
class PrefetchEffect:
    """Aggregate effect of a prefetcher setting on one workload.

    Attributes
    ----------
    latency_coverage:
        Fraction of demand misses whose latency is hidden by prefetching
        (0 = no help, close to 1 = almost all misses prefetched in time).
    bandwidth_overhead:
        Multiplier (>= 1) on memory traffic caused by prefetch requests,
        including useless ones.
    pollution:
        Additional fraction of cache capacity wasted by useless prefetches;
        raises the effective miss ratio of irregular workloads.
    """

    latency_coverage: float
    bandwidth_overhead: float
    pollution: float


def prefetcher_effect(
    setting: PrefetcherSetting,
    sequential_fraction: float,
    strided_fraction: float,
    irregular_fraction: float,
    branch_regularity: float = 0.8,
) -> PrefetchEffect:
    """Model the combined effect of the enabled prefetchers.

    The three access-pattern fractions should sum to (at most) 1; the
    remainder is treated as compute/register traffic that prefetchers do not
    influence.
    """
    sequential_fraction = max(0.0, min(1.0, sequential_fraction))
    strided_fraction = max(0.0, min(1.0, strided_fraction))
    irregular_fraction = max(0.0, min(1.0, irregular_fraction))

    coverage = 0.0
    overhead = 1.0
    pollution = 0.0

    if setting.l2_streamer:
        # Streams: very effective on sequential, moderately on strides.
        coverage += 0.70 * sequential_fraction + 0.35 * strided_fraction
        overhead += 0.06 * sequential_fraction + 0.10 * strided_fraction
        overhead += 0.22 * irregular_fraction       # useless stream detection
        pollution += 0.10 * irregular_fraction
    if setting.l2_adjacent:
        coverage += 0.10 * sequential_fraction + 0.05 * strided_fraction
        overhead += 0.05 * (sequential_fraction + strided_fraction)
        overhead += 0.12 * irregular_fraction
        pollution += 0.08 * irregular_fraction
    if setting.dcu_next:
        coverage += 0.08 * sequential_fraction + 0.04 * strided_fraction
        overhead += 0.04 * (sequential_fraction + strided_fraction)
        overhead += 0.08 * irregular_fraction
        pollution += 0.05 * irregular_fraction
    if setting.dcu_ip:
        # The IP prefetcher thrives on per-instruction regular strides and
        # degrades gracefully when branches are unpredictable.
        coverage += (0.30 * strided_fraction + 0.12 * sequential_fraction) * branch_regularity
        overhead += 0.05 * strided_fraction
        overhead += 0.05 * irregular_fraction
        pollution += 0.03 * irregular_fraction

    return PrefetchEffect(
        latency_coverage=min(0.95, coverage),
        bandwidth_overhead=min(1.9, overhead),
        pollution=min(0.5, pollution),
    )


def prefetcher_setting_table() -> Dict[int, str]:
    """Mask -> human-readable description for all 16 settings."""
    return {s.mask: s.describe() for s in all_prefetcher_settings()}
