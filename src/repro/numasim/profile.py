"""Dynamic workload profiles consumed by the simulator.

A :class:`WorkloadProfile` is the simulator-facing description of one OpenMP
parallel region: how much arithmetic it does, how it touches memory, how
much it synchronises and how its behaviour drifts between calls.  The
workload generator (:mod:`repro.workloads`) derives a profile and the
matching mini-IR from one common kernel specification, so the static
structure the GNN sees and the dynamic behaviour the simulator times are
consistent with each other — exactly the property the paper relies on when
it claims static IR carries enough signal to pick configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional


@dataclass(frozen=True)
class WorkloadProfile:
    """Dynamic characteristics of one parallel region."""

    name: str

    # Work volume -----------------------------------------------------------
    iterations: float = 1e6          # loop iterations per region invocation
    calls: int = 10                  # invocations per application run
    flops_per_iter: float = 4.0      # double-precision operations per iteration
    bytes_per_iter: float = 16.0     # demand bytes touched per iteration

    # Memory behaviour --------------------------------------------------------
    footprint_mb: float = 64.0           # total data footprint
    working_set_kb: float = 512.0        # per-thread hot working set
    sequential_fraction: float = 0.7     # streaming accesses
    strided_fraction: float = 0.2        # fixed-stride accesses
    irregular_fraction: float = 0.1      # gather / pointer-chasing accesses
    write_ratio: float = 0.3             # stores / (loads + stores)
    shared_fraction: float = 0.1         # accesses to data shared across threads
    init_by_master: bool = True          # serial initialisation (first-touch trap)

    # Parallel behaviour ------------------------------------------------------
    serial_fraction: float = 0.02        # Amdahl serial part of the region
    load_imbalance: float = 1.05         # max thread work / mean thread work
    atomics_per_iter: float = 0.0
    critical_fraction: float = 0.0       # fraction of work under a lock
    barriers_per_call: float = 1.0
    false_sharing: float = 0.0           # 0..1 intensity

    # Core behaviour ----------------------------------------------------------
    dependency_chain: float = 0.3        # 0 = fully independent, 1 = serial chain
    branch_regularity: float = 0.85      # 1 = perfectly predictable branches

    # Behaviour drift (per-call phase changes; drives Figure 12 and the need
    # for dynamic profiling on some regions) ----------------------------------
    phase_variability: float = 0.0
    scalability_limit: Optional[int] = None  # thread count beyond which no gains

    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ utils
    def __post_init__(self) -> None:
        total_pattern = (
            self.sequential_fraction + self.strided_fraction + self.irregular_fraction
        )
        if total_pattern > 1.0 + 1e-9:
            raise ValueError(
                f"{self.name}: access-pattern fractions sum to {total_pattern:.3f} > 1"
            )
        for attr in (
            "write_ratio",
            "shared_fraction",
            "serial_fraction",
            "critical_fraction",
            "false_sharing",
            "dependency_chain",
            "branch_regularity",
            "phase_variability",
        ):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {attr}={value} outside [0, 1]")
        if self.load_imbalance < 1.0:
            raise ValueError(f"{self.name}: load_imbalance must be >= 1")

    @property
    def cache_resident_fraction(self) -> float:
        """Accesses always served by the L1 (register-like temporal reuse)."""
        return max(
            0.0,
            1.0
            - self.sequential_fraction
            - self.strided_fraction
            - self.irregular_fraction,
        )

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per demand byte."""
        return self.flops_per_iter / max(1e-9, self.bytes_per_iter)

    def scaled(self, factor: float, name_suffix: str = "") -> "WorkloadProfile":
        """Return a copy with a ``factor``-times larger input size.

        Scaling an input grows the footprint and the iteration count and
        shifts a cache-resident workload toward memory-bound behaviour —
        this is what the input-size experiment (Figure 10) exercises.
        """
        new_ws = self.working_set_kb * factor
        return replace(
            self,
            name=self.name + name_suffix,
            iterations=self.iterations * factor,
            footprint_mb=self.footprint_mb * factor,
            working_set_kb=new_ws,
        )

    def with_variability(self, variability: float) -> "WorkloadProfile":
        return replace(self, phase_variability=float(variability))

    def describe(self) -> Dict[str, float]:
        return {
            "iterations": self.iterations,
            "flops_per_iter": self.flops_per_iter,
            "bytes_per_iter": self.bytes_per_iter,
            "footprint_mb": self.footprint_mb,
            "arithmetic_intensity": self.arithmetic_intensity,
            "sequential": self.sequential_fraction,
            "strided": self.strided_fraction,
            "irregular": self.irregular_fraction,
            "shared": self.shared_fraction,
            "atomics_per_iter": self.atomics_per_iter,
            "serial_fraction": self.serial_fraction,
        }
