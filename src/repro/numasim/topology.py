"""Machine topology description for the NUMA/prefetcher simulator.

The simulator replaces the paper's physical testbeds (a four-node Intel
Sandy Bridge EP E5-4650 and a dual-node Intel Skylake Platinum 8168).  A
:class:`MachineTopology` captures the first-order parameters that determine
how NUMA and prefetcher configurations reorder: core counts per node, cache
capacities, local/remote latencies, per-node and cross-node bandwidths, and
core throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy."""

    name: str
    size_kb: float
    line_bytes: int
    latency_cycles: float
    shared_by_cores: int  # 1 = private, >1 = shared by that many cores


@dataclass(frozen=True)
class MachineTopology:
    """Static description of a NUMA machine."""

    name: str
    num_nodes: int
    cores_per_node: int
    frequency_ghz: float
    flops_per_cycle: float
    issue_width: float
    caches: tuple
    dram_latency_ns: float
    remote_latency_ns: float
    node_bandwidth_gbs: float          # one node's local memory bandwidth
    interconnect_bandwidth_gbs: float  # per-link cross-node bandwidth
    base_power_w: float
    core_power_w: float
    dram_power_per_gbs_w: float

    # --------------------------------------------------------------- derived
    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.cores_per_node

    @property
    def l1(self) -> CacheLevel:
        return self.caches[0]

    @property
    def l2(self) -> CacheLevel:
        return self.caches[1]

    @property
    def l3(self) -> CacheLevel:
        return self.caches[2]

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.frequency_ghz

    @property
    def total_bandwidth_gbs(self) -> float:
        return self.node_bandwidth_gbs * self.num_nodes

    def peak_gflops(self, cores: int) -> float:
        """Peak double-precision GFLOP/s for ``cores`` active cores."""
        return cores * self.frequency_ghz * self.flops_per_cycle

    def validate(self) -> List[str]:
        problems: List[str] = []
        if self.num_nodes < 1:
            problems.append("num_nodes must be >= 1")
        if self.cores_per_node < 1:
            problems.append("cores_per_node must be >= 1")
        if len(self.caches) != 3:
            problems.append("exactly three cache levels (L1, L2, L3) are expected")
        if self.remote_latency_ns < self.dram_latency_ns:
            problems.append("remote latency should not be lower than local latency")
        return problems

    def describe(self) -> Dict[str, float]:
        """Flat summary used in reports."""
        return {
            "nodes": float(self.num_nodes),
            "cores_per_node": float(self.cores_per_node),
            "total_cores": float(self.total_cores),
            "frequency_ghz": self.frequency_ghz,
            "l1_kb": self.l1.size_kb,
            "l2_kb": self.l2.size_kb,
            "l3_kb": self.l3.size_kb,
            "dram_latency_ns": self.dram_latency_ns,
            "remote_latency_ns": self.remote_latency_ns,
            "node_bandwidth_gbs": self.node_bandwidth_gbs,
        }


def standard_cache_hierarchy(
    l1_kb: float = 32.0,
    l2_kb: float = 256.0,
    l3_kb: float = 20480.0,
    cores_sharing_l3: int = 8,
    line_bytes: int = 64,
) -> tuple:
    """Build the usual (L1 private, L2 private, L3 shared) hierarchy."""
    return (
        CacheLevel("L1", l1_kb, line_bytes, latency_cycles=4.0, shared_by_cores=1),
        CacheLevel("L2", l2_kb, line_bytes, latency_cycles=12.0, shared_by_cores=1),
        CacheLevel("L3", l3_kb, line_bytes, latency_cycles=40.0, shared_by_cores=cores_sharing_l3),
    )
