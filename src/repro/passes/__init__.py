"""Compiler transformations over the mini-IR and flag-sequence sampling.

Importing this package registers every pass in :data:`PASS_REGISTRY`, after
which :class:`PassManager` can build pipelines from pass names, exactly the
way flag sequences are expressed throughout the reproduction.
"""

from .pass_manager import (
    PASS_REGISTRY,
    FunctionPass,
    ModulePass,
    PassManager,
    PassStatistics,
    apply_flag_sequence,
    available_passes,
    create_pass,
    register_pass,
    run_passes,
)

# Importing the pass modules populates the registry.
from . import dce as _dce  # noqa: F401
from . import constfold as _constfold  # noqa: F401
from . import instcombine as _instcombine  # noqa: F401
from . import cse as _cse  # noqa: F401
from . import simplifycfg as _simplifycfg  # noqa: F401
from . import licm as _licm  # noqa: F401
from . import loop_unroll as _loop_unroll  # noqa: F401
from . import inline as _inline  # noqa: F401
from . import mem2reg as _mem2reg  # noqa: F401
from . import globalopt as _globalopt  # noqa: F401

from .flag_sampler import FlagSequence, FlagSequenceSampler, sample_flag_sequences
from .pipelines import (
    O0_PIPELINE,
    O1_PIPELINE,
    O2_PIPELINE,
    O3_PIPELINE,
    PIPELINES,
    default_compilation_sequence,
    describe_sequence,
    pipeline,
)

__all__ = [
    "PASS_REGISTRY",
    "FunctionPass",
    "ModulePass",
    "PassManager",
    "PassStatistics",
    "apply_flag_sequence",
    "available_passes",
    "create_pass",
    "register_pass",
    "run_passes",
    "FlagSequence",
    "FlagSequenceSampler",
    "sample_flag_sequences",
    "O0_PIPELINE",
    "O1_PIPELINE",
    "O2_PIPELINE",
    "O3_PIPELINE",
    "PIPELINES",
    "default_compilation_sequence",
    "describe_sequence",
    "pipeline",
]
