"""Constant folding and propagation."""

from __future__ import annotations

import math
from typing import Optional

from ..ir.function import Function
from ..ir.instructions import (
    BinaryOp,
    Cast,
    FCmp,
    ICmp,
    Instruction,
    Select,
)
from ..ir.types import FloatType, IntType
from ..ir.values import Constant, ConstantFloat, ConstantInt, Value, const_bool
from .pass_manager import FunctionPass, register_pass


def fold_binary(opcode: str, lhs: Constant, rhs: Constant, result_type) -> Optional[Constant]:
    """Fold a binary operation over two constants, or return None."""
    if isinstance(result_type, FloatType):
        if not isinstance(lhs, (ConstantFloat, ConstantInt)) or not isinstance(
            rhs, (ConstantFloat, ConstantInt)
        ):
            return None
        a, b = float(lhs.value), float(rhs.value)
        if opcode == "fadd":
            return ConstantFloat(a + b, result_type)
        if opcode == "fsub":
            return ConstantFloat(a - b, result_type)
        if opcode == "fmul":
            return ConstantFloat(a * b, result_type)
        if opcode == "fdiv":
            return ConstantFloat(a / b, result_type) if b != 0.0 else None
        if opcode == "frem":
            return ConstantFloat(math.fmod(a, b), result_type) if b != 0.0 else None
        return None
    if not isinstance(result_type, IntType):
        return None
    if not isinstance(lhs, ConstantInt) or not isinstance(rhs, ConstantInt):
        return None
    a, b = lhs.value, rhs.value
    if opcode == "add":
        return ConstantInt(a + b, result_type)
    if opcode == "sub":
        return ConstantInt(a - b, result_type)
    if opcode == "mul":
        return ConstantInt(a * b, result_type)
    if opcode in ("sdiv", "udiv"):
        return ConstantInt(int(a / b), result_type) if b != 0 else None
    if opcode in ("srem", "urem"):
        return ConstantInt(int(math.fmod(a, b)), result_type) if b != 0 else None
    if opcode == "and":
        return ConstantInt(a & b, result_type)
    if opcode == "or":
        return ConstantInt(a | b, result_type)
    if opcode == "xor":
        return ConstantInt(a ^ b, result_type)
    if opcode == "shl":
        return ConstantInt(a << (b % result_type.bits), result_type)
    if opcode == "lshr":
        return ConstantInt((a % (1 << result_type.bits)) >> (b % result_type.bits), result_type)
    if opcode == "ashr":
        return ConstantInt(a >> (b % result_type.bits), result_type)
    return None


def fold_icmp(predicate: str, lhs: ConstantInt, rhs: ConstantInt) -> Constant:
    a, b = lhs.value, rhs.value
    if predicate in ("ult", "ule", "ugt", "uge"):
        bits = lhs.type.bits if isinstance(lhs.type, IntType) else 64
        mask = (1 << bits) - 1
        a &= mask
        b &= mask
        predicate = {"ult": "slt", "ule": "sle", "ugt": "sgt", "uge": "sge"}[predicate]
    result = {
        "eq": a == b,
        "ne": a != b,
        "slt": a < b,
        "sle": a <= b,
        "sgt": a > b,
        "sge": a >= b,
    }[predicate]
    return const_bool(result)


def fold_fcmp(predicate: str, lhs: ConstantFloat, rhs: ConstantFloat) -> Constant:
    a, b = float(lhs.value), float(rhs.value)
    result = {
        "oeq": a == b,
        "one": a != b,
        "olt": a < b,
        "ole": a <= b,
        "ogt": a > b,
        "oge": a >= b,
    }[predicate]
    return const_bool(result)


def fold_instruction(inst: Instruction) -> Optional[Constant]:
    """Return the constant this instruction folds to, or None."""
    if isinstance(inst, BinaryOp):
        lhs, rhs = inst.lhs, inst.rhs
        if isinstance(lhs, Constant) and isinstance(rhs, Constant):
            return fold_binary(inst.opcode, lhs, rhs, inst.type)
        return None
    if isinstance(inst, ICmp):
        if isinstance(inst.lhs, ConstantInt) and isinstance(inst.rhs, ConstantInt):
            return fold_icmp(inst.predicate, inst.lhs, inst.rhs)
        return None
    if isinstance(inst, FCmp):
        if isinstance(inst.lhs, ConstantFloat) and isinstance(inst.rhs, ConstantFloat):
            return fold_fcmp(inst.predicate, inst.lhs, inst.rhs)
        return None
    if isinstance(inst, Select):
        cond = inst.condition
        if isinstance(cond, ConstantInt):
            chosen = inst.true_value if cond.value else inst.false_value
            if isinstance(chosen, Constant):
                return chosen
        return None
    if isinstance(inst, Cast):
        src = inst.source
        if not isinstance(src, Constant):
            return None
        if inst.opcode in ("trunc", "zext", "sext") and isinstance(src, ConstantInt):
            assert isinstance(inst.type, IntType)
            return ConstantInt(src.value, inst.type)
        if inst.opcode == "fptosi" and isinstance(src, ConstantFloat):
            assert isinstance(inst.type, IntType)
            return ConstantInt(int(src.value), inst.type)
        if inst.opcode in ("sitofp", "fpext", "fptrunc") and isinstance(
            src, (ConstantInt, ConstantFloat)
        ):
            assert isinstance(inst.type, FloatType)
            return ConstantFloat(float(src.value), inst.type)
        return None
    return None


@register_pass
class ConstantFolding(FunctionPass):
    """Fold instructions whose operands are all constants, to a fixpoint.

    The fold only rewrites *uses*; the now-dead defining instructions are
    left for :class:`~repro.passes.dce.DeadCodeElimination`, mirroring how
    LLVM separates the two concerns.
    """

    name = "constfold"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            for inst in list(function.instructions()):
                folded = fold_instruction(inst)
                if folded is None:
                    continue
                if function.replace_all_uses_with(inst, folded):
                    progress = True
                    changed = True
        return changed


@register_pass
class ConstantPropagation(FunctionPass):
    """Propagate constants through select/phi chains where trivially safe.

    A phi whose incoming values are all the same constant becomes that
    constant; a phi whose incoming values are all the same SSA value becomes
    that value (LCSSA-style cleanup).
    """

    name = "constprop"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            for block in function.blocks:
                for phi in block.phis():
                    values = list(phi.operands)
                    if not values:
                        continue
                    first = values[0]
                    same_object = all(v is first for v in values[1:])
                    same_constant = (
                        isinstance(first, Constant)
                        and all(isinstance(v, Constant) and v == first for v in values[1:])
                    )
                    # A phi that only references itself and one other value is
                    # also redundant (common after simplify-cfg).
                    non_self = [v for v in values if v is not phi]
                    redundant_self = len(set(id(v) for v in non_self)) == 1 and len(non_self) >= 1
                    if same_object or same_constant:
                        replacement: Value = first
                    elif redundant_self:
                        replacement = non_self[0]
                    else:
                        continue
                    if replacement is phi:
                        continue
                    function.replace_all_uses_with(phi, replacement)
                    block.remove(phi)
                    progress = True
                    changed = True
        return changed
