"""Common-subexpression elimination (local CSE and dominator-scoped GVN)."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ir.block import BasicBlock
from ..ir.dominators import DominatorTree
from ..ir.function import Function
from ..ir.instructions import (
    BinaryOp,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Select,
)
from ..ir.values import Constant, Value
from .pass_manager import FunctionPass, register_pass


def _operand_key(value: Value) -> object:
    """Hashable identity of an operand for expression keys."""
    if isinstance(value, Constant):
        return ("const", repr(value.type), getattr(value, "value", None))
    return ("val", id(value))


def expression_key(inst: Instruction) -> Optional[Tuple]:
    """Hashable key identifying the computation of ``inst``, if CSE-able."""
    if isinstance(inst, BinaryOp):
        operands = [_operand_key(inst.lhs), _operand_key(inst.rhs)]
        if inst.is_commutative:
            operands.sort(key=repr)
        return ("bin", inst.opcode, tuple(operands))
    if isinstance(inst, ICmp):
        return ("icmp", inst.predicate, _operand_key(inst.lhs), _operand_key(inst.rhs))
    if isinstance(inst, FCmp):
        return ("fcmp", inst.predicate, _operand_key(inst.lhs), _operand_key(inst.rhs))
    if isinstance(inst, Cast):
        return ("cast", inst.opcode, repr(inst.type), _operand_key(inst.source))
    if isinstance(inst, Select):
        return ("select", tuple(_operand_key(op) for op in inst.operands))
    if isinstance(inst, GetElementPtr):
        return ("gep", tuple(_operand_key(op) for op in inst.operands))
    return None


@register_pass
class LocalCSE(FunctionPass):
    """Eliminate identical pure expressions within each basic block."""

    name = "cse"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        for block in function.blocks:
            available: Dict[Tuple, Instruction] = {}
            for inst in list(block.instructions):
                if not inst.is_pure:
                    continue
                key = expression_key(inst)
                if key is None:
                    continue
                existing = available.get(key)
                if existing is None:
                    available[key] = inst
                    continue
                function.replace_all_uses_with(inst, existing)
                block.remove(inst)
                changed = True
        return changed


@register_pass
class GlobalValueNumbering(FunctionPass):
    """Dominator-scoped value numbering.

    Walks the dominator tree depth-first carrying a scoped hash table of
    available expressions, so an expression computed in a dominating block
    replaces re-computations in dominated blocks.
    """

    name = "gvn"

    def run_on_function(self, function: Function) -> bool:
        if not function.blocks:
            return False
        domtree = DominatorTree(function)
        entry = function.entry_block
        assert entry is not None
        self._changed = False
        self._function = function
        self._visit(entry, domtree, {})
        return self._changed

    def _visit(
        self,
        block: BasicBlock,
        domtree: DominatorTree,
        available: Dict[Tuple, Instruction],
    ) -> None:
        scope: Dict[Tuple, Instruction] = dict(available)
        for inst in list(block.instructions):
            if not inst.is_pure:
                continue
            key = expression_key(inst)
            if key is None:
                continue
            existing = scope.get(key)
            if existing is not None:
                self._function.replace_all_uses_with(inst, existing)
                block.remove(inst)
                self._changed = True
            else:
                scope[key] = inst
        for child in domtree.children(block):
            if child is block:
                continue
            self._visit(child, domtree, scope)
