"""Dead code elimination and unreachable-block removal."""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.block import BasicBlock
from ..ir.cfg import reachable_blocks
from ..ir.function import Function, remove_block_and_fix_phis
from ..ir.instructions import Instruction
from ..ir.values import Value
from .pass_manager import FunctionPass, register_pass


def _use_counts(function: Function) -> Dict[Value, int]:
    counts: Dict[Value, int] = {}
    for inst in function.instructions():
        for op in inst.operands:
            if isinstance(op, Instruction):
                counts[op] = counts.get(op, 0) + 1
    return counts


@register_pass
class DeadCodeElimination(FunctionPass):
    """Remove pure instructions whose results are never used.

    Works back to a fixpoint so chains of dead computations disappear in one
    run — this is the pass whose effect the paper singles out as an example
    of exposing code properties ("if a code has large blocks of useless code,
    this compiler pass will have a significant impact").
    """

    name = "dce"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        while True:
            counts = _use_counts(function)
            dead: List[Instruction] = [
                inst
                for inst in function.instructions()
                if inst.is_pure and counts.get(inst, 0) == 0 and not inst.type.is_void
            ]
            if not dead:
                break
            for inst in dead:
                if inst.parent is not None:
                    inst.parent.remove(inst)
            changed = True
        return changed


@register_pass
class RemoveUnreachableBlocks(FunctionPass):
    """Delete blocks not reachable from the entry block."""

    name = "unreachable-block-elim"

    def run_on_function(self, function: Function) -> bool:
        if not function.blocks:
            return False
        reachable: Set[BasicBlock] = reachable_blocks(function)
        dead_blocks = [block for block in function.blocks if block not in reachable]
        if not dead_blocks:
            return False
        for block in dead_blocks:
            # Drop the dead block's instructions first so that stale operand
            # references (from the dead region into itself) disappear.
            for inst in list(block.instructions):
                block.remove(inst)
            remove_block_and_fix_phis(function, block)
        return True
