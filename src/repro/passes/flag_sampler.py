"""Random flag-sequence generation (the paper's augmentation sampler).

The paper (Section III-A) generates middle-end flag sequences by
down-sampling the ``-O3`` sequence: "Each pass is removed with a 0.8
probability and the process was repeated four times."  We read this as: one
down-sampling round drops each pass independently with probability 0.8, and
the sampling *process* is repeated to obtain many distinct sequences (four
times per target sequence count in the original methodology).  Applying four
*successive* 0.8-drop rounds to the same sequence would leave essentially
empty pipelines (keep probability 0.2^4 = 0.0016 per pass), which cannot be
what the authors trained on, so ``rounds`` defaults to 1 here and is kept as
a parameter for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from .pipelines import O3_PIPELINE


@dataclass(frozen=True)
class FlagSequence:
    """One sampled compiler flag sequence."""

    index: int
    passes: tuple

    @property
    def name(self) -> str:
        return f"seq{self.index:04d}"

    def __len__(self) -> int:
        return len(self.passes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.passes)


class FlagSequenceSampler:
    """Samples flag sequences by down-sampling the O3 pipeline.

    Parameters
    ----------
    drop_probability:
        Probability of removing each pass in one down-sampling round
        (0.8 in the paper).
    rounds:
        Number of consecutive down-sampling rounds applied to the base
        sequence.  Each round removes passes from the *result* of the
        previous round; the default of 1 matches the interpretation in the
        module docstring.
    base_pipeline:
        The pipeline to down-sample; defaults to the O3 analogue.
    """

    def __init__(
        self,
        drop_probability: float = 0.8,
        rounds: int = 1,
        base_pipeline: Optional[Sequence[str]] = None,
        seed: int = 0,
    ):
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.drop_probability = drop_probability
        self.rounds = rounds
        self.base_pipeline = list(base_pipeline) if base_pipeline is not None else list(O3_PIPELINE)
        self.seed = seed

    def sample(self, count: int) -> List[FlagSequence]:
        """Sample ``count`` flag sequences deterministically."""
        rng = np.random.default_rng(self.seed)
        sequences: List[FlagSequence] = []
        seen: set[tuple] = set()
        attempts = 0
        # Allow duplicates only when the space is too small to avoid them —
        # with a 23-pass base pipeline that never happens in practice.
        max_attempts = count * 50
        while len(sequences) < count and attempts < max_attempts:
            attempts += 1
            passes = self._sample_one(rng)
            key = tuple(passes)
            if key in seen and attempts < max_attempts - count:
                continue
            seen.add(key)
            sequences.append(FlagSequence(index=len(sequences), passes=key))
        while len(sequences) < count:
            # Degenerate corner (tiny base pipeline): pad with duplicates.
            passes = tuple(self._sample_one(rng))
            sequences.append(FlagSequence(index=len(sequences), passes=passes))
        return sequences

    def _sample_one(self, rng: np.random.Generator) -> List[str]:
        current = list(self.base_pipeline)
        for _ in range(self.rounds):
            if not current:
                break
            keep_mask = rng.random(len(current)) >= self.drop_probability
            current = [p for p, keep in zip(current, keep_mask) if keep]
        return current


def sample_flag_sequences(
    count: int,
    seed: int = 0,
    drop_probability: float = 0.8,
    rounds: int = 1,
    base_pipeline: Optional[Sequence[str]] = None,
) -> List[FlagSequence]:
    """Module-level convenience wrapper around :class:`FlagSequenceSampler`."""
    sampler = FlagSequenceSampler(
        drop_probability=drop_probability,
        rounds=rounds,
        base_pipeline=base_pipeline,
        seed=seed,
    )
    return sampler.sample(count)
