"""Module-level cleanup passes."""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import Call, Store
from ..ir.module import Module
from ..ir.values import GlobalVariable
from .pass_manager import ModulePass, register_pass


@register_pass
class GlobalOpt(ModulePass):
    """Mark globals that are never stored to as constants.

    Purely an IR-annotation change (it influences printing and the graph
    features) but it mirrors the analysis LLVM's ``-globalopt`` performs.
    """

    name = "globalopt"

    def run_on_module(self, module: Module) -> bool:
        stored: set[str] = set()
        for fn in module.functions:
            for inst in fn.instructions():
                if isinstance(inst, Store) and isinstance(inst.pointer, GlobalVariable):
                    stored.add(inst.pointer.name)
        changed = False
        for gv in module.globals:
            if gv.name not in stored and not gv.is_constant_global:
                gv.is_constant_global = True
                changed = True
        return changed


@register_pass
class DeadFunctionElimination(ModulePass):
    """Remove internal functions that are never called.

    Functions marked ``internal`` that have no call sites anywhere in the
    module are dropped.  OpenMP outlined regions and externally-visible
    functions are always kept.
    """

    name = "deadfunc"

    def run_on_module(self, module: Module) -> bool:
        called: set[str] = set()
        for fn in module.functions:
            for inst in fn.instructions():
                if isinstance(inst, Call):
                    called.add(inst.callee_name)
        removable = [
            fn
            for fn in module.functions
            if "internal" in fn.attributes
            and not fn.is_omp_outlined
            and fn.name not in called
            and not fn.is_declaration
        ]
        for fn in removable:
            module.remove_function(fn)
        return bool(removable)


@register_pass
class DeadArgumentAnnotation(ModulePass):
    """Annotate unused arguments of defined functions.

    Changing signatures would require rewriting every call site; instead the
    pass records unused arguments in function metadata-like attributes
    (``deadarg_<name>``), which perturbs the printed IR and the graph
    features the same way LLVM's ``-deadargelim`` would perturb real IR,
    without breaking ABI assumptions elsewhere in the pipeline.
    """

    name = "deadargelim"

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for fn in module.functions:
            if fn.is_declaration:
                continue
            used = set()
            for inst in fn.instructions():
                for op in inst.operands:
                    used.add(id(op))
            for arg in fn.arguments:
                attr = f"deadarg_{arg.name}"
                if id(arg) not in used and attr not in fn.attributes:
                    fn.attributes.add(attr)
                    changed = True
        return changed
