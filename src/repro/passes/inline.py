"""Function inlining."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Branch, Call, Instruction, Phi, Return
from ..ir.module import Module
from ..ir.values import Value
from .pass_manager import ModulePass, register_pass


def _is_recursive(function: Function) -> bool:
    for inst in function.instructions():
        if isinstance(inst, Call) and inst.callee is function:
            return True
    return False


@register_pass
class Inliner(ModulePass):
    """Inline calls to small, non-recursive, defined functions.

    Functions marked ``noinline`` are skipped, functions marked ``inline``
    are always considered; otherwise a size threshold applies.  OpenMP
    outlined functions are never inlined into their callers (they must stay
    extractable as regions), but calls *inside* them are fair game.
    """

    name = "inline"

    def __init__(self, max_callee_size: int = 40):
        self.max_callee_size = max_callee_size

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for caller in list(module.functions):
            if caller.is_declaration:
                continue
            changed |= self._inline_in_function(caller)
        return changed

    # ------------------------------------------------------------------
    def _should_inline(self, callee: Function) -> bool:
        if callee.is_declaration or callee.is_omp_outlined:
            return False
        if "noinline" in callee.attributes:
            return False
        if _is_recursive(callee):
            return False
        if "inline" in callee.attributes:
            return True
        return callee.instruction_count() <= self.max_callee_size

    def _inline_in_function(self, caller: Function) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            for block in list(caller.blocks):
                for inst in list(block.instructions):
                    if not isinstance(inst, Call):
                        continue
                    callee = inst.callee
                    if not isinstance(callee, Function) or callee is caller:
                        continue
                    if not self._should_inline(callee):
                        continue
                    self._inline_call(caller, block, inst, callee)
                    progress = True
                    changed = True
                    break
                if progress:
                    break
        return changed

    def _inline_call(
        self,
        caller: Function,
        block: BasicBlock,
        call: Call,
        callee: Function,
    ) -> None:
        call_index = block.instructions.index(call)

        # 1. Split the caller block after the call.
        continuation = BasicBlock(f"{block.name}.cont.{caller.next_name()}")
        caller.blocks.insert(caller.blocks.index(block) + 1, continuation)
        continuation.parent = caller
        trailing = block.instructions[call_index + 1 :]
        for inst in trailing:
            block.remove(inst)
            continuation.append(inst)
        block.remove(call)
        # Successor phis that named `block` as the incoming predecessor now
        # receive their value via the continuation block.
        for succ in continuation.successors():
            for phi in succ.phis():
                for i, incoming in enumerate(phi.incoming_blocks):
                    if incoming is block:
                        phi.incoming_blocks[i] = continuation

        # 2. Clone the callee body with argument substitution.
        value_map: Dict[Value, Value] = {}
        for formal, actual in zip(callee.arguments, call.operands):
            value_map[formal] = actual
        block_map: Dict[BasicBlock, BasicBlock] = {}
        cloned_blocks: List[BasicBlock] = []
        for src_block in callee.blocks:
            clone = BasicBlock(f"{callee.name}.{src_block.name}.{caller.next_name()}")
            clone.parent = caller
            block_map[src_block] = clone
            cloned_blocks.append(clone)
        insert_at = caller.blocks.index(continuation)
        caller.blocks[insert_at:insert_at] = cloned_blocks

        returns: List[tuple[BasicBlock, Optional[Value]]] = []
        for src_block, clone in block_map.items():
            for inst in src_block.instructions:
                if isinstance(inst, Return):
                    returns.append((clone, inst.value))
                    continue  # replaced by a branch to the continuation below
                new_inst = inst.clone()
                new_inst.name = (
                    f"{inst.name}.inl{caller.next_name()}" if inst.name else ""
                )
                clone.append(new_inst)
                value_map[inst] = new_inst

        # 3. Remap operands (values and blocks) inside the cloned body.
        def _remap(value: Value) -> Value:
            if isinstance(value, BasicBlock):
                return block_map.get(value, value)
            mapped = value_map.get(value)
            return mapped if mapped is not None else value

        for clone in cloned_blocks:
            for inst in clone.instructions:
                inst.operands = [_remap(op) for op in inst.operands]
                if isinstance(inst, Phi):
                    inst.incoming_blocks = [
                        block_map.get(b, b) for b in inst.incoming_blocks
                    ]

        # 4. Wire control flow: call block jumps to the cloned entry; every
        #    cloned return jumps to the continuation.
        entry_clone = block_map[callee.blocks[0]]
        block.append(Branch(entry_clone))
        return_values: List[tuple[Value, BasicBlock]] = []
        for clone, value in returns:
            clone.append(Branch(continuation))
            if value is not None:
                return_values.append((value_map.get(value, value), clone))

        # 5. Replace uses of the call's result.
        if not call.type.is_void and return_values:
            if len(return_values) == 1:
                replacement: Value = return_values[0][0]
            else:
                phi = Phi(call.type, caller.next_name("retphi"))
                for value, clone in return_values:
                    phi.add_incoming(value, clone)
                continuation.insert(0, phi)
                replacement = phi
            caller.replace_all_uses_with(call, replacement)
