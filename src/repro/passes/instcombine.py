"""Peephole algebraic simplifications (a small ``instcombine``)."""

from __future__ import annotations

from typing import Optional

from ..ir.function import Function
from ..ir.instructions import BinaryOp, ICmp, Instruction, Select
from ..ir.types import FloatType, IntType
from ..ir.values import ConstantFloat, ConstantInt, Value, const_bool
from .pass_manager import FunctionPass, register_pass


def _is_int_zero(value: Value) -> bool:
    return isinstance(value, ConstantInt) and value.value == 0


def _is_int_one(value: Value) -> bool:
    return isinstance(value, ConstantInt) and value.value == 1


def _is_float_zero(value: Value) -> bool:
    return isinstance(value, ConstantFloat) and value.value == 0.0


def _is_float_one(value: Value) -> bool:
    return isinstance(value, ConstantFloat) and value.value == 1.0


def simplify(inst: Instruction) -> Optional[Value]:
    """Return a simpler value equivalent to ``inst``, or None."""
    if isinstance(inst, BinaryOp):
        return _simplify_binary(inst)
    if isinstance(inst, ICmp):
        if inst.lhs is inst.rhs:
            if inst.predicate in ("eq", "sle", "sge", "ule", "uge"):
                return const_bool(True)
            if inst.predicate in ("ne", "slt", "sgt", "ult", "ugt"):
                return const_bool(False)
    if isinstance(inst, Select):
        if inst.true_value is inst.false_value:
            return inst.true_value
        cond = inst.condition
        if isinstance(cond, ConstantInt):
            return inst.true_value if cond.value else inst.false_value
    return None


def _simplify_binary(inst: BinaryOp) -> Optional[Value]:
    op = inst.opcode
    lhs, rhs = inst.lhs, inst.rhs
    is_int = isinstance(inst.type, IntType)
    is_float = isinstance(inst.type, FloatType)

    if op == "add":
        if _is_int_zero(rhs):
            return lhs
        if _is_int_zero(lhs):
            return rhs
    elif op == "sub":
        if _is_int_zero(rhs):
            return lhs
        if lhs is rhs and is_int:
            return ConstantInt(0, inst.type)  # type: ignore[arg-type]
    elif op == "mul":
        if _is_int_one(rhs):
            return lhs
        if _is_int_one(lhs):
            return rhs
        if _is_int_zero(rhs) or _is_int_zero(lhs):
            return ConstantInt(0, inst.type)  # type: ignore[arg-type]
    elif op in ("sdiv", "udiv"):
        if _is_int_one(rhs):
            return lhs
    elif op in ("srem", "urem"):
        if _is_int_one(rhs):
            return ConstantInt(0, inst.type)  # type: ignore[arg-type]
    elif op in ("and", "or"):
        if lhs is rhs:
            return lhs
        if op == "and" and (_is_int_zero(lhs) or _is_int_zero(rhs)):
            return ConstantInt(0, inst.type)  # type: ignore[arg-type]
        if op == "or":
            if _is_int_zero(rhs):
                return lhs
            if _is_int_zero(lhs):
                return rhs
    elif op == "xor":
        if lhs is rhs and is_int:
            return ConstantInt(0, inst.type)  # type: ignore[arg-type]
        if _is_int_zero(rhs):
            return lhs
        if _is_int_zero(lhs):
            return rhs
    elif op in ("shl", "lshr", "ashr"):
        if _is_int_zero(rhs):
            return lhs
    elif op == "fadd":
        if _is_float_zero(rhs):
            return lhs
        if _is_float_zero(lhs):
            return rhs
    elif op == "fsub":
        if _is_float_zero(rhs):
            return lhs
    elif op == "fmul":
        if _is_float_one(rhs):
            return lhs
        if _is_float_one(lhs):
            return rhs
    elif op == "fdiv":
        if _is_float_one(rhs):
            return lhs
    return None


@register_pass
class InstCombine(FunctionPass):
    """Apply algebraic identities (x+0, x*1, x-x, x^x, ...) to a fixpoint."""

    name = "instcombine"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            for inst in list(function.instructions()):
                replacement = simplify(inst)
                if replacement is None or replacement is inst:
                    continue
                if function.replace_all_uses_with(inst, replacement):
                    progress = True
                    changed = True
        return changed


@register_pass
class Reassociate(FunctionPass):
    """Canonicalize commutative operands: constants to the right-hand side.

    Like LLVM's ``-reassociate`` this does not change semantics, only the
    shape of expressions, which makes CSE/GVN find more matches and — for
    this project — perturbs the data-flow graph fed to the GNN.
    """

    name = "reassociate"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        for inst in function.instructions():
            if isinstance(inst, BinaryOp) and inst.is_commutative:
                lhs, rhs = inst.lhs, inst.rhs
                lhs_const = isinstance(lhs, (ConstantInt, ConstantFloat))
                rhs_const = isinstance(rhs, (ConstantInt, ConstantFloat))
                if lhs_const and not rhs_const:
                    inst.operands[0], inst.operands[1] = rhs, lhs
                    changed = True
        return changed
