"""Loop-invariant code motion."""

from __future__ import annotations

from typing import Set

from ..ir.function import Function
from ..ir.instructions import Instruction, Load, Phi
from ..ir.loops import Loop, find_loops
from ..ir.values import Argument, Constant, GlobalVariable, Value
from .pass_manager import FunctionPass, register_pass


def _is_invariant_operand(value: Value, loop: Loop, hoisted: Set[Instruction]) -> bool:
    if isinstance(value, (Constant, Argument, GlobalVariable)):
        return True
    if isinstance(value, Instruction):
        if value in hoisted:
            return True
        return value.parent is not None and value.parent not in loop.blocks
    return False


@register_pass
class LoopInvariantCodeMotion(FunctionPass):
    """Hoist pure loop-invariant computations into the loop preheader.

    Loads are intentionally *not* hoisted: without alias analysis a load in
    the loop body may observe stores from other iterations (or other
    threads, since these are OpenMP regions), so only arithmetic, compares,
    casts, selects and GEPs move.
    """

    name = "licm"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        for loop in find_loops(function):
            preheader = loop.preheader()
            if preheader is None or not preheader.is_terminated:
                continue
            hoisted: Set[Instruction] = set()
            progress = True
            while progress:
                progress = False
                for block in list(loop.blocks):
                    for inst in list(block.instructions):
                        if isinstance(inst, (Phi, Load)) or not inst.is_pure:
                            continue
                        if inst in hoisted:
                            continue
                        if not all(
                            _is_invariant_operand(op, loop, hoisted)
                            for op in inst.operands
                        ):
                            continue
                        block.remove(inst)
                        preheader.insert_before_terminator(inst)
                        hoisted.add(inst)
                        progress = True
                        changed = True
        return changed
