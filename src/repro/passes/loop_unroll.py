"""Full unrolling of small counted loops.

The pass targets the canonical self-loop shape the workload generator emits
for small fixed-trip inner loops::

    preheader:
        br ^header
    header:
        %i   = phi i64 [0:i64, ^preheader], [%inext, ^header]
        ... body ...
        %inext = add i64 %i, 1:i64
        %cond  = icmp slt %inext, N:i64
        condbr %cond, ^header, ^exit

When the trip count is a known constant not larger than ``max_trip`` the
loop body is replicated that many times in straight-line form.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Branch, CondBranch, Instruction, Phi
from ..ir.loops import Loop, find_loops
from ..ir.values import ConstantInt, Value
from .pass_manager import FunctionPass, register_pass


@register_pass
class LoopUnroll(FunctionPass):
    """Fully unroll single-block counted loops with small constant trips."""

    name = "loop-unroll"

    def __init__(self, max_trip: int = 8):
        self.max_trip = max_trip

    def run_on_function(self, function: Function) -> bool:
        changed = False
        # Re-discover loops after each unroll since the CFG changes.
        progress = True
        while progress:
            progress = False
            for loop in find_loops(function):
                if self._try_unroll(function, loop):
                    progress = True
                    changed = True
                    break
        return changed

    # ------------------------------------------------------------------
    def _try_unroll(self, function: Function, loop: Loop) -> bool:
        header = loop.header
        if loop.blocks != {header}:
            return False
        trip = self._constant_trip(loop)
        if trip is None or trip <= 0 or trip > self.max_trip:
            return False
        preheader = loop.preheader()
        if preheader is None:
            return False
        term = header.terminator
        if not isinstance(term, CondBranch):
            return False
        exit_block = term.if_false if term.if_true is header else term.if_true
        if exit_block is header:
            return False

        phis = header.phis()
        body = [inst for inst in header.instructions if not isinstance(inst, Phi)]
        body = [inst for inst in body if not inst.is_terminator]

        # Current value of each phi for the iteration being emitted.
        current: Dict[Phi, Value] = {}
        for phi in phis:
            init = phi.incoming_value_for(preheader)
            if init is None:
                return False
            current[phi] = init

        new_blocks: List[BasicBlock] = []
        # Remap of original instruction -> its clone in the latest iteration,
        # needed so uses of body values *after* the loop refer to the final
        # iteration's clones.
        last_clone: Dict[Instruction, Value] = {}

        for iteration in range(trip):
            block = BasicBlock(f"{header.name}.unroll{iteration}")
            function.blocks.insert(function.blocks.index(header), block)
            block.parent = function
            new_blocks.append(block)
            mapping: Dict[Value, Value] = dict(current)
            for inst in body:
                clone = inst.clone()
                clone.operands = [mapping.get(op, op) for op in clone.operands]
                clone.name = f"{inst.name}.it{iteration}" if inst.name else ""
                block.append(clone)
                mapping[inst] = clone
                last_clone[inst] = clone
            # Advance phi values using the latch (in-loop) incoming operand.
            next_values: Dict[Phi, Value] = {}
            for phi in phis:
                latch_value = phi.incoming_value_for(header)
                if latch_value is None:
                    return False
                next_values[phi] = mapping.get(latch_value, latch_value)
            current = next_values
            if iteration > 0:
                prev = new_blocks[iteration - 1]
                prev.append(Branch(block))

        # Wire: preheader -> first unrolled block -> ... -> exit block.
        pre_term = preheader.terminator
        assert pre_term is not None
        pre_term.replace_operand(header, new_blocks[0])
        new_blocks[-1].append(Branch(exit_block))

        # Values flowing out of the loop: phis referenced after the loop take
        # their final value; body instructions referenced after the loop take
        # their last-iteration clone.
        for phi in phis:
            function.replace_all_uses_with(phi, current[phi])
        for inst in body:
            clone = last_clone.get(inst)
            if clone is not None:
                for user in function.uses_of(inst):
                    if user.parent is not None and user.parent not in (header,):
                        user.replace_operand(inst, clone)

        # Phis in the exit block now receive their values from the last
        # unrolled block instead of the old header.
        for phi in exit_block.phis():
            for i, incoming in enumerate(phi.incoming_blocks):
                if incoming is header:
                    phi.incoming_blocks[i] = new_blocks[-1]
                    phi.operands[i] = self._remap_exit_value(
                        phi.operands[i], current, last_clone, phis
                    )

        # Finally delete the original header.
        for inst in list(header.instructions):
            header.remove(inst)
        function.remove_block(header)
        return True

    @staticmethod
    def _remap_exit_value(
        value: Value,
        current: Dict[Phi, Value],
        last_clone: Dict[Instruction, Value],
        phis: List[Phi],
    ) -> Value:
        if isinstance(value, Phi) and value in current:
            return current[value]
        if isinstance(value, Instruction) and value in last_clone:
            return last_clone[value]
        return value

    # ------------------------------------------------------------------
    def _constant_trip(self, loop: Loop) -> Optional[int]:
        """Exact trip count for step-1 counted self-loops, else None."""
        header = loop.header
        phi = loop.induction_phi()
        if phi is None:
            return None
        term = header.terminator
        if not isinstance(term, CondBranch):
            return None
        cond = term.condition
        from ..ir.instructions import BinaryOp, ICmp

        if not isinstance(cond, ICmp) or cond.predicate not in ("slt", "sle"):
            return None
        bound = cond.rhs
        if not isinstance(bound, ConstantInt):
            return None
        init = None
        step_value = None
        latch_value = phi.incoming_value_for(header)
        for value, block in phi.incoming():
            if block is not header and isinstance(value, ConstantInt):
                init = value.value
        if not isinstance(latch_value, BinaryOp) or latch_value.opcode != "add":
            return None
        if latch_value.lhs is phi and isinstance(latch_value.rhs, ConstantInt):
            step_value = latch_value.rhs.value
        elif latch_value.rhs is phi and isinstance(latch_value.lhs, ConstantInt):
            step_value = latch_value.lhs.value
        if init is None or step_value != 1:
            return None
        # The comparison may be on the phi or on the incremented value.
        compare_on_next = cond.lhs is latch_value
        count = bound.value - init
        if cond.predicate == "sle":
            count += 1
        if not compare_on_next:
            count += 1 if cond.lhs is phi else 0
        return count if count > 0 else None
