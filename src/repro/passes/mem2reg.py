"""Scalar promotion passes operating on allocas.

Full SSA construction (phi insertion over the dominance frontier) is not
needed for the workloads in this project: the generator emits scalars in SSA
form already and uses allocas only for thread-private temporaries that are
read and written within a single block.  Two conservative but sound passes
cover those patterns:

- :class:`StoreLoadForwarding` forwards a stored value to subsequent loads of
  the same pointer within a basic block (when no intervening instruction can
  modify memory).
- :class:`DeadStoreElimination` deletes a store that is overwritten by a
  later store to the same pointer within the same block with no intervening
  read or call.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.function import Function
from ..ir.instructions import AtomicRMW, Call, Instruction, Load, Store
from ..ir.values import Value
from .pass_manager import FunctionPass, register_pass


def _may_write_memory(inst: Instruction) -> bool:
    return isinstance(inst, (Store, Call, AtomicRMW))


@register_pass
class StoreLoadForwarding(FunctionPass):
    """Forward stored values to later loads of the same pointer in a block."""

    name = "mem2reg"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        for block in function.blocks:
            known: Dict[int, Value] = {}
            for inst in list(block.instructions):
                if isinstance(inst, Store) and not inst.is_volatile:
                    known[id(inst.pointer)] = inst.value
                    continue
                if isinstance(inst, Load) and not inst.is_volatile:
                    forwarded = known.get(id(inst.pointer))
                    if forwarded is not None and forwarded.type == inst.type:
                        function.replace_all_uses_with(inst, forwarded)
                        block.remove(inst)
                        changed = True
                    continue
                if _may_write_memory(inst):
                    # A call or an aliased store may change any location.
                    known.clear()
        return changed


@register_pass
class DeadStoreElimination(FunctionPass):
    """Remove stores overwritten before any possible read."""

    name = "dse"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        for block in function.blocks:
            pending: Dict[int, Store] = {}
            for inst in list(block.instructions):
                if isinstance(inst, Store) and not inst.is_volatile:
                    previous: Optional[Store] = pending.get(id(inst.pointer))
                    if previous is not None:
                        block.remove(previous)
                        changed = True
                    pending[id(inst.pointer)] = inst
                    continue
                if isinstance(inst, (Load, Call, AtomicRMW)):
                    # Any read or opaque call may observe pending stores.
                    pending.clear()
        return changed
