"""Pass infrastructure: pass base classes, registry and the pass manager.

The paper's dataset-augmentation step compiles each benchmark under many
different *flag sequences* — ordered subsets of the ``-O3`` pipeline.  Here a
flag sequence is simply a list of registered pass names executed in order by
the :class:`PassManager`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..ir.function import Function
from ..ir.module import Module


class FunctionPass:
    """A transformation applied to one function at a time."""

    #: registry name; subclasses must override.
    name: str = "<abstract>"

    def run_on_function(self, function: Function) -> bool:
        """Transform ``function`` in place; return True if anything changed."""
        raise NotImplementedError

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for fn in module.functions:
            if fn.is_declaration:
                continue
            changed |= self.run_on_function(fn)
        return changed


class ModulePass:
    """A transformation applied to a whole module."""

    name: str = "<abstract>"

    def run_on_module(self, module: Module) -> bool:
        raise NotImplementedError


PASS_REGISTRY: Dict[str, Callable[[], object]] = {}


def register_pass(cls):
    """Class decorator adding a pass to the global registry by its name."""
    if not getattr(cls, "name", None) or cls.name == "<abstract>":
        raise ValueError(f"pass {cls.__name__} must define a unique name")
    if cls.name in PASS_REGISTRY:
        raise ValueError(f"duplicate pass name {cls.name!r}")
    PASS_REGISTRY[cls.name] = cls
    return cls


def create_pass(name: str):
    """Instantiate a registered pass by name."""
    try:
        factory = PASS_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown pass {name!r}; known passes: {sorted(PASS_REGISTRY)}"
        ) from exc
    return factory()


def available_passes() -> List[str]:
    """Names of all registered passes (sorted)."""
    return sorted(PASS_REGISTRY)


@dataclass
class PassStatistics:
    """Book-keeping about one pass-manager run."""

    executed: List[str] = field(default_factory=list)
    changed: Dict[str, int] = field(default_factory=dict)

    def record(self, name: str, changed: bool) -> None:
        self.executed.append(name)
        self.changed[name] = self.changed.get(name, 0) + (1 if changed else 0)


class PassManager:
    """Runs an ordered sequence of passes over a module.

    Parameters
    ----------
    passes:
        Pass names (strings) or pass instances.
    verify_each:
        When True the IR verifier runs after every pass; used heavily by the
        test suite to localize miscompilations.
    """

    def __init__(self, passes: Sequence[object] = (), verify_each: bool = False):
        self.passes: List[object] = []
        for item in passes:
            self.add(item)
        self.verify_each = verify_each
        self.statistics = PassStatistics()

    def add(self, pass_or_name) -> "PassManager":
        if isinstance(pass_or_name, str):
            self.passes.append(create_pass(pass_or_name))
        else:
            self.passes.append(pass_or_name)
        return self

    @property
    def pass_names(self) -> List[str]:
        return [getattr(p, "name", type(p).__name__) for p in self.passes]

    def run(self, module: Module) -> bool:
        """Run every pass in order; return True if the module changed."""
        from ..ir.verifier import assert_valid

        changed_any = False
        for pass_obj in self.passes:
            changed = bool(pass_obj.run_on_module(module))
            changed_any |= changed
            self.statistics.record(getattr(pass_obj, "name", type(pass_obj).__name__), changed)
            if self.verify_each:
                assert_valid(module)
        return changed_any


def run_passes(
    module: Module,
    pass_names: Iterable[str],
    verify_each: bool = False,
) -> Module:
    """Convenience wrapper: run ``pass_names`` over ``module`` in place."""
    PassManager(list(pass_names), verify_each=verify_each).run(module)
    return module


def apply_flag_sequence(
    module: Module,
    sequence: Sequence[str],
    verify_each: bool = False,
    clone: bool = True,
) -> Module:
    """Apply one flag sequence, optionally on a clone of the module.

    This is the augmentation primitive of the paper: the same source module
    compiled under different sequences produces structurally different IR
    (and therefore different graphs) with identical semantics and identical
    configuration label.
    """
    target = module.clone() if clone else module
    run_passes(target, sequence, verify_each=verify_each)
    target.metadata["flag_sequence"] = list(sequence)
    return target
