"""Optimization pipelines (the ``-O1/-O2/-O3`` analogues).

The concrete pass ordering loosely follows LLVM's legacy pass manager at the
corresponding levels: early cleanup, scalar optimizations, loop
optimizations, then a late cleanup round.  The exact ordering matters less
than the fact that *subsets* of this list produce diverse but semantically
equivalent IR — that is what the paper's augmentation step exploits.
"""

from __future__ import annotations

from typing import List, Sequence

#: the full -O3 analogue used as the sampling basis for flag sequences.
O3_PIPELINE: List[str] = [
    "simplifycfg",
    "mem2reg",
    "instcombine",
    "reassociate",
    "constfold",
    "constprop",
    "cse",
    "simplifycfg",
    "inline",
    "instcombine",
    "gvn",
    "licm",
    "loop-unroll",
    "constfold",
    "instcombine",
    "dse",
    "dce",
    "deadargelim",
    "globalopt",
    "deadfunc",
    "unreachable-block-elim",
    "simplifycfg",
    "dce",
]

#: a lighter -O2 analogue (no unrolling, single instcombine round).
O2_PIPELINE: List[str] = [
    "simplifycfg",
    "mem2reg",
    "instcombine",
    "constfold",
    "constprop",
    "cse",
    "inline",
    "gvn",
    "licm",
    "dse",
    "dce",
    "simplifycfg",
    "dce",
]

#: -O1: basic cleanup only.
O1_PIPELINE: List[str] = [
    "simplifycfg",
    "instcombine",
    "constfold",
    "dce",
]

#: -O0: nothing.
O0_PIPELINE: List[str] = []

PIPELINES = {
    "O0": O0_PIPELINE,
    "O1": O1_PIPELINE,
    "O2": O2_PIPELINE,
    "O3": O3_PIPELINE,
}


def pipeline(level: str) -> List[str]:
    """Return the pass list for an optimization level (``"O0"``..``"O3"``)."""
    try:
        return list(PIPELINES[level])
    except KeyError as exc:
        raise KeyError(f"unknown optimization level {level!r}") from exc


def default_compilation_sequence() -> List[str]:
    """The sequence used when a benchmark is compiled "with default flags".

    The paper compiles benchmarks at their default O2/O3 when measuring
    timings (step C); we use O2 which keeps regions structurally rich.
    """
    return pipeline("O2")


def describe_sequence(sequence: Sequence[str]) -> str:
    """Human-readable one-line description of a flag sequence."""
    return " -> ".join(sequence) if sequence else "<empty>"
