"""Control-flow graph simplification."""

from __future__ import annotations

from typing import List

from ..ir.block import BasicBlock
from ..ir.cfg import predecessors_map, reachable_blocks
from ..ir.function import Function, remove_block_and_fix_phis
from ..ir.instructions import Branch, CondBranch, Phi
from ..ir.values import ConstantInt
from .pass_manager import FunctionPass, register_pass


@register_pass
class SimplifyCFG(FunctionPass):
    """Fold constant branches, delete unreachable blocks, merge chains.

    The three steps are applied repeatedly until none of them fires, which
    mirrors LLVM's ``-simplifycfg`` closely enough for augmentation purposes.
    """

    name = "simplifycfg"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            progress |= self._fold_constant_branches(function)
            progress |= self._remove_unreachable(function)
            progress |= self._merge_straightline(function)
            changed |= progress
        return changed

    # ------------------------------------------------------------- step 1
    def _fold_constant_branches(self, function: Function) -> bool:
        changed = False
        for block in function.blocks:
            term = block.terminator
            if not isinstance(term, CondBranch):
                continue
            cond = term.condition
            if not isinstance(cond, ConstantInt):
                continue
            taken = term.if_true if cond.value else term.if_false
            not_taken = term.if_false if cond.value else term.if_true
            block.remove(term)
            block.append(Branch(taken))
            if not_taken is not taken:
                # This block is no longer a predecessor of the dead edge's
                # target; drop the corresponding phi entries.
                for phi in not_taken.phis():
                    phi.remove_incoming(block)
            changed = True
        return changed

    # ------------------------------------------------------------- step 2
    def _remove_unreachable(self, function: Function) -> bool:
        if not function.blocks:
            return False
        reachable = reachable_blocks(function)
        dead = [b for b in function.blocks if b not in reachable]
        for block in dead:
            for inst in list(block.instructions):
                block.remove(inst)
            remove_block_and_fix_phis(function, block)
        return bool(dead)

    # ------------------------------------------------------------- step 3
    def _merge_straightline(self, function: Function) -> bool:
        """Merge a block into its unique successor when that successor has a
        unique predecessor (a -> b with no other edges)."""
        changed = False
        preds = predecessors_map(function)
        for block in list(function.blocks):
            term = block.terminator
            if not isinstance(term, Branch):
                continue
            succ = term.target
            if succ is block:
                continue
            if len(preds.get(succ, [])) != 1:
                continue
            if succ is function.entry_block:
                continue
            # Rewrite succ's phis: with a single predecessor each phi has at
            # most one incoming value, which simply replaces the phi.
            for phi in list(succ.phis()):
                incoming = phi.incoming_value_for(block)
                if incoming is None and phi.operands:
                    incoming = phi.operands[0]
                if incoming is not None:
                    function.replace_all_uses_with(phi, incoming)
                succ.remove(phi)
            # Splice succ's instructions after removing block's terminator.
            block.remove(term)
            moved: List = list(succ.instructions)
            for inst in moved:
                succ.remove(inst)
                block.append(inst)
            # Phis in succ's successors must now name `block` as the
            # incoming predecessor instead of `succ`.
            for next_block in block.successors():
                for phi in next_block.phis():
                    for i, incoming_block in enumerate(phi.incoming_blocks):
                        if incoming_block is succ:
                            phi.incoming_blocks[i] = block
            remove_block_and_fix_phis(function, succ)
            changed = True
            # predecessor map is stale after a merge; recompute lazily.
            preds = predecessors_map(function)
        return changed
