"""Online inference serving: artefact registry, micro-batched prediction
service, embedding cache and telemetry.

The offline pipeline (:mod:`repro.core`) trains predictors; this package
deploys them.  ``ReproPipeline.export_artifacts`` writes each fold's
predictor into an :class:`ArtifactRegistry`; a :class:`PredictionService`
reloads it (integrity-checked) and answers region → configuration queries
with micro-batching and fingerprint-keyed caching.  An
:class:`EnsemblePredictionService` serves *all* exported folds of a base
name behind one endpoint (mean-softmax or majority-vote combination), the
registry supports retention (``gc``/``pin``), and caches persist
(``EmbeddingCache.dump``/``load``) so restarted servers start hot.

Deployment is declarative: a :class:`DeploymentSpec` names a deployment
and points it at an artifact (version-pinned or latest) or a fold group,
and a :class:`ModelHub` serves many named deployments from one process —
one shared :class:`EmbeddingCache`/:class:`CheckpointDaemon`, one
:class:`BatcherWorkerPool` draining every deployment's micro-batch queue,
runtime ``load``/``unload``/``reload``, and atomic alias flips
(``prod → v0003``) for zero-downtime version swaps.  Both serving
front-ends implement the one :class:`Predictor` protocol the hub routes
over.

The wire protocol lives in :mod:`repro.serving.http`: a stdlib JSON/HTTP
front-end over the hub (``POST /v1/models/<name>/predict``,
``GET /v1/models``, per-model metrics, admin load/unload/alias routes —
plus the legacy ``POST /v1/predict``, ``GET /healthz``, ``GET /metrics``),
with a :class:`CheckpointDaemon` dumping the cache on an interval so a
crashed server restarts warm.  ``python -m repro.serving`` (or the
``repro-serve`` console script) serves registry artifacts from the
command line — one model or many (``--model``, repeatable).

Observability: every served prediction can be recorded into an
append-only, crash-safe on-disk journal (:class:`JournalWriter` /
:class:`JournalReader`, ``ModelHub(journal_dir=...)``), carrying per-stage
span timings from the trace layer (:mod:`repro.serving.trace`), and the
journal feeds windowed drift alerts (:mod:`repro.serving.drift`,
``GET /v1/models/<name>/drift``), offline A/B replay of recorded traffic
(:func:`replay_ab`) and the ``repro-journal`` CLI.  ``GET /metrics``
additionally serves a Prometheus text exposition
(``?format=prometheus``).

All forward passes run through the stateless inference engine
(:mod:`repro.engine`): one immutable :class:`~repro.engine.ExecutionPlan`
per micro-batch, evaluated without locks (inference is reentrant, so
concurrent micro-batches overlap) and — for ensembles — fanned to every
fold in a single fold-stacked sweep rather than one forward per member.
"""

from .batcher import BatcherWorkerPool, MicroBatcher, PooledBatcher
from .cache import CacheEntry, CheckpointDaemon, EmbeddingCache
from .costmodel import (
    AdmissionController,
    CalibrationError,
    CostModelCalibrator,
    LatencyCostModel,
    OverCapacityError,
    cost_model_summary,
    estimate_capacity,
    load_cost_model,
    save_cost_model,
)
from .drift import DriftConfig, detect_drift, label_distribution, total_variation
from .deployment import (
    SHED_POLICIES,
    BatchingConfig,
    DeploymentSpec,
    DeploymentSpecError,
    Predictor,
    SLOConfig,
    batching_config_from_dict,
    batching_config_to_dict,
    deployment_spec_from_dict,
    deployment_spec_to_dict,
    slo_config_from_dict,
    slo_config_to_dict,
)
from .hub import (
    Deployment,
    DeploymentExistsError,
    DeploymentNotFoundError,
    DeploymentQuarantinedError,
    HubError,
    ModelHub,
)
from .ensemble import (
    EnsembleConfig,
    EnsemblePredictionResult,
    EnsemblePredictionService,
    combine_majority_vote,
    combine_mean_softmax,
)
from .registry import (
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactNotFoundError,
    ArtifactRef,
    ArtifactRegistry,
    LoadedArtifact,
)
from .http import (
    PredictionHTTPServer,
    RequestError,
    ServingApp,
    error_payload,
    result_to_dict,
)
from .journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalError,
    JournalReader,
    JournalWriter,
)
from .replay import replay_ab, replayable_graphs
from .replica import (
    DrainingError,
    ReplicaConfig,
    ReplicaError,
    ReplicaSupervisor,
    ReplicaUnavailableError,
    default_start_method,
    request_affinity_key,
)
from .serialization import (
    GRAPH_SCHEMA_VERSION,
    SerializationError,
    configuration_from_dict,
    configuration_to_dict,
    label_space_from_dict,
    label_space_to_dict,
    program_graph_from_dict,
    program_graph_from_json,
    program_graph_to_dict,
    vocabulary_from_dict,
    vocabulary_to_dict,
)
from .service import PredictionResult, PredictionService, Request, ServiceConfig
from .stats import ServingStats, aggregate_snapshots, render_prometheus
from .trace import SPAN_ORDER, span

__all__ = [
    "MicroBatcher",
    "BatcherWorkerPool",
    "PooledBatcher",
    "CacheEntry",
    "CheckpointDaemon",
    "EmbeddingCache",
    "AdmissionController",
    "CalibrationError",
    "CostModelCalibrator",
    "LatencyCostModel",
    "OverCapacityError",
    "cost_model_summary",
    "estimate_capacity",
    "load_cost_model",
    "save_cost_model",
    "SHED_POLICIES",
    "BatchingConfig",
    "SLOConfig",
    "batching_config_from_dict",
    "batching_config_to_dict",
    "slo_config_from_dict",
    "slo_config_to_dict",
    "DeploymentSpec",
    "DeploymentSpecError",
    "Predictor",
    "deployment_spec_from_dict",
    "deployment_spec_to_dict",
    "Deployment",
    "DeploymentExistsError",
    "DeploymentNotFoundError",
    "DeploymentQuarantinedError",
    "HubError",
    "ModelHub",
    "PredictionHTTPServer",
    "RequestError",
    "ServingApp",
    "error_payload",
    "result_to_dict",
    "GRAPH_SCHEMA_VERSION",
    "SerializationError",
    "program_graph_from_dict",
    "program_graph_from_json",
    "program_graph_to_dict",
    "EnsembleConfig",
    "EnsemblePredictionResult",
    "EnsemblePredictionService",
    "combine_majority_vote",
    "combine_mean_softmax",
    "ArtifactError",
    "ArtifactIntegrityError",
    "ArtifactNotFoundError",
    "ArtifactRef",
    "ArtifactRegistry",
    "LoadedArtifact",
    "configuration_from_dict",
    "configuration_to_dict",
    "label_space_from_dict",
    "label_space_to_dict",
    "vocabulary_from_dict",
    "vocabulary_to_dict",
    "PredictionResult",
    "PredictionService",
    "Request",
    "ServiceConfig",
    "ServingStats",
    "aggregate_snapshots",
    "render_prometheus",
    "SPAN_ORDER",
    "span",
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "JournalReader",
    "JournalWriter",
    "DriftConfig",
    "detect_drift",
    "label_distribution",
    "total_variation",
    "replay_ab",
    "replayable_graphs",
    "DrainingError",
    "ReplicaConfig",
    "ReplicaError",
    "ReplicaSupervisor",
    "ReplicaUnavailableError",
    "default_start_method",
    "request_affinity_key",
]
