"""Online inference serving: artefact registry, micro-batched prediction
service, embedding cache and telemetry.

The offline pipeline (:mod:`repro.core`) trains predictors; this package
deploys them.  ``ReproPipeline.export_artifacts`` writes each fold's
predictor into an :class:`ArtifactRegistry`; a :class:`PredictionService`
reloads it (integrity-checked) and answers region → configuration queries
with micro-batching and fingerprint-keyed caching.  An
:class:`EnsemblePredictionService` serves *all* exported folds of a base
name behind one endpoint (mean-softmax or majority-vote combination), the
registry supports retention (``gc``/``pin``), and caches persist
(``EmbeddingCache.dump``/``load``) so restarted servers start hot.
"""

from .batcher import MicroBatcher
from .cache import CacheEntry, EmbeddingCache
from .ensemble import (
    EnsembleConfig,
    EnsemblePredictionResult,
    EnsemblePredictionService,
    combine_majority_vote,
    combine_mean_softmax,
)
from .registry import (
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactNotFoundError,
    ArtifactRef,
    ArtifactRegistry,
    LoadedArtifact,
)
from .serialization import (
    configuration_from_dict,
    configuration_to_dict,
    label_space_from_dict,
    label_space_to_dict,
    vocabulary_from_dict,
    vocabulary_to_dict,
)
from .service import PredictionResult, PredictionService, Request, ServiceConfig
from .stats import ServingStats

__all__ = [
    "MicroBatcher",
    "CacheEntry",
    "EmbeddingCache",
    "EnsembleConfig",
    "EnsemblePredictionResult",
    "EnsemblePredictionService",
    "combine_majority_vote",
    "combine_mean_softmax",
    "ArtifactError",
    "ArtifactIntegrityError",
    "ArtifactNotFoundError",
    "ArtifactRef",
    "ArtifactRegistry",
    "LoadedArtifact",
    "configuration_from_dict",
    "configuration_to_dict",
    "label_space_from_dict",
    "label_space_to_dict",
    "vocabulary_from_dict",
    "vocabulary_to_dict",
    "PredictionResult",
    "PredictionService",
    "Request",
    "ServiceConfig",
    "ServingStats",
]
