"""Online inference serving: artefact registry, micro-batched prediction
service, embedding cache and telemetry.

The offline pipeline (:mod:`repro.core`) trains predictors; this package
deploys them.  ``ReproPipeline.export_artifacts`` writes each fold's
predictor into an :class:`ArtifactRegistry`; a :class:`PredictionService`
reloads it (integrity-checked) and answers region → configuration queries
with micro-batching and fingerprint-keyed caching.  An
:class:`EnsemblePredictionService` serves *all* exported folds of a base
name behind one endpoint (mean-softmax or majority-vote combination), the
registry supports retention (``gc``/``pin``), and caches persist
(``EmbeddingCache.dump``/``load``) so restarted servers start hot.

The wire protocol lives in :mod:`repro.serving.http`: a stdlib JSON/HTTP
front-end (``POST /v1/predict``, ``GET /healthz``, ``GET /metrics``) over
either service, with a :class:`CheckpointDaemon` dumping the cache on an
interval so a crashed server restarts warm.  ``python -m repro.serving``
(or the ``repro-serve`` console script) serves a registry artifact from
the command line.

All forward passes run through the stateless inference engine
(:mod:`repro.engine`): one immutable :class:`~repro.engine.ExecutionPlan`
per micro-batch, evaluated without locks (inference is reentrant, so
concurrent micro-batches overlap) and — for ensembles — fanned to every
fold in a single fold-stacked sweep rather than one forward per member.
"""

from .batcher import MicroBatcher
from .cache import CacheEntry, CheckpointDaemon, EmbeddingCache
from .ensemble import (
    EnsembleConfig,
    EnsemblePredictionResult,
    EnsemblePredictionService,
    combine_majority_vote,
    combine_mean_softmax,
)
from .registry import (
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactNotFoundError,
    ArtifactRef,
    ArtifactRegistry,
    LoadedArtifact,
)
from .http import (
    PredictionHTTPServer,
    RequestError,
    ServingApp,
    error_payload,
    result_to_dict,
)
from .serialization import (
    GRAPH_SCHEMA_VERSION,
    SerializationError,
    configuration_from_dict,
    configuration_to_dict,
    label_space_from_dict,
    label_space_to_dict,
    program_graph_from_dict,
    program_graph_from_json,
    program_graph_to_dict,
    vocabulary_from_dict,
    vocabulary_to_dict,
)
from .service import PredictionResult, PredictionService, Request, ServiceConfig
from .stats import ServingStats

__all__ = [
    "MicroBatcher",
    "CacheEntry",
    "CheckpointDaemon",
    "EmbeddingCache",
    "PredictionHTTPServer",
    "RequestError",
    "ServingApp",
    "error_payload",
    "result_to_dict",
    "GRAPH_SCHEMA_VERSION",
    "SerializationError",
    "program_graph_from_dict",
    "program_graph_from_json",
    "program_graph_to_dict",
    "EnsembleConfig",
    "EnsemblePredictionResult",
    "EnsemblePredictionService",
    "combine_majority_vote",
    "combine_mean_softmax",
    "ArtifactError",
    "ArtifactIntegrityError",
    "ArtifactNotFoundError",
    "ArtifactRef",
    "ArtifactRegistry",
    "LoadedArtifact",
    "configuration_from_dict",
    "configuration_to_dict",
    "label_space_from_dict",
    "label_space_to_dict",
    "vocabulary_from_dict",
    "vocabulary_to_dict",
    "PredictionResult",
    "PredictionService",
    "Request",
    "ServiceConfig",
    "ServingStats",
]
