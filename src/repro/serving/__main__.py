"""Command-line HTTP serving entry point (a thin shim over the model hub).

Serve the latest version of one artifact (the legacy single-model form —
it builds a one-deployment hub under the hood, so ``POST /v1/predict``
and the named route ``POST /v1/models/<name>/predict`` both work)::

    python -m repro.serving --root /path/to/registry --name skylake-demo-fold0

Serve every exported fold of a base name as an ensemble, with background
cache checkpointing every 30 seconds (the checkpoint file doubles as the
warm-up file on the next start, so a crashed or restarted server answers
its first burst from cache)::

    python -m repro.serving --root /path/to/registry --ensemble skylake-demo \
        --port 8080 --checkpoint-path /var/tmp/repro-cache.npz \
        --checkpoint-interval 30

Serve several named models from one process — ``--model`` is repeatable
and takes ``NAME=ARTIFACT[@VERSION]`` for a single model or
``NAME=ensemble:BASE[:STRATEGY]`` for a fold ensemble; ``--alias`` maps a
stable public name onto one of them (flip it at runtime via
``POST /v1/models/<alias>/alias``)::

    python -m repro.serving --root /path/to/registry \
        --model numa=skylake-demo-fold0@v0001 \
        --model ens=ensemble:skylake-demo:majority-vote \
        --alias prod=ens --default numa

Scale past the GIL with ``--replicas N``: the same model set is served by
a pool of N worker processes (each hosting a full hub) behind one HTTP
port, with fingerprint-affinity routing, heartbeat-driven respawn,
recycle-after-N, and transparent failover — a dying worker fails zero
requests.  In this mode ``--checkpoint-path`` names a *directory* of
per-replica cache dumps; respawned workers warm-start from their slot's
dump before entering rotation::

    python -m repro.serving --root /path/to/registry --name skylake-demo-fold0 \
        --replicas 4 --recycle-after 100000 --checkpoint-path /var/tmp/repro-ckpt

The installed console script ``repro-serve`` is an alias for this module.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Tuple

from .costmodel import DEFAULT_COST_MODEL_NAME
from .deployment import (
    SHED_POLICIES,
    DeploymentSpec,
    DeploymentSpecError,
    SLOConfig,
)
from .ensemble import STRATEGIES
from .http import (
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_REQUEST_TIMEOUT_S,
    PredictionHTTPServer,
)
from .deployment import deployment_spec_to_dict
from .hub import HubError, ModelHub
from .registry import ArtifactError
from .replica import ReplicaConfig, ReplicaSupervisor


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve trained predictors (single models, fold ensembles, "
        "or several named deployments at once) over JSON/HTTP.",
    )
    parser.add_argument("--root", required=True, help="artifact registry root directory")
    what = parser.add_mutually_exclusive_group(required=False)
    what.add_argument("--name", help="serve one artifact name (latest version)")
    what.add_argument(
        "--ensemble", metavar="BASE", help="serve every '<BASE>-fold<k>' artifact"
    )
    parser.add_argument(
        "--model",
        action="append",
        default=[],
        metavar="NAME=TARGET",
        help="deploy TARGET under NAME (repeatable); TARGET is "
        "'ARTIFACT[@VERSION]' or 'ensemble:BASE[:STRATEGY]'",
    )
    parser.add_argument(
        "--alias",
        action="append",
        default=[],
        metavar="ALIAS=NAME",
        help="point a stable public name at one deployment (repeatable)",
    )
    parser.add_argument(
        "--default",
        metavar="NAME",
        help="deployment answering the unnamed legacy route POST /v1/predict "
        "(defaults to the first deployment)",
    )
    parser.add_argument("--version", help="pin a version (only with --name)")
    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="mean-softmax",
        help="ensemble combination strategy (only with --ensemble)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument(
        "--max-wait-ms", type=float, default=2.0, help="micro-batching window"
    )
    parser.add_argument("--cache-capacity", type=int, default=1024)
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the embedding cache"
    )
    parser.add_argument(
        "--pool-workers",
        type=int,
        default=2,
        help="worker threads of the shared batcher pool draining every "
        "deployment's micro-batch queue",
    )
    parser.add_argument(
        "--checkpoint-path",
        help="dump the (shared) cache here on an interval and on shutdown; "
        "also used as the warm-up file at startup if it exists",
    )
    parser.add_argument(
        "--checkpoint-interval", type=float, default=30.0, metavar="SECONDS"
    )
    parser.add_argument(
        "--warmup-path",
        help="explicit warm-up file (defaults to --checkpoint-path)",
    )
    parser.add_argument(
        "--journal-dir",
        help="record every served prediction into JSONL segments under this "
        "directory (query them with repro-journal)",
    )
    parser.add_argument(
        "--journal-no-graphs",
        action="store_true",
        help="journal telemetry only, without the replayable request graphs "
        "(smaller segments, no offline A/B replay)",
    )
    parser.add_argument(
        "--slo-p95-ms",
        type=float,
        metavar="MS",
        help="p95 latency target applied to every deployment (drives "
        "deadline-aware batch closing when a cost model is loaded)",
    )
    parser.add_argument(
        "--slo-max-queue-ms",
        type=float,
        metavar="MS",
        help="admission budget: predicted queueing beyond this sheds (429)",
    )
    parser.add_argument(
        "--slo-max-concurrency",
        type=int,
        metavar="N",
        help="admission budget: at most N requests in flight per deployment",
    )
    parser.add_argument(
        "--shed-policy",
        choices=SHED_POLICIES,
        default="none",
        help="'shed' enforces the SLO budgets with structured 429s; "
        "'none' (default) only reports them in GET /v1/capacity",
    )
    parser.add_argument(
        "--cost-model",
        metavar="NAME[@VERSION]",
        help="load a calibrated latency cost model from the registry "
        f"(bare '@VERSION' pins the default name "
        f"{DEFAULT_COST_MODEL_NAME!r}; fit one with "
        "CostModelCalibrator over a journal)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        metavar="N",
        help="serve from a pool of N worker processes (each hosting a full "
        "hub) with fingerprint-affinity routing, heartbeat respawn and "
        "transparent failover; in this mode --checkpoint-path names a "
        "directory of per-replica cache dumps",
    )
    parser.add_argument(
        "--recycle-after",
        type=int,
        metavar="N",
        help="retire and replace a replica after it has answered N "
        "requests (bounds slow leaks; only with --replicas)",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="replica heartbeat cadence (only with --replicas)",
    )
    parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="kill and respawn a replica silent for this long "
        "(only with --replicas)",
    )
    parser.add_argument(
        "--start-method",
        choices=("forkserver", "spawn"),
        help="multiprocessing start method for replica workers "
        "(default: forkserver where available, else spawn)",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=DEFAULT_REQUEST_TIMEOUT_S
    )
    parser.add_argument("--max-body-bytes", type=int, default=DEFAULT_MAX_BODY_BYTES)
    parser.add_argument(
        "--verbose", action="store_true", help="log one line per HTTP request"
    )
    return parser


def build_slo(args: argparse.Namespace) -> Optional[SLOConfig]:
    """The SLO block the CLI flags describe (None when none were given)."""
    if (
        args.slo_p95_ms is None
        and args.slo_max_queue_ms is None
        and args.slo_max_concurrency is None
        and args.shed_policy == "none"
    ):
        return None
    try:
        return SLOConfig(
            p95_ms=args.slo_p95_ms,
            max_queue_ms=args.slo_max_queue_ms,
            max_concurrency=args.slo_max_concurrency,
            shed_policy=args.shed_policy,
        )
    except ValueError as exc:
        raise DeploymentSpecError(str(exc)) from exc


def _parse_cost_model(entry: str) -> Tuple[str, Optional[str]]:
    """``NAME[@VERSION]`` → (name, version); bare ``@vNNNN`` pins the
    default cost-model name."""
    name, separator, version = entry.partition("@")
    if separator and not version:
        raise DeploymentSpecError(
            f"--cost-model takes NAME[@VERSION], got {entry!r}"
        )
    return name or DEFAULT_COST_MODEL_NAME, version if separator else None


def _parse_model_arg(entry: str, args: argparse.Namespace) -> DeploymentSpec:
    """One ``NAME=TARGET`` CLI entry → a DeploymentSpec."""
    name, separator, target = entry.partition("=")
    if not separator or not name or not target:
        raise DeploymentSpecError(
            f"--model takes NAME=TARGET, got {entry!r}"
        )
    common = dict(
        max_batch_size=args.max_batch_size,
        max_wait_s=args.max_wait_ms / 1000.0,
        cache_capacity=args.cache_capacity,
        enable_cache=not args.no_cache,
        slo=build_slo(args),
    )
    if target.startswith("ensemble:"):
        rest = target[len("ensemble:"):]
        base, separator, strategy = rest.partition(":")
        if not base:
            raise DeploymentSpecError(
                f"--model {entry!r}: ensemble target needs a base name "
                f"('NAME=ensemble:BASE[:STRATEGY]')"
            )
        return DeploymentSpec(
            name=name,
            fold_group=base,
            strategy=strategy if separator else "mean-softmax",
            **common,
        )
    artifact, separator, version = target.partition("@")
    return DeploymentSpec(
        name=name,
        artifact=artifact,
        version=version if separator else None,
        **common,
    )


def build_specs(args: argparse.Namespace) -> List[DeploymentSpec]:
    """Every deployment the CLI asked for (legacy flags become one spec)."""
    specs = [_parse_model_arg(entry, args) for entry in args.model]
    common = dict(
        max_batch_size=args.max_batch_size,
        max_wait_s=args.max_wait_ms / 1000.0,
        cache_capacity=args.cache_capacity,
        enable_cache=not args.no_cache,
        slo=build_slo(args),
    )
    if args.name:
        specs.append(
            DeploymentSpec(
                name=args.name, artifact=args.name, version=args.version, **common
            )
        )
    if args.ensemble:
        specs.append(
            DeploymentSpec(
                name=args.ensemble,
                fold_group=args.ensemble,
                strategy=args.strategy,
                **common,
            )
        )
    return specs


def _parse_aliases(entries: Sequence[str]) -> List[Tuple[str, str]]:
    aliases = []
    for entry in entries:
        alias, separator, target = entry.partition("=")
        if not separator or not alias or not target:
            raise DeploymentSpecError(f"--alias takes ALIAS=NAME, got {entry!r}")
        aliases.append((alias, target))
    return aliases


def build_hub(args: argparse.Namespace) -> ModelHub:
    """Resolve every spec and assemble the hub (shared cache + daemon)."""
    hub = ModelHub(
        args.root,
        cache_capacity=max(args.cache_capacity, 1),
        enable_cache=not args.no_cache,
        warmup_path=args.warmup_path or args.checkpoint_path,
        checkpoint_path=args.checkpoint_path,
        checkpoint_interval_s=args.checkpoint_interval,
        pool_workers=args.pool_workers,
        journal_dir=args.journal_dir,
        journal_record_graphs=not args.journal_no_graphs,
    )
    if args.cost_model:
        # Installed before the specs load, so every deployment's batcher is
        # born knowing its deadline target.
        name, version = _parse_cost_model(args.cost_model)
        hub.reload_cost_model(name, version)
    for spec in build_specs(args):
        hub.load(spec)
    for alias, target in _parse_aliases(args.alias):
        hub.alias(alias, target)
    if args.default:
        hub.set_default(args.default)
    return hub


def build_supervisor(args: argparse.Namespace) -> ReplicaSupervisor:
    """The replica-pool equivalent of :func:`build_hub`.

    Specs are parsed and validated here (same failure modes as the
    in-process path) but resolved inside each worker; ``--checkpoint-path``
    becomes the directory of per-slot cache dumps new workers warm-start
    from.
    """
    config = ReplicaConfig(
        registry_root=args.root,
        specs=[deployment_spec_to_dict(spec) for spec in build_specs(args)],
        aliases=_parse_aliases(args.alias),
        default=args.default,
        cost_model=(
            _parse_cost_model(args.cost_model) if args.cost_model else None
        ),
        cache_capacity=max(args.cache_capacity, 1),
        enable_cache=not args.no_cache,
        pool_workers=args.pool_workers,
        journal_dir=args.journal_dir,
        journal_record_graphs=not args.journal_no_graphs,
        checkpoint_dir=args.checkpoint_path,
        checkpoint_interval_s=args.checkpoint_interval,
        replicas=args.replicas,
        start_method=args.start_method,
        heartbeat_interval_s=args.heartbeat_interval,
        heartbeat_timeout_s=args.heartbeat_timeout,
        recycle_after=args.recycle_after,
    )
    return ReplicaSupervisor(config)


def _fail(code: str, message: str) -> int:
    """One machine-readable error line on stderr, exit 2 — the same
    convention as the ``repro-journal`` CLI."""
    print(
        json.dumps({"error": {"code": code, "message": message}}, sort_keys=True),
        file=sys.stderr,
    )
    return 2


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.version and not args.name:
        return _fail("invalid-config", "--version requires --name")
    if not (args.name or args.ensemble or args.model):
        return _fail(
            "invalid-config",
            "nothing to serve: pass --name, --ensemble, or --model",
        )
    if args.no_cache and (args.warmup_path or args.checkpoint_path):
        return _fail(
            "invalid-config",
            "--warmup-path/--checkpoint-path require the cache "
            "(drop --no-cache)",
        )
    replicated = args.replicas is not None
    if replicated and args.warmup_path:
        return _fail(
            "invalid-config",
            "--warmup-path is not supported with --replicas (each replica "
            "warm-starts from its own per-slot checkpoint dump)",
        )
    if args.recycle_after is not None and not replicated:
        return _fail("invalid-config", "--recycle-after requires --replicas")
    try:
        target = build_supervisor(args) if replicated else build_hub(args)
    except DeploymentSpecError as exc:
        return _fail("invalid-spec", str(exc))
    except (ArtifactError, HubError, ValueError) as exc:
        return _fail("invalid-config", str(exc))

    server = PredictionHTTPServer(
        target,
        host=args.host,
        port=args.port,
        request_timeout_s=args.request_timeout,
        max_body_bytes=args.max_body_bytes,
        quiet=not args.verbose,
    )
    names = ", ".join(target.names())
    aliases = target.aliases()
    alias_note = (
        " (aliases: " + ", ".join(f"{a}→{t}" for a, t in sorted(aliases.items())) + ")"
        if aliases
        else ""
    )
    pool_note = f" across {args.replicas} replica(s)" if replicated else ""
    print(
        f"serving {len(target)} model(s) [{names}]{alias_note}{pool_note} "
        f"on {server.url}",
        flush=True,
    )
    try:
        server.run()
    except (ArtifactError, HubError) as exc:
        # Replica workers resolve their specs at spawn time, so a bad
        # artifact surfaces here rather than in build_supervisor().
        return _fail("startup-failed", str(exc))
    return 0


if __name__ == "__main__":
    sys.exit(main())
