"""Command-line HTTP serving entry point.

Serve the latest version of one artifact::

    python -m repro.serving --root /path/to/registry --name skylake-demo-fold0

Serve every exported fold of a base name as an ensemble, with background
cache checkpointing every 30 seconds (the checkpoint file doubles as the
warm-up file on the next start, so a crashed or restarted server answers
its first burst from cache)::

    python -m repro.serving --root /path/to/registry --ensemble skylake-demo \
        --port 8080 --checkpoint-path /var/tmp/repro-cache.npz \
        --checkpoint-interval 30

The installed console script ``repro-serve`` is an alias for this module.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .cache import CheckpointDaemon
from .ensemble import EnsembleConfig, EnsemblePredictionService, STRATEGIES
from .http import (
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_REQUEST_TIMEOUT_S,
    PredictionHTTPServer,
)
from .registry import ArtifactError
from .service import PredictionService, ServiceConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve a trained predictor (or fold ensemble) over JSON/HTTP.",
    )
    parser.add_argument("--root", required=True, help="artifact registry root directory")
    what = parser.add_mutually_exclusive_group(required=True)
    what.add_argument("--name", help="serve one artifact name (latest version)")
    what.add_argument(
        "--ensemble", metavar="BASE", help="serve every '<BASE>-fold<k>' artifact"
    )
    parser.add_argument("--version", help="pin a version (only with --name)")
    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="mean-softmax",
        help="ensemble combination strategy (only with --ensemble)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument(
        "--max-wait-ms", type=float, default=2.0, help="micro-batching window"
    )
    parser.add_argument("--cache-capacity", type=int, default=1024)
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the embedding cache"
    )
    parser.add_argument(
        "--checkpoint-path",
        help="dump the cache here on an interval and on shutdown; also used "
        "as the warm-up file at startup if it exists",
    )
    parser.add_argument(
        "--checkpoint-interval", type=float, default=30.0, metavar="SECONDS"
    )
    parser.add_argument(
        "--warmup-path",
        help="explicit warm-up file (defaults to --checkpoint-path)",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=DEFAULT_REQUEST_TIMEOUT_S
    )
    parser.add_argument("--max-body-bytes", type=int, default=DEFAULT_MAX_BODY_BYTES)
    parser.add_argument(
        "--verbose", action="store_true", help="log one line per HTTP request"
    )
    return parser


def build_service(args: argparse.Namespace):
    warmup = args.warmup_path or args.checkpoint_path
    common = dict(
        max_batch_size=args.max_batch_size,
        max_wait_s=args.max_wait_ms / 1000.0,
        cache_capacity=args.cache_capacity,
        enable_cache=not args.no_cache,
        warmup_path=warmup,
    )
    if args.ensemble:
        return EnsemblePredictionService.from_registry(
            args.root,
            args.ensemble,
            config=EnsembleConfig(strategy=args.strategy, **common),
        )
    return PredictionService.from_registry(
        args.root, args.name, version=args.version, config=ServiceConfig(**common)
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.version and not args.name:
        parser.error("--version requires --name")
    if args.no_cache and (args.warmup_path or args.checkpoint_path):
        print(
            "error: --warmup-path/--checkpoint-path require the cache "
            "(drop --no-cache)",
            file=sys.stderr,
        )
        return 2
    try:
        service = build_service(args)
    except (ArtifactError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    checkpoint = None
    if args.checkpoint_path:
        checkpoint = CheckpointDaemon(
            service.cache, args.checkpoint_path, interval_s=args.checkpoint_interval
        )

    server = PredictionHTTPServer(
        service,
        host=args.host,
        port=args.port,
        checkpoint=checkpoint,
        request_timeout_s=args.request_timeout,
        max_body_bytes=args.max_body_bytes,
        quiet=not args.verbose,
    )
    serving = service.describe()
    print(f"serving {serving} on {server.url}", flush=True)
    server.run()
    return 0


if __name__ == "__main__":
    sys.exit(main())
