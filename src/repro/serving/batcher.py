"""Micro-batching request queue.

The RGCN forward pass amortises extremely well over a batch (one big
block-diagonal matmul instead of many small ones), so the async front-end
of the prediction service does not run requests one by one.  Instead a
background thread collects requests until either ``max_batch_size`` are
pending or the oldest request has waited ``max_wait_s``, then runs the
whole group through a single runner call — the classic latency/throughput
micro-batching trade-off of online inference servers.

Requests submitted before :meth:`MicroBatcher.start` simply queue up; this
makes batch formation deterministic in tests (enqueue N, start, observe one
batch of N).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, List, Optional, Sequence, Tuple


class MicroBatcher:
    """Groups submitted items and hands them to ``runner`` in batches.

    ``runner`` receives a list of items and must return one result per item,
    in order.  Each :meth:`submit` returns a :class:`concurrent.futures.Future`
    resolved with the corresponding result (or the runner's exception).
    """

    def __init__(
        self,
        runner: Callable[[List[Any]], Sequence[Any]],
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self._runner = runner
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self._queue: List[Tuple[Any, Future]] = []
        self._condition = threading.Condition()
        self._closed = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "MicroBatcher":
        with self._condition:
            if self._closed:
                raise RuntimeError("cannot start a closed MicroBatcher")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="repro-micro-batcher", daemon=True
                )
                self._thread.start()
        return self

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting work; drain what is already queued, then exit.

        If the worker thread is running it keeps draining even past a
        ``timeout`` on the join — queued futures are only failed when the
        batcher was never started, because then nothing will ever serve
        them.
        """
        with self._condition:
            self._closed = True
            self._condition.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout)
            return
        with self._condition:
            pending, self._queue = self._queue, []
        for _, future in pending:
            if future.set_running_or_notify_cancel():
                future.set_exception(RuntimeError("MicroBatcher closed before start"))

    def __enter__(self) -> "MicroBatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- frontend
    def submit(self, item: Any) -> Future:
        future: Future = Future()
        with self._condition:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            self._queue.append((item, future))
            self._condition.notify_all()
        return future

    @property
    def pending(self) -> int:
        with self._condition:
            return len(self._queue)

    # ------------------------------------------------------------- internals
    def _take_batch(self) -> Optional[List[Tuple[Any, Future]]]:
        """Block until a batch is ready (or the batcher is drained+closed)."""
        with self._condition:
            while not self._queue:
                if self._closed:
                    return None
                self._condition.wait()
            deadline = time.monotonic() + self.max_wait_s
            while len(self._queue) < self.max_batch_size and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._condition.wait(timeout=remaining)
            batch = self._queue[: self.max_batch_size]
            del self._queue[: self.max_batch_size]
            return batch

    def _loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            # Drop futures cancelled while queued; a cancelled future would
            # raise InvalidStateError on set_result and kill this thread.
            live = [
                (item, future)
                for item, future in batch
                if future.set_running_or_notify_cancel()
            ]
            if not live:
                continue
            items = [item for item, _ in live]
            try:
                results = self._runner(items)
                if len(results) != len(items):
                    raise RuntimeError(
                        f"runner returned {len(results)} results for {len(items)} items"
                    )
            except Exception as exc:  # propagate to every waiter in the batch
                for _, future in live:
                    future.set_exception(exc)
                continue
            for (_, future), result in zip(live, results):
                future.set_result(result)
