"""Micro-batching request queue.

The RGCN forward pass amortises extremely well over a batch (one big
block-diagonal matmul instead of many small ones), so the async front-end
of the prediction service does not run requests one by one.  Instead a
background thread collects requests until either ``max_batch_size`` are
pending or the oldest request has waited ``max_wait_s``, then runs the
whole group through a single runner call — the classic latency/throughput
micro-batching trade-off of online inference servers.

Requests submitted before :meth:`MicroBatcher.start` simply queue up; this
makes batch formation deterministic in tests (enqueue N, start, observe one
batch of N).

The batcher is ensemble-aware: ``fanout`` declares how many fold models
each batch fans out to (the runner builds one
:class:`~repro.engine.ExecutionPlan` per batch and evaluates every fold
against it, so a batch of B items costs one plan + one fold-stacked sweep,
not ``B x fanout`` forwards), and because the engine's inference path is
stateless/reentrant, ``workers > 1`` drains the queue with several threads
whose forward passes genuinely overlap — there is no forward lock left to
serialise them.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, List, Optional, Sequence, Tuple


class MicroBatcher:
    """Groups submitted items and hands them to ``runner`` in batches.

    ``runner`` receives a list of items and must return one result per item,
    in order.  Each :meth:`submit` returns a :class:`concurrent.futures.Future`
    resolved with the corresponding result (or the runner's exception).
    """

    def __init__(
        self,
        runner: Callable[[List[Any]], Sequence[Any]],
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        workers: int = 1,
        fanout: int = 1,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self._runner = runner
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        #: worker threads draining the queue concurrently.  Safe above any
        #: reentrant runner (the engine's stateless inference path); keep at
        #: 1 for strictly deterministic batch formation.
        self.workers = workers
        #: fold fan-out of each dispatched batch (ensemble member count) —
        #: purely descriptive, surfaced via :meth:`telemetry`.
        self.fanout = fanout
        self._queue: List[Tuple[Any, Future]] = []
        self._condition = threading.Condition()
        self._closed = False
        self._threads: List[threading.Thread] = []
        self._batches_dispatched = 0
        self._items_dispatched = 0

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "MicroBatcher":
        with self._condition:
            if self._closed:
                raise RuntimeError("cannot start a closed MicroBatcher")
            while len(self._threads) < self.workers:
                thread = threading.Thread(
                    target=self._loop,
                    name=f"repro-micro-batcher-{len(self._threads)}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
        return self

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting work; drain what is already queued, then exit.

        If worker threads are running they keep draining even past a
        ``timeout`` on the join — queued futures are only failed when the
        batcher was never started, because then nothing will ever serve
        them.
        """
        with self._condition:
            self._closed = True
            self._condition.notify_all()
            threads = list(self._threads)
        if threads:
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            for thread in threads:
                remaining = (
                    None if deadline is None else max(0.0, deadline - time.monotonic())
                )
                thread.join(remaining)
            return
        with self._condition:
            pending, self._queue = self._queue, []
        for _, future in pending:
            if future.set_running_or_notify_cancel():
                future.set_exception(RuntimeError("MicroBatcher closed before start"))

    def __enter__(self) -> "MicroBatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- frontend
    def submit(self, item: Any) -> Future:
        future: Future = Future()
        with self._condition:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            self._queue.append((item, future))
            self._condition.notify_all()
        return future

    @property
    def pending(self) -> int:
        with self._condition:
            return len(self._queue)

    def telemetry(self) -> dict:
        """Scheduling counters: batches/items dispatched, fold fan-out.

        These are scheduling facts only; whether the fan-out actually ran
        as one stacked sweep (vs the per-fold fallback) is the service's
        business — see ``ServingStats.snapshot()['engine']``.
        """
        with self._condition:
            batches = self._batches_dispatched
            items = self._items_dispatched
        return {
            "workers": self.workers,
            "fanout": self.fanout,
            "batches_dispatched": batches,
            "items_dispatched": items,
        }

    # ------------------------------------------------------------- internals
    def _take_batch(self) -> Optional[List[Tuple[Any, Future]]]:
        """Block until a batch is ready (or the batcher is drained+closed)."""
        with self._condition:
            while True:
                while not self._queue:
                    if self._closed:
                        return None
                    self._condition.wait()
                deadline = time.monotonic() + self.max_wait_s
                while len(self._queue) < self.max_batch_size and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._condition.wait(timeout=remaining)
                batch = self._queue[: self.max_batch_size]
                if not batch:
                    # Another worker drained the queue while this one waited
                    # out the batching window — go back to sleeping instead
                    # of dispatching (and counting) a phantom empty batch.
                    continue
                del self._queue[: self.max_batch_size]
                self._batches_dispatched += 1
                self._items_dispatched += len(batch)
                return batch

    def _loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            # Drop futures cancelled while queued; a cancelled future would
            # raise InvalidStateError on set_result and kill this thread.
            live = [
                (item, future)
                for item, future in batch
                if future.set_running_or_notify_cancel()
            ]
            if not live:
                continue
            items = [item for item, _ in live]
            try:
                results = self._runner(items)
                if len(results) != len(items):
                    raise RuntimeError(
                        f"runner returned {len(results)} results for {len(items)} items"
                    )
            except Exception as exc:  # propagate to every waiter in the batch
                for _, future in live:
                    future.set_exception(exc)
                continue
            for (_, future), result in zip(live, results):
                future.set_result(result)
