"""Micro-batching request queue.

The RGCN forward pass amortises extremely well over a batch (one big
block-diagonal matmul instead of many small ones), so the async front-end
of the prediction service does not run requests one by one.  Instead a
background thread collects requests until either ``max_batch_size`` are
pending or the oldest request has waited ``max_wait_s``, then runs the
whole group through a single runner call — the classic latency/throughput
micro-batching trade-off of online inference servers.

Requests submitted before :meth:`MicroBatcher.start` simply queue up; this
makes batch formation deterministic in tests (enqueue N, start, observe one
batch of N).

The batcher is ensemble-aware: ``fanout`` declares how many fold models
each batch fans out to (the runner builds one
:class:`~repro.engine.ExecutionPlan` per batch and evaluates every fold
against it, so a batch of B items costs one plan + one fold-stacked sweep,
not ``B x fanout`` forwards), and because the engine's inference path is
stateless/reentrant, ``workers > 1`` drains the queue with several threads
whose forward passes genuinely overlap — there is no forward lock left to
serialise them.

For multi-model serving, :class:`BatcherWorkerPool` multiplexes the same
micro-batching policy over *many* queues with one shared set of worker
threads: every deployment of a :class:`~repro.serving.hub.ModelHub` gets
its own :class:`PooledBatcher` (same surface as :class:`MicroBatcher`),
but a hub with twenty mostly-idle models pays for one thread pool, not
twenty.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..concurrency import TrackedCondition
from .trace import publish_queue_waits, reset_queue_waits

#: Predicts the latency of running one batch of the given items, or
#: ``None`` to abstain (e.g. no cost model calibrated yet).
CostEstimator = Callable[[List[Any]], Optional[float]]


def _deadline_limit(
    queue: Sequence[Tuple[Any, Future, float]],
    max_batch_size: int,
    cost_estimator: Optional[CostEstimator],
    latency_target_s: Optional[float],
) -> int:
    """Largest head-of-queue batch predicted under the latency target.

    Returns ``max_batch_size`` (no deadline cap) when no estimator/target
    is bound, when the estimator abstains, or when everything currently
    queued fits — the window may still grow in that case.  Called with the
    owning condition held; the estimator must be pure computation.
    """
    if cost_estimator is None or latency_target_s is None:
        return max_batch_size
    window = [entry[0] for entry in queue[:max_batch_size]]
    if len(window) <= 1:
        return max_batch_size
    limit = 1
    while limit < len(window):
        predicted = cost_estimator(window[: limit + 1])
        if predicted is None:
            return max_batch_size
        if predicted > latency_target_s:
            return limit
        limit += 1
    return max_batch_size


class MicroBatcher:
    """Groups submitted items and hands them to ``runner`` in batches.

    ``runner`` receives a list of items and must return one result per item,
    in order.  Each :meth:`submit` returns a :class:`concurrent.futures.Future`
    resolved with the corresponding result (or the runner's exception).
    """

    def __init__(
        self,
        runner: Callable[[List[Any]], Sequence[Any]],
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        workers: int = 1,
        fanout: int = 1,
        cost_estimator: Optional[CostEstimator] = None,
        latency_target_s: Optional[float] = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        if latency_target_s is not None and latency_target_s <= 0:
            raise ValueError("latency_target_s must be > 0")
        self._runner = runner
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        #: deadline-aware closing: with both bound, a forming batch is
        #: sealed as soon as the estimator predicts one more add would
        #: exceed the target (the deployment's p95 SLO).
        self._cost_estimator = cost_estimator
        self._latency_target_s = latency_target_s
        self._deadline_sealed = 0
        #: worker threads draining the queue concurrently.  Safe above any
        #: reentrant runner (the engine's stateless inference path); keep at
        #: 1 for strictly deterministic batch formation.
        self.workers = workers
        #: fold fan-out of each dispatched batch (ensemble member count) —
        #: purely descriptive, surfaced via :meth:`telemetry`.
        self.fanout = fanout
        self._queue: List[Tuple[Any, Future, float]] = []
        self._condition = TrackedCondition(name="batcher.condition")
        self._closed = False
        self._threads: List[threading.Thread] = []
        self._batches_dispatched = 0
        self._items_dispatched = 0

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "MicroBatcher":
        with self._condition:
            if self._closed:
                raise RuntimeError("cannot start a closed MicroBatcher")
            while len(self._threads) < self.workers:
                thread = threading.Thread(
                    target=self._loop,
                    name=f"repro-micro-batcher-{len(self._threads)}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
        return self

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting work; drain what is already queued, then exit.

        If worker threads are running they keep draining even past a
        ``timeout`` on the join — queued futures are only failed when the
        batcher was never started, because then nothing will ever serve
        them.
        """
        with self._condition:
            self._closed = True
            self._condition.notify_all()
            threads = list(self._threads)
        if threads:
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            for thread in threads:
                remaining = (
                    None if deadline is None else max(0.0, deadline - time.monotonic())
                )
                thread.join(remaining)
            return
        with self._condition:
            pending, self._queue = self._queue, []
        for _, future, _ in pending:
            if future.set_running_or_notify_cancel():
                future.set_exception(RuntimeError("MicroBatcher closed before start"))

    def __enter__(self) -> "MicroBatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- frontend
    def submit(self, item: Any) -> Future:
        future: Future = Future()
        with self._condition:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            self._queue.append((item, future, time.monotonic()))
            self._condition.notify_all()
        return future

    @property
    def pending(self) -> int:
        with self._condition:
            return len(self._queue)

    def telemetry(self) -> dict:
        """Scheduling counters: batches/items dispatched, fold fan-out.

        These are scheduling facts only; whether the fan-out actually ran
        as one stacked sweep (vs the per-fold fallback) is the service's
        business — see ``ServingStats.snapshot()['engine']``.
        """
        with self._condition:
            batches = self._batches_dispatched
            items = self._items_dispatched
            sealed = self._deadline_sealed
        return {
            "workers": self.workers,
            "fanout": self.fanout,
            "batches_dispatched": batches,
            "items_dispatched": items,
            "deadline_sealed": sealed,
        }

    # ------------------------------------------------------------- internals
    def _take_batch(self) -> Optional[List[Tuple[Any, Future, float]]]:
        """Block until a batch is ready (or the batcher is drained+closed)."""
        with self._condition:
            while True:
                while not self._queue:
                    if self._closed:
                        return None
                    self._condition.wait()
                deadline = time.monotonic() + self.max_wait_s
                while not self._closed:
                    # The cap moves as the queue changes, so recompute it on
                    # every wake-up rather than once per window.
                    limit = _deadline_limit(
                        self._queue,
                        self.max_batch_size,
                        self._cost_estimator,
                        self._latency_target_s,
                    )
                    if len(self._queue) >= limit:
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._condition.wait(timeout=remaining)
                limit = _deadline_limit(
                    self._queue,
                    self.max_batch_size,
                    self._cost_estimator,
                    self._latency_target_s,
                )
                batch = self._queue[:limit]
                if not batch:
                    # Another worker drained the queue while this one waited
                    # out the batching window — go back to sleeping instead
                    # of dispatching (and counting) a phantom empty batch.
                    continue
                if limit < self.max_batch_size and len(batch) == limit:
                    self._deadline_sealed += 1
                del self._queue[:limit]
                self._batches_dispatched += 1
                self._items_dispatched += len(batch)
                return batch

    def _loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            _run_batch(self._runner, batch)


def _run_batch(
    runner: Callable[[List[Any]], Sequence[Any]],
    batch: Sequence[Tuple[Any, Future, float]],
) -> None:
    """Run one dispatched batch and resolve its futures (shared by the
    single-queue :class:`MicroBatcher` and the pooled variant below)."""
    # Drop futures cancelled while queued; a cancelled future would
    # raise InvalidStateError on set_result and kill the worker thread.
    live = [
        (item, future, enqueued)
        for item, future, enqueued in batch
        if future.set_running_or_notify_cancel()
    ]
    if not live:
        return
    items = [item for item, _, _ in live]
    # Publish each item's time-in-queue for the runner (predict_many) to
    # fold into its per-request traces — same thread, no signature change.
    dispatched = time.monotonic()
    token = publish_queue_waits([dispatched - enqueued for _, _, enqueued in live])
    try:
        results = runner(items)
        if len(results) != len(items):
            raise RuntimeError(
                f"runner returned {len(results)} results for {len(items)} items"
            )
    except Exception as exc:  # propagate to every waiter in the batch
        for _, future, _ in live:
            future.set_exception(exc)
        return
    finally:
        reset_queue_waits(token)
    for (_, future, _), result in zip(live, results):
        future.set_result(result)


class BatcherWorkerPool:
    """One shared set of worker threads draining many micro-batch queues.

    A :class:`~repro.serving.hub.ModelHub` serves many named deployments
    from one process; giving each its own :class:`MicroBatcher` thread set
    would scale threads with model count even though most models are idle
    most of the time.  The pool inverts that: deployments register
    lightweight :class:`PooledBatcher` queues (created via
    :meth:`batcher_factory`, signature-compatible with
    :class:`MicroBatcher`), and ``workers`` shared threads apply the same
    batching policy — dispatch a queue when it holds ``max_batch_size``
    items or its oldest item has waited ``max_wait_s`` — across all of
    them, oldest-work-first.

    The pool never runs two batches of one queue's items out of order
    (items are popped FIFO under the shared lock), but batches of
    *different* queues run concurrently, which is safe because every
    runner is the stateless engine path.
    """

    def __init__(self, workers: int = 2):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        # One lock for the pool *and* every member queue: scheduling looks
        # at all queues at once, so finer locking would buy contention, not
        # parallelism (the expensive part — the runner — runs unlocked).
        self._condition = TrackedCondition(name="hub-pool.condition")
        self._members: List["PooledBatcher"] = []
        self._threads: List[threading.Thread] = []
        self._closed = False
        self._batches_dispatched = 0
        self._items_dispatched = 0

    # ------------------------------------------------------------- factory
    def batcher_factory(
        self,
        runner: Callable[[List[Any]], Sequence[Any]],
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        workers: int = 1,  # noqa: ARG002 - pool-level; kept for signature parity
        fanout: int = 1,
        cost_estimator: Optional[CostEstimator] = None,
        latency_target_s: Optional[float] = None,
    ) -> "PooledBatcher":
        """Drop-in replacement for the :class:`MicroBatcher` constructor.

        ``workers`` is accepted for signature compatibility but ignored:
        worker threads belong to the pool, not to any one queue.
        """
        return PooledBatcher(
            self,
            runner,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            fanout=fanout,
            cost_estimator=cost_estimator,
            latency_target_s=latency_target_s,
        )

    # ------------------------------------------------------------ lifecycle
    def register(self, member: "PooledBatcher") -> None:
        with self._condition:
            if self._closed:
                # A fully-closed pool reopens on the next registration, so
                # a stopped hub can start again (and post-stop submits keep
                # the restart-on-demand contract of ServingFrontend.submit).
                # Mid-close — old workers still draining — is a genuine
                # lifecycle error and stays one.
                if any(thread.is_alive() for thread in self._threads):
                    raise RuntimeError(
                        "cannot register while the BatcherWorkerPool is closing"
                    )
                self._closed = False
                self._threads = []
            if member not in self._members:
                self._members.append(member)
            while len(self._threads) < self.workers:
                thread = threading.Thread(
                    target=self._loop,
                    name=f"repro-hub-batcher-{len(self._threads)}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
            self._condition.notify_all()

    def unregister(self, member: "PooledBatcher") -> None:
        with self._condition:
            if member in self._members:
                self._members.remove(member)
            self._condition.notify_all()

    def close(self) -> None:
        """Close every member queue (draining it), then stop the threads."""
        with self._condition:
            members = list(self._members)
        for member in members:
            member.close()
        with self._condition:
            self._closed = True
            self._condition.notify_all()
            threads = list(self._threads)
        for thread in threads:
            thread.join()

    def __enter__(self) -> "BatcherWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- telemetry
    def telemetry(self) -> dict:
        with self._condition:
            return {
                "workers": self.workers,
                "members": len(self._members),
                "batches_dispatched": self._batches_dispatched,
                "items_dispatched": self._items_dispatched,
            }

    # ------------------------------------------------------------- internals
    def _take(self) -> Optional[Tuple["PooledBatcher", List[Tuple[Any, Future]]]]:
        """Pick the next dispatchable (member, batch); block until one exists.

        Returns ``None`` when the pool is closed and every queue is empty.
        """
        with self._condition:
            while True:
                now = time.monotonic()
                best: Optional[Tuple[float, "PooledBatcher"]] = None
                next_deadline: Optional[float] = None
                draining = False
                for member in self._members:
                    enqueued = member._oldest_enqueue_time()
                    if enqueued is None:
                        continue
                    draining = True
                    ready = member._dispatchable(now)
                    if ready:
                        # Oldest head item first: global FIFO across models.
                        if best is None or enqueued < best[0]:
                            best = (enqueued, member)
                    else:
                        deadline = enqueued + member.max_wait_s
                        if next_deadline is None or deadline < next_deadline:
                            next_deadline = deadline
                if best is not None:
                    member = best[1]
                    batch = member._pop_batch_locked()
                    self._batches_dispatched += 1
                    self._items_dispatched += len(batch)
                    return member, batch
                if self._closed and not draining:
                    return None
                timeout = (
                    None if next_deadline is None else max(0.0, next_deadline - now)
                )
                self._condition.wait(timeout=timeout)

    def _loop(self) -> None:
        while True:
            task = self._take()
            if task is None:
                return
            member, batch = task
            try:
                _run_batch(member._runner, batch)
            finally:
                with self._condition:
                    member._in_flight -= 1
                    self._condition.notify_all()


class PooledBatcher:
    """One deployment's micro-batch queue, drained by a shared pool.

    Same surface as :class:`MicroBatcher` (``start``/``submit``/``close``/
    ``pending``/``telemetry``), so :class:`~repro.serving.service.ServingFrontend`
    uses either interchangeably; the difference is purely who owns the
    worker threads.  Items submitted before :meth:`start` queue up and are
    only dispatched once started, preserving MicroBatcher's deterministic
    enqueue-then-start batch formation.
    """

    def __init__(
        self,
        pool: BatcherWorkerPool,
        runner: Callable[[List[Any]], Sequence[Any]],
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        fanout: int = 1,
        cost_estimator: Optional[CostEstimator] = None,
        latency_target_s: Optional[float] = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        if latency_target_s is not None and latency_target_s <= 0:
            raise ValueError("latency_target_s must be > 0")
        self._pool = pool
        self._runner = runner
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.fanout = fanout
        self._cost_estimator = cost_estimator
        self._latency_target_s = latency_target_s
        self._deadline_sealed = 0
        self._queue: List[Tuple[Any, Future, float]] = []
        self._started = False
        self._closed = False
        self._in_flight = 0
        self._batches_dispatched = 0
        self._items_dispatched = 0

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "PooledBatcher":
        with self._pool._condition:
            if self._closed:
                raise RuntimeError("cannot start a closed PooledBatcher")
            self._started = True
        self._pool.register(self)
        return self

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting work; drain what is already queued, then detach.

        A started queue is drained by the pool's workers (closing makes it
        immediately dispatchable, skipping the batching window); a queue
        that was never started fails its pending futures, because nothing
        will ever serve them.
        """
        condition = self._pool._condition
        with condition:
            self._closed = True
            if not self._started:
                pending, self._queue = self._queue, []
                for _, future, _ in pending:
                    if future.set_running_or_notify_cancel():
                        future.set_exception(
                            RuntimeError("PooledBatcher closed before start")
                        )
            else:
                condition.notify_all()
                deadline = None if timeout is None else time.monotonic() + timeout
                while self._queue or self._in_flight:
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        break
                    condition.wait(timeout=remaining)
            drained = not self._queue and not self._in_flight
        if drained:
            self._pool.unregister(self)
        # A timed-out close leaves the member registered: the pool keeps
        # draining a closed queue, so the leftover futures still resolve
        # (mirroring MicroBatcher, whose workers keep draining past a
        # timed-out join) instead of hanging unreachable forever.

    def __enter__(self) -> "PooledBatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- frontend
    def submit(self, item: Any) -> Future:
        future: Future = Future()
        with self._pool._condition:
            if self._closed:
                raise RuntimeError("PooledBatcher is closed")
            self._queue.append((item, future, time.monotonic()))
            self._pool._condition.notify_all()
        return future

    @property
    def pending(self) -> int:
        with self._pool._condition:
            return len(self._queue)

    def telemetry(self) -> dict:
        with self._pool._condition:
            return {
                "workers": self._pool.workers,
                "fanout": self.fanout,
                "batches_dispatched": self._batches_dispatched,
                "items_dispatched": self._items_dispatched,
                "deadline_sealed": self._deadline_sealed,
                "pooled": True,
            }

    # ------------------------------------------------------------- internals
    # All helpers below are called by the pool with its condition held.
    def _oldest_enqueue_time(self) -> Optional[float]:
        return self._queue[0][2] if self._queue else None

    def _deadline_limit_locked(self) -> int:
        return _deadline_limit(
            self._queue,
            self.max_batch_size,
            self._cost_estimator,
            self._latency_target_s,
        )

    def _dispatchable(self, now: float) -> bool:
        if not self._queue:
            return False
        if self._closed:
            return True  # draining: skip the batching window
        if not self._started:
            return False  # pre-start submits wait for start()
        if len(self._queue) >= self.max_batch_size:
            return True
        limit = self._deadline_limit_locked()
        if limit < self.max_batch_size and len(self._queue) >= limit:
            return True  # deadline-sealed: one more add would blow the SLO
        return now >= self._queue[0][2] + self.max_wait_s

    def _pop_batch_locked(self) -> List[Tuple[Any, Future, float]]:
        limit = self._deadline_limit_locked()
        batch = list(self._queue[:limit])
        del self._queue[:limit]
        if limit < self.max_batch_size and len(batch) == limit:
            self._deadline_sealed += 1
        self._batches_dispatched += 1
        self._items_dispatched += len(batch)
        self._in_flight += 1
        return batch
