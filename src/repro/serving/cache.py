"""Thread-safe LRU cache for per-graph inference results.

The RGCN forward pass is the expensive part of serving; repeated requests
for the same code region (the common case for a deployed predictor — hot
loops get queried on every scheduling decision) should pay it once.
Entries are keyed on the canonical graph fingerprint
(:func:`repro.graphs.fingerprint.graph_fingerprint`), so any two requests
with identical encoded content share an entry no matter how they were
constructed.

The table can also be persisted (:meth:`EmbeddingCache.dump`) and reloaded
(:meth:`EmbeddingCache.load`), so a restarted server starts hot instead of
re-paying a forward pass per region on its first burst.
"""

from __future__ import annotations

import json
import os
import threading
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

#: reserved npz entry holding the JSON-encoded fingerprint index of a dump.
_INDEX_KEY = "__fingerprints__"


@dataclass(frozen=True)
class CacheEntry:
    """Cached outputs of one RGCN forward pass for one graph."""

    logits: np.ndarray
    graph_vector: np.ndarray


class EmbeddingCache:
    """LRU cache mapping graph fingerprints to :class:`CacheEntry` values."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def get(self, fingerprint: str) -> Optional[CacheEntry]:
        """Look up a fingerprint, promoting it to most-recently-used."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return entry

    def put(self, fingerprint: str, logits: np.ndarray, graph_vector: np.ndarray) -> None:
        """Insert (or refresh) an entry, evicting the least recently used."""
        entry = CacheEntry(
            logits=np.array(logits, dtype=np.float64, copy=True),
            graph_vector=np.array(graph_vector, dtype=np.float64, copy=True),
        )
        with self._lock:
            self._entries[fingerprint] = entry
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry *and* reset the hit/miss/eviction counters.

        A cleared cache reports a fresh ``hit_rate`` — counters surviving a
        clear would describe a population of entries that no longer exists.
        """
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    @property
    def hit_rate(self) -> float:
        with self._lock:
            hits = self.hits
            misses = self.misses
        total = hits + misses
        return hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        # One locked copy of every counter: a stats() taken mid-burst must
        # be internally consistent (hit_rate computed from the same reads).
        with self._lock:
            size = len(self._entries)
            hits = self.hits
            misses = self.misses
            evictions = self.evictions
        total = hits + misses
        return {
            "size": float(size),
            "capacity": float(self.capacity),
            "hits": float(hits),
            "misses": float(misses),
            "evictions": float(evictions),
            "hit_rate": hits / total if total else 0.0,
        }

    # ------------------------------------------------------------ persistence
    def _snapshot(self) -> List[Tuple[str, CacheEntry]]:
        """Entries in LRU order (least recently used first), under the lock."""
        with self._lock:
            return list(self._entries.items())

    def dump(self, path: str) -> int:
        """Persist the fingerprint → (logits, graph_vector) table to ``path``.

        Arrays stay float64 end to end, so a dumped-then-loaded entry replays
        bit-identical logits.  The write is atomic (temp file + rename): a
        crashed dump never leaves a torn warm-up file behind.  Returns the
        number of entries written.
        """
        entries = self._snapshot()
        arrays: Dict[str, np.ndarray] = {
            _INDEX_KEY: np.frombuffer(
                json.dumps([fingerprint for fingerprint, _ in entries]).encode("utf-8"),
                dtype=np.uint8,
            )
        }
        for i, (_, entry) in enumerate(entries):
            arrays[f"logits_{i}"] = entry.logits
            arrays[f"vector_{i}"] = entry.graph_vector
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp_path = os.path.join(directory, f".cache-dump-{uuid.uuid4().hex[:8]}.tmp")
        try:
            with open(tmp_path, "wb") as handle:
                np.savez(handle, **arrays)
            os.replace(tmp_path, path)
        except Exception:
            if os.path.exists(tmp_path):
                os.remove(tmp_path)
            raise
        return len(entries)

    def load(self, path: str) -> int:
        """Warm the cache from a :meth:`dump` file; returns entries loaded.

        Entries are inserted least-recently-used first, so the loaded cache
        has the same eviction order the dumped one had.  Loading into a
        smaller cache simply evicts the oldest entries on the way in.
        """
        with np.load(path) as data:
            if _INDEX_KEY not in data:
                raise ValueError(f"{path!r} was not written by EmbeddingCache.dump")
            fingerprints = json.loads(bytes(data[_INDEX_KEY].tobytes()).decode("utf-8"))
            loaded = [
                (fingerprint, data[f"logits_{i}"], data[f"vector_{i}"])
                for i, fingerprint in enumerate(fingerprints)
            ]
        for fingerprint, logits, vector in loaded:
            self.put(fingerprint, logits, vector)
        return len(loaded)
