"""Thread-safe LRU cache for per-graph inference results.

The RGCN forward pass is the expensive part of serving; repeated requests
for the same code region (the common case for a deployed predictor — hot
loops get queried on every scheduling decision) should pay it once.
Entries are keyed on the canonical graph fingerprint
(:func:`repro.graphs.fingerprint.graph_fingerprint`), so any two requests
with identical encoded content share an entry no matter how they were
constructed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np


@dataclass(frozen=True)
class CacheEntry:
    """Cached outputs of one RGCN forward pass for one graph."""

    logits: np.ndarray
    graph_vector: np.ndarray


class EmbeddingCache:
    """LRU cache mapping graph fingerprints to :class:`CacheEntry` values."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def get(self, fingerprint: str) -> Optional[CacheEntry]:
        """Look up a fingerprint, promoting it to most-recently-used."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return entry

    def put(self, fingerprint: str, logits: np.ndarray, graph_vector: np.ndarray) -> None:
        """Insert (or refresh) an entry, evicting the least recently used."""
        entry = CacheEntry(
            logits=np.array(logits, dtype=np.float64, copy=True),
            graph_vector=np.array(graph_vector, dtype=np.float64, copy=True),
        )
        with self._lock:
            self._entries[fingerprint] = entry
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        with self._lock:
            size = len(self._entries)
        return {
            "size": float(size),
            "capacity": float(self.capacity),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "hit_rate": self.hit_rate,
        }
