"""Thread-safe LRU cache for per-graph inference results.

The RGCN forward pass is the expensive part of serving; repeated requests
for the same code region (the common case for a deployed predictor — hot
loops get queried on every scheduling decision) should pay it once.
Entries are keyed on the canonical graph fingerprint
(:func:`repro.graphs.fingerprint.graph_fingerprint`), so any two requests
with identical encoded content share an entry no matter how they were
constructed.

The table can also be persisted (:meth:`EmbeddingCache.dump`) and reloaded
(:meth:`EmbeddingCache.load`), so a restarted server starts hot instead of
re-paying a forward pass per region on its first burst.
:class:`CheckpointDaemon` automates the dump side: a background thread
writes the cache to a fixed path on an interval (and on graceful stop),
skipping rounds where nothing changed, so a crashed server restarts warm
from its last checkpoint instead of cold.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..concurrency import TrackedLock, declare_blocking

#: reserved npz entry holding the JSON-encoded fingerprint index of a dump.
_INDEX_KEY = "__fingerprints__"


@dataclass(frozen=True)
class CacheEntry:
    """Cached outputs of one RGCN forward pass for one graph."""

    logits: np.ndarray
    graph_vector: np.ndarray


class EmbeddingCache:
    """LRU cache mapping graph fingerprints to :class:`CacheEntry` values."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = TrackedLock("cache.entries")
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: monotonic count of content changes (puts and clears, not reads);
        #: lets a checkpointer skip dumping a cache that has not changed.
        self._mutations = 0

    @property
    def mutation_count(self) -> int:
        with self._lock:
            return self._mutations

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def namespace_size(self, prefix: str) -> int:
        """Number of entries whose key starts with ``prefix``.

        Services namespace their keys with a model/version-set digest
        (``ServingFrontend.cache_namespace()``), so when many deployments
        share one cache — the hub's layout — this reports one model's
        share of the table (its per-model "warmth") without exposing keys.
        """
        with self._lock:
            return sum(1 for key in self._entries if key.startswith(prefix))

    def get(self, fingerprint: str) -> Optional[CacheEntry]:
        """Look up a fingerprint, promoting it to most-recently-used."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return entry

    def put(self, fingerprint: str, logits: np.ndarray, graph_vector: np.ndarray) -> None:
        """Insert (or refresh) an entry, evicting the least recently used."""
        entry = CacheEntry(
            logits=np.array(logits, dtype=np.float64, copy=True),
            graph_vector=np.array(graph_vector, dtype=np.float64, copy=True),
        )
        with self._lock:
            self._entries[fingerprint] = entry
            self._entries.move_to_end(fingerprint)
            self._mutations += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry *and* reset the hit/miss/eviction counters.

        A cleared cache reports a fresh ``hit_rate`` — counters surviving a
        clear would describe a population of entries that no longer exists.
        """
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self._mutations += 1

    @property
    def hit_rate(self) -> float:
        with self._lock:
            hits = self.hits
            misses = self.misses
        total = hits + misses
        return hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        # One locked copy of every counter: a stats() taken mid-burst must
        # be internally consistent (hit_rate computed from the same reads).
        with self._lock:
            size = len(self._entries)
            hits = self.hits
            misses = self.misses
            evictions = self.evictions
        total = hits + misses
        return {
            "size": float(size),
            "capacity": float(self.capacity),
            "hits": float(hits),
            "misses": float(misses),
            "evictions": float(evictions),
            "hit_rate": hits / total if total else 0.0,
        }

    # ------------------------------------------------------------ persistence
    def _snapshot(self) -> List[Tuple[str, CacheEntry]]:
        """Entries in LRU order (least recently used first), under the lock."""
        with self._lock:
            return list(self._entries.items())

    def dump(self, path: str) -> int:
        """Persist the fingerprint → (logits, graph_vector) table to ``path``.

        Arrays stay float64 end to end, so a dumped-then-loaded entry replays
        bit-identical logits.  The write is atomic (temp file + rename): a
        crashed dump never leaves a torn warm-up file behind.  Returns the
        number of entries written.
        """
        entries = self._snapshot()
        arrays: Dict[str, np.ndarray] = {
            _INDEX_KEY: np.frombuffer(
                json.dumps([fingerprint for fingerprint, _ in entries]).encode("utf-8"),
                dtype=np.uint8,
            )
        }
        for i, (_, entry) in enumerate(entries):
            arrays[f"logits_{i}"] = entry.logits
            arrays[f"vector_{i}"] = entry.graph_vector
        directory = os.path.dirname(os.path.abspath(path))
        tmp_path = os.path.join(directory, f".cache-dump-{uuid.uuid4().hex[:8]}.tmp")
        with declare_blocking("EmbeddingCache.dump"):
            os.makedirs(directory, exist_ok=True)
            try:
                with open(tmp_path, "wb") as handle:
                    np.savez(handle, **arrays)
                os.replace(tmp_path, path)
            except Exception:
                if os.path.exists(tmp_path):
                    os.remove(tmp_path)
                raise
        return len(entries)

    def load(self, path: str) -> int:
        """Warm the cache from a :meth:`dump` file; returns entries loaded.

        Entries are inserted least-recently-used first, so the loaded cache
        has the same eviction order the dumped one had.  Loading into a
        smaller cache simply evicts the oldest entries on the way in.
        """
        with declare_blocking("EmbeddingCache.load"), np.load(path) as data:
            if _INDEX_KEY not in data:
                raise ValueError(f"{path!r} was not written by EmbeddingCache.dump")
            fingerprints = json.loads(bytes(data[_INDEX_KEY].tobytes()).decode("utf-8"))
            loaded = [
                (fingerprint, data[f"logits_{i}"], data[f"vector_{i}"])
                for i, fingerprint in enumerate(fingerprints)
            ]
        for fingerprint, logits, vector in loaded:
            self.put(fingerprint, logits, vector)
        return len(loaded)


class CheckpointDaemon:
    """Background cache-dump checkpointing.

    Periodically persists an :class:`EmbeddingCache` to ``path`` via
    :meth:`EmbeddingCache.dump` (already atomic: temp file + rename, so a
    crash mid-checkpoint never leaves a torn file), and once more on
    graceful :meth:`stop`.  Rounds where the cache has not changed since the
    last checkpoint are skipped — an idle server does not rewrite an
    identical file every interval.  A failing dump (disk full, permissions)
    is recorded in :meth:`stats` and retried next round instead of killing
    the thread.
    """

    def __init__(self, cache: EmbeddingCache, path: str, interval_s: float = 30.0):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.cache = cache
        # fspath, not str(): handing a non-path object a checkpoint path
        # must raise, not checkpoint into a repr-named file.
        self.path = os.fspath(path)
        self.interval_s = float(interval_s)
        self._wake = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Guards checkpoint bookkeeping; dumps themselves serialise on it too
        # so a stop()-triggered final dump cannot interleave with a timer one
        # (hence allow_blocking: serialising the dump I/O is this lock's job).
        self._lock = TrackedLock("checkpoint.state", allow_blocking=True)
        # A never-mutated (empty) cache counts as clean: an idle server must
        # not overwrite a previous run's warm checkpoint with an empty dump.
        self._dumped_mutations = 0
        self.checkpoints = 0
        self.skipped = 0
        self.failures = 0
        self.last_error: Optional[str] = None
        self.last_checkpoint_unix: Optional[float] = None
        self.last_entries: Optional[int] = None

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "CheckpointDaemon":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._wake.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-cache-checkpoint", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_checkpoint: bool = True) -> None:
        """Stop the timer thread; by default write one last checkpoint."""
        thread = self._thread
        self._wake.set()
        if thread is not None:
            thread.join()
            self._thread = None
        if final_checkpoint:
            self.checkpoint_now()

    def __enter__(self) -> "CheckpointDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ---------------------------------------------------------- checkpoints
    def checkpoint_now(self, force: bool = False) -> Optional[int]:
        """Dump the cache if it changed since the last checkpoint.

        Returns the number of entries written, or ``None`` when the dump was
        skipped (unchanged cache) or failed (error recorded, not raised).
        """
        with self._lock:
            mutations = self.cache.mutation_count
            if not force and mutations == self._dumped_mutations:
                self.skipped += 1
                return None
            try:
                # Deliberate I/O under this lock: serialising concurrent
                # dumps is the lock's purpose (allow_blocking above).
                entries = self.cache.dump(self.path)  # lint: allow(lock-discipline)
            except Exception as exc:  # keep ticking; surface via stats()
                self.failures += 1
                self.last_error = f"{type(exc).__name__}: {exc}"
                return None
            self._dumped_mutations = mutations
            self.checkpoints += 1
            self.last_error = None
            self.last_checkpoint_unix = time.time()
            self.last_entries = entries
            return entries

    def _loop(self) -> None:
        while not self._wake.wait(timeout=self.interval_s):
            self.checkpoint_now()

    # -------------------------------------------------------------- export
    def stats(self) -> Dict[str, object]:
        """JSON-friendly checkpoint telemetry (rendered by ``/metrics``)."""
        with self._lock:
            return {
                "path": self.path,
                "interval_s": self.interval_s,
                "running": self.running,
                "checkpoints": self.checkpoints,
                "skipped": self.skipped,
                "failures": self.failures,
                "last_error": self.last_error,
                "last_checkpoint_unix": self.last_checkpoint_unix,
                "last_entries": self.last_entries,
            }
