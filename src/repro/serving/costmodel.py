"""Calibrated latency cost model, admission control and capacity estimates.

The serving analogue of the paper's performance modelling: predict what a
micro-batch will cost *before* running it, from plan shape alone, in the
``pure work x measured overhead factor`` style of the WSE-2 SUMMA compute
model.  The model is deliberately analytic — three affine stage models over
:class:`~repro.engine.PlanShape` features:

* ``plan_build_s  ~ a*nodes + b*edges + c``           (collation + CSR build)
* ``infer_s       ~ folds*(a*nodes + b*edges + c*graphs) + d``
* ``overhead_s    ~ a*graphs + b``                    (everything else)

and ``predict_batch_latency`` is their clamped sum.  The factors are not
guessed: :class:`CostModelCalibrator` fits them by least squares over the
per-stage spans the prediction journal already records for every served
batch (``JournalReader.calibration_rows``), so the model tracks the box it
runs on.  A fitted model round-trips through the artifact registry
(:func:`save_cost_model` / :func:`load_cost_model`) as a versioned
``cost-model`` artifact, which is what makes it hot-reloadable on a hub.

The predictions are *spent* in three places:

* the batchers seal a forming batch when the model predicts one more add
  would blow the deployment's p95 target (deadline-aware closing);
* :class:`AdmissionController` converts predicted cost + the deployment's
  SLO into concurrency/QPS budgets and sheds excess load with
  :class:`OverCapacityError` (the HTTP layer maps it to a structured 429
  with ``Retry-After``);
* :func:`estimate_capacity` answers "this deployment sustains X QPS at
  p95 < Y ms", which feeds ``hub.capacity_report()`` / ``GET /v1/capacity``.
"""

from __future__ import annotations

import errno
import hashlib
import json
import math
import os
import shutil
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..concurrency import TrackedLock
from ..engine import PlanShape
from .journal import calibration_rows as _extract_calibration_rows
from .registry import (
    MANIFEST_FILE,
    REGISTRY_FORMAT_VERSION,
    SAVE_ALLOCATION_RETRIES,
    ArtifactError,
    ArtifactRef,
    ArtifactRegistry,
)

#: Manifest ``kind`` distinguishing cost-model artifacts from model weights.
COST_MODEL_KIND = "cost-model"
#: Payload file inside a cost-model artifact version directory.
COST_MODEL_FILE = "costmodel.json"
#: Default registry name for the box's latency model.
DEFAULT_COST_MODEL_NAME = "latency-cost-model"
#: Serialization schema version for :meth:`LatencyCostModel.to_dict`.
COST_MODEL_SCHEMA_VERSION = 1

#: Latencies below this are treated as zero when computing relative errors.
_MAPE_FLOOR_S = 1e-6


class CalibrationError(ValueError):
    """Raised when the journal holds too little data to fit a model."""


class OverCapacityError(RuntimeError):
    """A deployment's admission budget is exhausted; retry later.

    ``retry_after_s`` is the controller's estimate of when capacity frees
    up (the HTTP layer rounds it up into a ``Retry-After`` header).
    """

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


def _predict_affine(coefficients: Sequence[float], features: Sequence[float]) -> float:
    """Clamped affine prediction — stage latencies are never negative."""
    total = 0.0
    for coefficient, feature in zip(coefficients, features):
        total += coefficient * feature
    return max(0.0, total)


@dataclass(frozen=True)
class LatencyCostModel:
    """Analytic per-micro-batch latency model over plan-shape features.

    Immutable (safe to share across deployments and hot-swap under load);
    all predictions are pure float arithmetic, cheap enough to call from
    inside the batcher's forming loop.
    """

    #: ``(per_node_s, per_edge_s, constant_s)`` for the plan-build stage.
    plan_build: Tuple[float, float, float]
    #: ``(per_fold_node_s, per_fold_edge_s, per_fold_graph_s, constant_s)``.
    infer: Tuple[float, float, float, float]
    #: ``(per_graph_s, constant_s)`` for everything outside the two spans.
    overhead: Tuple[float, float]
    #: Mean *per-request* shape seen during calibration (``num_graphs == 1``);
    #: the reference workload for capacity estimates.
    reference_shape: PlanShape
    #: Calibration provenance: batches/requests fitted, in-sample ``mape``,
    #: ``fitted_unix``, and (after :func:`load_cost_model`) ``artifact``.
    meta: Mapping[str, object] = field(default_factory=dict)

    def predict_plan_build(self, shape: PlanShape) -> float:
        return _predict_affine(
            self.plan_build, (shape.num_nodes, shape.num_edges, 1.0)
        )

    def predict_infer(self, shape: PlanShape, folds: int = 1) -> float:
        folds = max(1, int(folds))
        return _predict_affine(
            self.infer,
            (
                folds * shape.num_nodes,
                folds * shape.num_edges,
                folds * shape.num_graphs,
                1.0,
            ),
        )

    def predict_overhead(self, shape: PlanShape) -> float:
        return _predict_affine(self.overhead, (shape.num_graphs, 1.0))

    def predict_batch_latency(self, shape: PlanShape, folds: int = 1) -> float:
        """Predicted wall-clock seconds to serve one micro-batch of
        ``shape`` through a ``folds``-member deployment."""
        return (
            self.predict_plan_build(shape)
            + self.predict_infer(shape, folds)
            + self.predict_overhead(shape)
        )

    def predict_request_latency(self, folds: int = 1) -> float:
        """Predicted cost of a single reference-shaped request."""
        return self.predict_batch_latency(self.reference_shape, folds)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": COST_MODEL_SCHEMA_VERSION,
            "stages": {
                "plan_build": list(self.plan_build),
                "infer": list(self.infer),
                "overhead": list(self.overhead),
            },
            "reference_shape": dict(self.reference_shape.to_dict()),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LatencyCostModel":
        if not isinstance(data, Mapping):
            raise ValueError("cost model payload must be a JSON object")
        schema = data.get("schema")
        if schema != COST_MODEL_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported cost model schema {schema!r} "
                f"(expected {COST_MODEL_SCHEMA_VERSION})"
            )
        stages = data.get("stages")
        if not isinstance(stages, Mapping):
            raise ValueError("cost model payload missing 'stages'")
        try:
            plan_build = tuple(float(value) for value in stages["plan_build"])
            infer = tuple(float(value) for value in stages["infer"])
            overhead = tuple(float(value) for value in stages["overhead"])
            reference = PlanShape.from_dict(data["reference_shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed cost model payload: {exc}") from exc
        if len(plan_build) != 3 or len(infer) != 4 or len(overhead) != 2:
            raise ValueError("cost model stage coefficients have wrong arity")
        meta = data.get("meta")
        return cls(
            plan_build=plan_build,
            infer=infer,
            overhead=overhead,
            reference_shape=reference,
            meta=dict(meta) if isinstance(meta, Mapping) else {},
        )


# ------------------------------------------------------------- calibration


def _lstsq(rows: List[Sequence[float]], targets: List[float]) -> Tuple[float, ...]:
    matrix = np.asarray(rows, dtype=np.float64)
    vector = np.asarray(targets, dtype=np.float64)
    solution, _, _, _ = np.linalg.lstsq(matrix, vector, rcond=None)
    return tuple(float(value) for value in solution)


class CostModelCalibrator:
    """Fit a :class:`LatencyCostModel` from journalled per-stage spans.

    ``fit`` accepts a ``JournalReader`` (anything with a
    ``calibration_rows(model=...)`` method) or a raw iterable of journal
    records; either way the rows are deduplicated per batch (the journal
    records one entry per *request*, all sharing their batch's spans).
    """

    def __init__(self, min_batches: int = 8):
        if min_batches < 2:
            raise ValueError("min_batches must be >= 2")
        self.min_batches = int(min_batches)

    def rows(self, source, model: Optional[str] = None) -> List[Dict[str, float]]:
        extractor = getattr(source, "calibration_rows", None)
        if callable(extractor):
            return extractor(model=model)
        return _extract_calibration_rows(source, model=model)

    def fit(self, source, model: Optional[str] = None) -> LatencyCostModel:
        rows = self.rows(source, model=model)
        if len(rows) < self.min_batches:
            raise CalibrationError(
                f"need at least {self.min_batches} journalled batches to "
                f"calibrate, found {len(rows)} (serve more cache-miss "
                "traffic through a journalled hub first)"
            )

        plan_features = [[row["nodes"], row["edges"], 1.0] for row in rows]
        plan_targets = [row["plan_build_s"] for row in rows]
        infer_features = [
            [
                row["folds"] * row["nodes"],
                row["folds"] * row["edges"],
                row["folds"] * row["graphs"],
                1.0,
            ]
            for row in rows
        ]
        infer_targets = [row["infer_s"] for row in rows]
        overhead_features = [[row["graphs"], 1.0] for row in rows]
        overhead_targets = [
            max(0.0, row["batch_latency_s"] - row["plan_build_s"] - row["infer_s"])
            for row in rows
        ]

        model_fit = LatencyCostModel(
            plan_build=_lstsq(plan_features, plan_targets),
            infer=_lstsq(infer_features, infer_targets),
            overhead=_lstsq(overhead_features, overhead_targets),
            reference_shape=self._reference_shape(rows),
            meta={},
        )

        errors = []
        for row in rows:
            shape = PlanShape(
                num_graphs=int(row["graphs"]),
                num_nodes=int(row["nodes"]),
                num_edges=int(row["edges"]),
                num_relations=int(row["relations"]),
            )
            measured = row["batch_latency_s"]
            if measured <= _MAPE_FLOOR_S:
                continue
            predicted = model_fit.predict_batch_latency(
                shape, folds=int(row["folds"])
            )
            errors.append(abs(predicted - measured) / measured)
        mape = float(np.mean(errors)) if errors else 0.0

        meta = {
            "schema": COST_MODEL_SCHEMA_VERSION,
            "batches": len(rows),
            "requests": int(sum(row["graphs"] for row in rows)),
            "mape": round(mape, 6),
            "fitted_unix": time.time(),
        }
        return replace(model_fit, meta=meta)

    @staticmethod
    def _reference_shape(rows: List[Dict[str, float]]) -> PlanShape:
        total_graphs = max(1.0, sum(row["graphs"] for row in rows))
        return PlanShape(
            num_graphs=1,
            num_nodes=max(
                1, int(round(sum(row["nodes"] for row in rows) / total_graphs))
            ),
            num_edges=max(
                1, int(round(sum(row["edges"] for row in rows) / total_graphs))
            ),
            num_relations=max(
                1, int(round(max(row["relations"] for row in rows)))
            ),
        )


# ------------------------------------------------- registry persistence


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def save_cost_model(
    registry: ArtifactRegistry,
    model: LatencyCostModel,
    name: str = DEFAULT_COST_MODEL_NAME,
) -> ArtifactRef:
    """Persist a fitted model as the next version of ``name``.

    Same concurrency-safe idiom as ``ArtifactRegistry.save``: stage in a
    unique directory, then atomically rename into the allocated version,
    re-allocating on a rename race.  The artifact carries a regular
    manifest (``kind: cost-model`` + payload checksums), so ``resolve``,
    ``verify``, ``pin`` and ``gc`` all treat it like any other artifact.
    """
    if not name or "/" in name or "\\" in name or name.startswith("."):
        raise ValueError(f"invalid artifact name {name!r}")
    model_dir = os.path.join(registry.root, name)
    staging_dir = os.path.join(
        model_dir, f"vstaging-{os.getpid()}-{uuid.uuid4().hex[:8]}.staging"
    )
    os.makedirs(staging_dir)
    try:
        payload_path = os.path.join(staging_dir, COST_MODEL_FILE)
        with open(payload_path, "w", encoding="utf-8") as handle:
            json.dump(model.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        checksums = {
            entry: _sha256_file(os.path.join(staging_dir, entry))
            for entry in sorted(os.listdir(staging_dir))
        }
        for _ in range(SAVE_ALLOCATION_RETRIES):
            version = registry._next_version(name)
            final_dir = os.path.join(model_dir, version)
            manifest = {
                "format_version": REGISTRY_FORMAT_VERSION,
                "kind": COST_MODEL_KIND,
                "name": name,
                "version": version,
                "created_unix": time.time(),
                "metadata": dict(model.meta),
                "files": checksums,
            }
            with open(
                os.path.join(staging_dir, MANIFEST_FILE), "w", encoding="utf-8"
            ) as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
            try:
                os.replace(staging_dir, final_dir)
            except OSError as exc:
                if exc.errno in (errno.ENOTEMPTY, errno.EEXIST):
                    continue
                raise
            return ArtifactRef(name=name, version=version, path=final_dir)
        raise ArtifactError(
            f"could not allocate a version for {name!r} after "
            f"{SAVE_ALLOCATION_RETRIES} attempts"
        )
    except Exception:
        shutil.rmtree(staging_dir, ignore_errors=True)
        raise


def load_cost_model(
    registry: ArtifactRegistry,
    name: str = DEFAULT_COST_MODEL_NAME,
    version: Optional[str] = None,
) -> LatencyCostModel:
    """Load a persisted cost model (latest version unless pinned).

    The returned model's ``meta['artifact']`` records the ``name@version``
    it came from, so capacity reports can state which calibration is live.
    """
    ref = registry.resolve(name, version)
    payload_path = os.path.join(ref.path, COST_MODEL_FILE)
    if not os.path.isfile(payload_path):
        raise ArtifactError(
            f"{ref} is not a cost-model artifact (missing {COST_MODEL_FILE})"
        )
    with open(payload_path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except ValueError as exc:
            raise ArtifactError(f"corrupt cost model payload in {ref}: {exc}") from exc
    try:
        model = LatencyCostModel.from_dict(data)
    except ValueError as exc:
        raise ArtifactError(f"invalid cost model payload in {ref}: {exc}") from exc
    return replace(model, meta={**model.meta, "artifact": str(ref)})


def cost_model_summary(model: Optional[LatencyCostModel]) -> Optional[Dict[str, object]]:
    """Compact identity/provenance block for reports and snapshots."""
    if model is None:
        return None
    meta = dict(model.meta)
    return {
        "artifact": meta.get("artifact"),
        "mape": meta.get("mape"),
        "batches": meta.get("batches"),
        "fitted_unix": meta.get("fitted_unix"),
        "reference_shape": dict(model.reference_shape.to_dict()),
    }


# ---------------------------------------------------- capacity estimation


def estimate_capacity(
    model: LatencyCostModel,
    *,
    folds: int = 1,
    max_batch_size: int = 32,
    p95_target_s: Optional[float] = None,
) -> Dict[str, object]:
    """Predicted operating point for one deployment.

    ``optimal_batch`` is the largest batch of reference-shaped requests the
    model predicts under the p95 target (the whole ``max_batch_size``
    window when no target is set); ``sustainable_qps`` is that batch
    divided by its predicted latency — the deployment's predicted
    throughput ceiling while honouring the SLO.
    """
    folds = max(1, int(folds))
    max_batch_size = max(1, int(max_batch_size))
    reference = model.reference_shape
    request_s = model.predict_batch_latency(reference, folds)
    optimal = 1
    while optimal < max_batch_size:
        candidate = model.predict_batch_latency(
            reference.scaled(optimal + 1), folds
        )
        if p95_target_s is not None and candidate > p95_target_s:
            break
        optimal += 1
    batch_s = model.predict_batch_latency(reference.scaled(optimal), folds)
    sustainable_qps = optimal / batch_s if batch_s > 0 else None
    return {
        "request_s": request_s,
        "optimal_batch": optimal,
        "batch_s": batch_s,
        "sustainable_qps": sustainable_qps,
        "p95_target_s": p95_target_s,
        "within_target": (
            None if p95_target_s is None else bool(batch_s <= p95_target_s)
        ),
    }


# ------------------------------------------------------ admission control


class AdmissionController:
    """Concurrency + QPS budget enforcement for one deployment.

    Two independent budgets, both optional:

    * ``max_inflight`` — admitted-but-unfinished requests (queued in the
      batcher or running).  This is the SLO's ``max_concurrency`` plus a
      queueing allowance derived from ``max_queue_ms``.
    * ``qps_limit`` — a token bucket refilled at the sustainable rate the
      cost model predicts, with ``burst`` tokens of headroom, so short
      spikes ride through but a sustained overload sheds.

    ``acquire`` never blocks (lock held for counter arithmetic only) —
    an exhausted budget raises :class:`OverCapacityError` immediately;
    queue-and-wait would spend the very latency budget the SLO protects.
    """

    def __init__(
        self,
        *,
        max_inflight: Optional[int] = None,
        qps_limit: Optional[float] = None,
        burst: Optional[float] = None,
        retry_after_s: Optional[float] = None,
        name: str = "deployment",
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if qps_limit is not None and qps_limit <= 0:
            raise ValueError("qps_limit must be > 0")
        self.max_inflight = int(max_inflight) if max_inflight is not None else None
        self.qps_limit = float(qps_limit) if qps_limit is not None else None
        self._burst = (
            float(burst)
            if burst is not None
            else (max(self.qps_limit, 1.0) if self.qps_limit else 0.0)
        )
        self._clock = clock
        self._lock = TrackedLock(f"admission.{name}")
        self._tokens = self._burst
        self._last_refill = clock()
        self._inflight = 0
        self._admitted = 0
        self._shed = 0
        if retry_after_s is not None:
            self._retry_after_s = float(retry_after_s)
        elif self.qps_limit:
            self._retry_after_s = 1.0 / self.qps_limit
        else:
            self._retry_after_s = 0.05

    def _refill_locked(self, now: float) -> None:
        if self.qps_limit is None:
            return
        elapsed = max(0.0, now - self._last_refill)
        self._last_refill = now
        self._tokens = min(self._burst, self._tokens + elapsed * self.qps_limit)

    def try_acquire(self, count: int = 1) -> bool:
        count = max(1, int(count))
        with self._lock:
            self._refill_locked(self._clock())
            if (
                self.max_inflight is not None
                and self._inflight + count > self.max_inflight
            ):
                self._shed += count
                return False
            if self.qps_limit is not None and self._tokens < count:
                self._shed += count
                return False
            if self.qps_limit is not None:
                self._tokens -= count
            self._inflight += count
            self._admitted += count
            return True

    def acquire(self, count: int = 1) -> None:
        if not self.try_acquire(count):
            raise OverCapacityError(
                f"over capacity: {self._describe_budget()}",
                retry_after_s=self._retry_after_s,
            )

    def release(self, count: int = 1) -> None:
        count = max(1, int(count))
        with self._lock:
            self._inflight = max(0, self._inflight - count)

    @contextmanager
    def guard(self, count: int = 1):
        self.acquire(count)
        try:
            yield
        finally:
            self.release(count)

    def _describe_budget(self) -> str:
        parts = []
        if self.max_inflight is not None:
            parts.append(f"max_inflight={self.max_inflight}")
        if self.qps_limit is not None:
            parts.append(f"qps_limit={self.qps_limit:.1f}")
        return ", ".join(parts) or "unbounded"

    @property
    def retry_after_s(self) -> float:
        return self._retry_after_s

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "qps_limit": self.qps_limit,
                "inflight": self._inflight,
                "admitted": self._admitted,
                "shed": self._shed,
                "retry_after_s": self._retry_after_s,
            }


def build_admission(
    slo,
    cost_model: Optional[LatencyCostModel],
    *,
    folds: int = 1,
    max_batch_size: int = 32,
    name: str = "deployment",
) -> Optional[AdmissionController]:
    """Derive an :class:`AdmissionController` from a deployment's SLO.

    Returns ``None`` when there is no SLO or its ``shed_policy`` is
    ``"none"`` (observe-only deployments never shed).  With a cost model
    the inflight budget gains a queueing allowance (``max_queue_ms`` worth
    of predicted sustainable throughput) and a QPS bucket at the predicted
    sustainable rate; without one, only the explicit ``max_concurrency``
    budget applies.
    """
    if slo is None or getattr(slo, "shed_policy", "none") != "shed":
        return None
    p95_target_s = (
        slo.p95_ms / 1000.0 if getattr(slo, "p95_ms", None) else None
    )
    max_queue_s = (
        slo.max_queue_ms / 1000.0 if getattr(slo, "max_queue_ms", None) else None
    )
    max_concurrency = getattr(slo, "max_concurrency", None)

    qps_limit = None
    burst = None
    retry_after_s = None
    queue_allowance = 0
    if cost_model is not None:
        capacity = estimate_capacity(
            cost_model,
            folds=folds,
            max_batch_size=max_batch_size,
            p95_target_s=p95_target_s,
        )
        sustainable = capacity["sustainable_qps"]
        if sustainable:
            if p95_target_s is not None:
                qps_limit = sustainable
                # One predicted batch of headroom on top of the inflight
                # budget: spikes shorter than a batch ride through.
                burst = float(capacity["optimal_batch"]) + sustainable * float(
                    capacity["batch_s"]
                )
                retry_after_s = 1.0 / sustainable
            if max_queue_s is not None:
                queue_allowance = int(max_queue_s * sustainable)

    max_inflight = None
    if max_concurrency is not None:
        max_inflight = int(max_concurrency) + queue_allowance
    if max_inflight is None and qps_limit is None:
        # A shed policy with nothing to enforce would be a silent no-op;
        # fall back to a generous inflight cap so "shed" always means
        # *something* even before the first calibration.
        max_inflight = max(4, 2 * max_batch_size)
    return AdmissionController(
        max_inflight=max_inflight,
        qps_limit=qps_limit,
        burst=burst,
        retry_after_s=retry_after_s,
        name=name,
    )


def retry_after_header(retry_after_s: float) -> str:
    """HTTP ``Retry-After`` wants integral seconds, and 0 means "never
    mind" to many clients — round up with a floor of 1."""
    return str(max(1, int(math.ceil(retry_after_s))))
