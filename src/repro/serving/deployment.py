"""Declarative deployment specs and the predictor interface they produce.

Before the hub, deploying a model meant picking one of two near-duplicate
front-end classes (:class:`~repro.serving.service.PredictionService` vs
:class:`~repro.serving.ensemble.EnsemblePredictionService`) and one of two
near-duplicate config dataclasses (``ServiceConfig`` vs ``EnsembleConfig``)
— the *what* (which artefact, which version, which combination policy) was
tangled up with the *how* (which Python class to instantiate).

:class:`DeploymentSpec` separates them: one declarative record names the
deployment, points it at a registry artefact (``artifact`` + optional
``version`` pin) **or** a fold group (``fold_group`` + combination
``strategy``), and carries the batcher/cache/warm-up knobs.  The
:class:`~repro.serving.hub.ModelHub` resolves a spec against an
:class:`~repro.serving.registry.ArtifactRegistry` and builds the right
service behind the :class:`Predictor` protocol — single-fold and ensemble
serving become two implementations of one interface instead of two parallel
API surfaces.

Specs have a strict wire codec (:func:`deployment_spec_to_dict` /
:func:`deployment_spec_from_dict`), so the same record configures a
deployment from Python, from the ``repro-serve`` command line, or over the
hub's HTTP admin endpoint (``POST /v1/models/<name>/load``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, fields
from typing import Dict, Optional, Protocol, Sequence, Tuple, runtime_checkable

from .ensemble import STRATEGIES, EnsembleConfig
from .service import ServiceConfig, validate_frontend_knobs

#: deployment names become URL path segments (``/v1/models/<name>/...``):
#: one segment, no separators, no dots leading (path traversal), URL-safe.
_DEPLOYMENT_NAME_PATTERN = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,127}")

#: version pins accepted by a spec: a concrete registry version or "latest".
_VERSION_PIN_PATTERN = re.compile(r"v\d{4,}")


class DeploymentSpecError(ValueError):
    """A structurally invalid deployment spec (bad name, target, or knob)."""


#: admissible ``SLOConfig.shed_policy`` values: ``"none"`` observes only,
#: ``"shed"`` enforces the budgets with structured 429s.
SHED_POLICIES: Tuple[str, ...] = ("none", "shed")


@dataclass(frozen=True)
class BatchingConfig:
    """Micro-batching knobs of one deployment (the nested ``batching`` block).

    Subsumes the legacy flat spec knobs: ``max_batch_size`` keeps its name,
    ``max_wait_s`` becomes ``max_delay_s``, ``batcher_workers`` becomes
    ``workers``.  The flat spellings still decode (deprecation shims on
    :class:`DeploymentSpec`), but this block is the canonical wire form.
    """

    max_batch_size: int = 32
    max_delay_s: float = 0.002
    workers: int = 1

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must be >= 0")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


@dataclass(frozen=True)
class SLOConfig:
    """Service-level objectives of one deployment (the ``slo`` block).

    ``p95_ms`` is the latency target the cost model seals batches against;
    ``max_queue_ms``/``max_concurrency`` bound admitted load; and
    ``shed_policy`` decides whether exceeding the budgets sheds requests
    (``"shed"`` → structured 429 with ``Retry-After``) or merely shows up
    in the capacity report (``"none"``, the default).
    """

    p95_ms: Optional[float] = None
    max_queue_ms: Optional[float] = None
    max_concurrency: Optional[int] = None
    shed_policy: str = "none"

    def __post_init__(self) -> None:
        if self.p95_ms is not None and self.p95_ms <= 0:
            raise ValueError("p95_ms must be > 0")
        if self.max_queue_ms is not None and self.max_queue_ms < 0:
            raise ValueError("max_queue_ms must be >= 0")
        if self.max_concurrency is not None and self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed_policy {self.shed_policy!r}; "
                f"expected one of {SHED_POLICIES}"
            )


def batching_config_to_dict(config: BatchingConfig) -> Dict[str, object]:
    return {
        "max_batch_size": config.max_batch_size,
        "max_delay_s": config.max_delay_s,
        "workers": config.workers,
    }


def batching_config_from_dict(data: object) -> BatchingConfig:
    if not isinstance(data, dict):
        raise DeploymentSpecError(
            f"'batching' must be a JSON object, got {type(data).__name__}"
        )
    unknown = sorted(set(data) - {"max_batch_size", "max_delay_s", "workers"})
    if unknown:
        raise DeploymentSpecError(f"'batching' has unknown field(s) {unknown}")
    try:
        return BatchingConfig(**data)
    except (TypeError, ValueError) as exc:
        raise DeploymentSpecError(f"invalid 'batching' block: {exc}") from exc


def slo_config_to_dict(config: SLOConfig) -> Dict[str, object]:
    return {
        "p95_ms": config.p95_ms,
        "max_queue_ms": config.max_queue_ms,
        "max_concurrency": config.max_concurrency,
        "shed_policy": config.shed_policy,
    }


def slo_config_from_dict(data: object) -> SLOConfig:
    if not isinstance(data, dict):
        raise DeploymentSpecError(
            f"'slo' must be a JSON object, got {type(data).__name__}"
        )
    unknown = sorted(
        set(data) - {"p95_ms", "max_queue_ms", "max_concurrency", "shed_policy"}
    )
    if unknown:
        raise DeploymentSpecError(f"'slo' has unknown field(s) {unknown}")
    try:
        return SLOConfig(**data)
    except (TypeError, ValueError) as exc:
        raise DeploymentSpecError(f"invalid 'slo' block: {exc}") from exc


def validate_deployment_name(name: str) -> str:
    """Check one deployment/alias name (they share a URL namespace)."""
    if not isinstance(name, str) or not _DEPLOYMENT_NAME_PATTERN.fullmatch(name):
        raise DeploymentSpecError(
            f"invalid deployment name {name!r}: must be one URL path "
            f"segment of [A-Za-z0-9._-], not starting with '.' or '-'"
        )
    return name


@runtime_checkable
class Predictor(Protocol):
    """What the hub (and the HTTP layer) require of a deployed model.

    Both serving front-ends — :class:`~repro.serving.service.PredictionService`
    and :class:`~repro.serving.ensemble.EnsemblePredictionService` — satisfy
    this structurally via their shared
    :class:`~repro.serving.service.ServingFrontend` base; anything else that
    answers these methods (a stub, a remote proxy) can be adopted into a
    hub the same way.
    """

    def predict(self, request): ...

    def predict_many(self, requests: Sequence) -> list: ...

    def submit(self, request): ...

    def start(self): ...

    def stop(self) -> None: ...

    def snapshot(self) -> Dict[str, object]: ...

    def describe(self) -> Dict[str, object]: ...


@dataclass(frozen=True)
class DeploymentSpec:
    """One named deployment, declaratively.

    Exactly one of ``artifact`` (serve a single registry artefact) or
    ``fold_group`` (serve every ``<fold_group>-fold<k>`` artefact as an
    ensemble) must be set.  ``version`` pins a single-artifact deployment to
    a concrete registry version (``"latest"``/``None`` tracks the newest —
    re-resolved on every :meth:`~repro.serving.hub.ModelHub.reload`);
    ensemble members always serve their latest versions.

    Batching knobs live in the nested ``batching`` block
    (:class:`BatchingConfig`); service-level objectives in the ``slo`` block
    (:class:`SLOConfig`).  The flat ``max_batch_size``/``max_wait_s``/
    ``batcher_workers`` fields are **deprecated** spellings kept for
    compatibility: setting any of them folds into a ``batching`` block
    (setting both spellings at once is an error), and after construction
    the flat fields always mirror the folded block, so existing readers
    keep working unchanged.
    """

    name: str
    artifact: Optional[str] = None
    fold_group: Optional[str] = None
    version: Optional[str] = None
    strategy: str = "mean-softmax"
    folds: Optional[Tuple[int, ...]] = None
    #: deprecated — use ``batching.max_batch_size``.
    max_batch_size: Optional[int] = None
    #: deprecated — use ``batching.max_delay_s``.
    max_wait_s: Optional[float] = None
    cache_capacity: int = 1024
    enable_cache: bool = True
    latency_window: int = 4096
    #: deprecated — use ``batching.workers``.
    batcher_workers: Optional[int] = None
    warmup_path: Optional[str] = None
    batching: Optional[BatchingConfig] = None
    slo: Optional[SLOConfig] = None

    def __post_init__(self) -> None:
        validate_deployment_name(self.name)
        self._fold_batching_knobs()
        if self.slo is not None and not isinstance(self.slo, SLOConfig):
            raise DeploymentSpecError(
                f"deployment {self.name!r}: 'slo' must be an SLOConfig "
                f"(decode wire data with deployment_spec_from_dict)"
            )
        if (self.artifact is None) == (self.fold_group is None):
            raise DeploymentSpecError(
                f"deployment {self.name!r} must set exactly one of 'artifact' "
                f"(single model) or 'fold_group' (ensemble)"
            )
        if self.version == "latest":
            # Normalise the explicit pin-to-latest spelling to None, so
            # "latest" and an absent pin compare (and re-resolve) the same.
            object.__setattr__(self, "version", None)
        if self.version is not None:
            if self.fold_group is not None:
                raise DeploymentSpecError(
                    f"deployment {self.name!r}: 'version' only applies to "
                    f"'artifact' deployments (ensemble members always serve "
                    f"their latest versions)"
                )
            if not _VERSION_PIN_PATTERN.fullmatch(self.version):
                raise DeploymentSpecError(
                    f"deployment {self.name!r}: invalid version pin "
                    f"{self.version!r} (expected 'vNNNN' or 'latest')"
                )
        if self.strategy not in STRATEGIES:
            raise DeploymentSpecError(
                f"deployment {self.name!r}: unknown strategy {self.strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        if self.folds is not None:
            if self.fold_group is None:
                raise DeploymentSpecError(
                    f"deployment {self.name!r}: 'folds' only applies to "
                    f"'fold_group' deployments"
                )
            object.__setattr__(self, "folds", tuple(int(fold) for fold in self.folds))
        try:
            validate_frontend_knobs(self)
        except ValueError as exc:
            raise DeploymentSpecError(f"deployment {self.name!r}: {exc}") from exc

    def _fold_batching_knobs(self) -> None:
        """Normalise batching knobs: one canonical ``batching`` block.

        Legacy flat knobs fold into the block; mixing spellings is
        rejected (which knob wins would otherwise be silent).  After
        folding, the flat fields mirror the block, so a spec built either
        way compares (and serves) identically.
        """
        if self.batching is not None and not isinstance(
            self.batching, BatchingConfig
        ):
            raise DeploymentSpecError(
                f"deployment {self.name!r}: 'batching' must be a "
                f"BatchingConfig (decode wire data with "
                f"deployment_spec_from_dict)"
            )
        legacy = {
            "max_batch_size": self.max_batch_size,
            "max_wait_s": self.max_wait_s,
            "batcher_workers": self.batcher_workers,
        }
        legacy_set = sorted(
            knob for knob, value in legacy.items() if value is not None
        )
        if self.batching is not None and legacy_set:
            raise DeploymentSpecError(
                f"deployment {self.name!r}: legacy knob(s) {legacy_set} "
                f"conflict with the 'batching' block — set one or the other"
            )
        batching = self.batching
        if batching is None:
            try:
                batching = BatchingConfig(
                    max_batch_size=(
                        32 if self.max_batch_size is None else self.max_batch_size
                    ),
                    max_delay_s=(
                        0.002 if self.max_wait_s is None else self.max_wait_s
                    ),
                    workers=(
                        1 if self.batcher_workers is None else self.batcher_workers
                    ),
                )
            except ValueError as exc:
                message = str(exc).replace("max_delay_s", "max_wait_s").replace(
                    "workers", "batcher_workers"
                )
                raise DeploymentSpecError(
                    f"deployment {self.name!r}: {message}"
                ) from exc
            object.__setattr__(self, "batching", batching)
        object.__setattr__(self, "max_batch_size", batching.max_batch_size)
        object.__setattr__(self, "max_wait_s", batching.max_delay_s)
        object.__setattr__(self, "batcher_workers", batching.workers)

    # ------------------------------------------------------------ properties
    @property
    def kind(self) -> str:
        """``"single"`` or ``"ensemble"`` — which front-end this spec builds."""
        return "single" if self.artifact is not None else "ensemble"

    @property
    def target(self) -> str:
        """The registry name this spec serves (artifact or fold-group base)."""
        return self.artifact if self.artifact is not None else self.fold_group

    # ----------------------------------------------------- config projection
    def service_config(self) -> ServiceConfig:
        """The legacy single-model config this spec projects onto."""
        return ServiceConfig(
            max_batch_size=self.max_batch_size,
            max_wait_s=self.max_wait_s,
            cache_capacity=self.cache_capacity,
            enable_cache=self.enable_cache,
            latency_window=self.latency_window,
            batcher_workers=self.batcher_workers,
            warmup_path=self.warmup_path,
        )

    def ensemble_config(self) -> EnsembleConfig:
        """The legacy ensemble config this spec projects onto."""
        return EnsembleConfig(
            strategy=self.strategy,
            max_batch_size=self.max_batch_size,
            max_wait_s=self.max_wait_s,
            cache_capacity=self.cache_capacity,
            enable_cache=self.enable_cache,
            latency_window=self.latency_window,
            batcher_workers=self.batcher_workers,
            warmup_path=self.warmup_path,
        )


#: spec fields that keep their dataclass default when absent on the wire.
_SPEC_FIELDS = {spec_field.name for spec_field in fields(DeploymentSpec)}


def deployment_spec_to_dict(spec: DeploymentSpec) -> Dict[str, object]:
    """JSON-friendly encoding of one spec (round-trips through
    :func:`deployment_spec_from_dict`)."""
    return {
        "name": spec.name,
        "artifact": spec.artifact,
        "fold_group": spec.fold_group,
        "version": spec.version,
        "strategy": spec.strategy,
        "folds": list(spec.folds) if spec.folds is not None else None,
        "batching": batching_config_to_dict(spec.batching)
        if spec.batching is not None
        else None,
        "slo": slo_config_to_dict(spec.slo) if spec.slo is not None else None,
        "cache_capacity": spec.cache_capacity,
        "enable_cache": spec.enable_cache,
        "latency_window": spec.latency_window,
        "warmup_path": spec.warmup_path,
    }


def deployment_spec_from_dict(
    data: object, name: Optional[str] = None
) -> DeploymentSpec:
    """Strictly decode one spec from wire data.

    ``name`` supplies (or cross-checks) the deployment name when the
    transport carries it out of band — the HTTP admin endpoint takes the
    name from the URL path, so a body naming a *different* deployment is
    rejected instead of silently winning.
    """
    if not isinstance(data, dict):
        raise DeploymentSpecError(
            f"deployment spec must be a JSON object, got {type(data).__name__}"
        )
    unknown = sorted(set(data) - _SPEC_FIELDS)
    if unknown:
        raise DeploymentSpecError(f"deployment spec has unknown field(s) {unknown}")
    payload = dict(data)
    body_name = payload.get("name")
    if body_name is not None and not isinstance(body_name, str):
        raise DeploymentSpecError("deployment spec 'name' must be a string")
    if name is not None:
        if body_name is not None and body_name != name:
            raise DeploymentSpecError(
                f"deployment spec names {body_name!r} but was addressed to {name!r}"
            )
        payload["name"] = name
    if "folds" in payload and payload["folds"] is not None:
        folds = payload["folds"]
        if not isinstance(folds, (list, tuple)) or not all(
            isinstance(fold, int) and not isinstance(fold, bool) for fold in folds
        ):
            raise DeploymentSpecError("deployment spec 'folds' must be a list of ints")
        payload["folds"] = tuple(folds)
    if "name" not in payload or payload["name"] is None:
        raise DeploymentSpecError("deployment spec is missing required field 'name'")
    if payload.get("batching") is not None and not isinstance(
        payload["batching"], BatchingConfig
    ):
        payload["batching"] = batching_config_from_dict(payload["batching"])
    if payload.get("slo") is not None and not isinstance(
        payload["slo"], SLOConfig
    ):
        payload["slo"] = slo_config_from_dict(payload["slo"])
    try:
        return DeploymentSpec(**payload)
    except TypeError as exc:
        raise DeploymentSpecError(f"invalid deployment spec: {exc}") from exc
