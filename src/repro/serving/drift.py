"""Windowed drift detection over journalled predictions.

A model that keeps answering does not keep answering *well*: an alias
flip to a bad version, a shift in incoming programs, or a fold ensemble
falling out of agreement all show up first as a change in what gets
predicted, not as an error.  This module turns the prediction journal's
recent tail into an alert:

* **label shift** — total variation distance between the label
  distribution of a *baseline* window (older records) and a *recent*
  window.  TVD is ``0`` for identical distributions, ``1`` for disjoint
  ones, and directly reads as "the share of traffic whose label moved".
* **agreement collapse** — drop in mean per-fold agreement between the
  same two windows (ensemble deployments journal their agreement score).
  Folds that start disagreeing are the paper's own uncertainty signal —
  exactly the regions the hybrid model routes to dynamic profiling — so
  a collapse means the model is being asked about programs it does not
  know.

Both checks are window-vs-window over one ordered record sequence, so
they work identically on the live in-memory tail
(:meth:`~repro.serving.journal.JournalWriter.recent`, behind
``GET /v1/models/<name>/drift``) and on a full offline
:class:`~repro.serving.journal.JournalReader` pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence


@dataclass
class DriftConfig:
    """Window sizes and alert thresholds of :func:`detect_drift`."""

    #: how many of the newest records form the *recent* window.
    recent_window: int = 50
    #: how many records immediately before them form the *baseline*.
    baseline_window: int = 200
    #: both windows must hold at least this many records to judge drift
    #: (tiny windows make every distribution look shifted).
    min_samples: int = 20
    #: alert when the label distributions' total variation distance
    #: exceeds this (0 = identical, 1 = disjoint).
    label_threshold: float = 0.35
    #: alert when mean fold agreement dropped by more than this.
    agreement_threshold: float = 0.2

    def __post_init__(self) -> None:
        if self.recent_window < 1 or self.baseline_window < 1:
            raise ValueError("drift windows must be >= 1 record")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if not 0.0 < self.label_threshold <= 1.0:
            raise ValueError("label_threshold must be in (0, 1]")
        if not 0.0 < self.agreement_threshold <= 1.0:
            raise ValueError("agreement_threshold must be in (0, 1]")


def label_distribution(records: Sequence[Mapping[str, object]]) -> Dict[int, float]:
    """Share of records per predicted label."""
    counts: Dict[int, int] = {}
    for record in records:
        label = record.get("label")
        if isinstance(label, bool) or not isinstance(label, int):
            continue
        counts[label] = counts.get(label, 0) + 1
    total = sum(counts.values())
    if not total:
        return {}
    return {label: count / total for label, count in sorted(counts.items())}


def total_variation(
    p: Mapping[int, float], q: Mapping[int, float]
) -> float:
    """Total variation distance between two label distributions."""
    labels = set(p) | set(q)
    return 0.5 * sum(abs(p.get(label, 0.0) - q.get(label, 0.0)) for label in labels)


def _mean_agreement(records: Sequence[Mapping[str, object]]) -> Optional[float]:
    values = [
        float(record["agreement"])
        for record in records
        if isinstance(record.get("agreement"), (int, float))
    ]
    return sum(values) / len(values) if values else None


def detect_drift(
    records: Sequence[Mapping[str, object]],
    config: Optional[DriftConfig] = None,
) -> Dict[str, object]:
    """Judge drift over one ordered (oldest-first) record sequence.

    The newest ``recent_window`` records are compared against the
    ``baseline_window`` records immediately before them.  Returns a
    JSON-friendly verdict: ``status`` is ``"insufficient-data"``, ``"ok"``
    or ``"drift"``, and ``alerts`` lists every threshold crossed (so one
    response can report a label shift *and* an agreement collapse).
    """
    config = config or DriftConfig()
    recent = list(records[-config.recent_window :])
    baseline = list(
        records[
            max(0, len(records) - config.recent_window - config.baseline_window) : len(records)
            - config.recent_window
        ]
    )
    if len(recent) < config.min_samples or len(baseline) < config.min_samples:
        return {
            "status": "insufficient-data",
            "baseline_samples": len(baseline),
            "recent_samples": len(recent),
            "min_samples": config.min_samples,
            "alerts": [],
        }

    baseline_labels = label_distribution(baseline)
    recent_labels = label_distribution(recent)
    label_tvd = total_variation(baseline_labels, recent_labels)

    baseline_agreement = _mean_agreement(baseline)
    recent_agreement = _mean_agreement(recent)
    agreement_drop = (
        baseline_agreement - recent_agreement
        if baseline_agreement is not None and recent_agreement is not None
        else None
    )

    alerts: List[Dict[str, object]] = []
    if label_tvd > config.label_threshold:
        alerts.append(
            {
                "kind": "label-shift",
                "value": label_tvd,
                "threshold": config.label_threshold,
            }
        )
    if agreement_drop is not None and agreement_drop > config.agreement_threshold:
        alerts.append(
            {
                "kind": "agreement-collapse",
                "value": agreement_drop,
                "threshold": config.agreement_threshold,
            }
        )
    return {
        "status": "drift" if alerts else "ok",
        "baseline_samples": len(baseline),
        "recent_samples": len(recent),
        "label_tvd": label_tvd,
        "baseline_labels": baseline_labels,
        "recent_labels": recent_labels,
        "baseline_agreement": baseline_agreement,
        "recent_agreement": recent_agreement,
        "agreement_drop": agreement_drop,
        "alerts": alerts,
    }
