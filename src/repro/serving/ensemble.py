"""Multi-fold ensemble serving behind one endpoint.

The paper's evaluation trains one predictor per cross-validation fold, and
``ReproPipeline.export_artifacts`` writes all of them into the registry as
``<name>-fold<k>``.  Deploying a single fold throws the rest away;
:class:`EnsemblePredictionService` loads every fold of a base name
(discovered via :meth:`ArtifactRegistry.fold_groups`) and answers each
request by combining the per-fold probabilities:

* ``mean-softmax`` — average the per-fold softmax distributions and take
  the argmax (soft voting; the default);
* ``majority-vote`` — each fold votes its argmax label, the most-voted
  label wins (ties broken by the higher mean-softmax probability, then the
  lower label index — fully deterministic).

Results carry the per-fold labels and an agreement score, so callers can
treat fold disagreement as a confidence signal (regions the folds disagree
on are exactly the ones the hybrid model routes to dynamic profiling).

All folds share one :class:`EmbeddingCache` keyed on
``(model_version_set, fingerprint)``: one cache instance can back several
ensembles (or survive a membership change) without ever replaying logits
produced by a different set of model versions.

Execution is fold-stacked: at construction every member's weights are
stacked into a :class:`~repro.engine.StackedFoldModel`, and each
micro-batch is answered by one :class:`~repro.engine.ExecutionPlan` fanned
to all folds in a single stateless sweep — bit-identical to running the
members one by one, at well under linear-in-folds cost, and reentrant (no
forward lock), so concurrent micro-batches overlap.  Members whose
architectures cannot stack fall back to a per-fold loop over the same
shared plan.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..engine import IncompatibleFoldsError, StackedFoldModel, build_plan
from ..gnn.losses import softmax
from ..graphs.features import EncodedGraph
from ..numasim.configuration import Configuration
from .cache import EmbeddingCache
from .registry import ArtifactNotFoundError, ArtifactRegistry, LoadedArtifact
from .serialization import label_space_to_dict
from .service import ServingFrontend, validate_frontend_knobs
from .stats import ServingStats
from .trace import span

#: supported per-fold probability combination strategies.
STRATEGIES = ("mean-softmax", "majority-vote")


@dataclass
class EnsembleConfig:
    """Knobs of :class:`EnsemblePredictionService`.

    .. deprecated::
        New code should declare deployments with
        :class:`~repro.serving.deployment.DeploymentSpec` (``fold_group=``
        + ``strategy=``) and serve them through a
        :class:`~repro.serving.hub.ModelHub`, which subsumes these knobs
        (and ``ServiceConfig``'s) in one record — batching knobs live in
        the spec's nested :class:`~repro.serving.deployment.BatchingConfig`
        block.  This class keeps working for directly-embedded ensembles.
    """

    strategy: str = "mean-softmax"
    max_batch_size: int = 32
    max_wait_s: float = 0.002
    cache_capacity: int = 1024
    enable_cache: bool = True
    latency_window: int = 4096
    #: worker threads draining the micro-batch queue (stacked inference is
    #: stateless, so workers > 1 overlap whole-ensemble forward sweeps).
    batcher_workers: int = 1
    #: optional path to an ``EmbeddingCache.dump`` file loaded at
    #: construction (if it exists), so a restarted ensemble starts hot.
    warmup_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; expected one of {STRATEGIES}"
            )
        validate_frontend_knobs(self)


@dataclass
class EnsemblePredictionResult:
    """Everything the ensemble knows about one answered request."""

    name: str
    fingerprint: str
    label: int
    probabilities: np.ndarray
    graph_vector: np.ndarray
    configuration: Optional[Configuration]
    needs_profiling: Optional[bool]
    per_fold_labels: Dict[int, int]
    agreement: float
    unanimous: bool
    cache_hit: bool
    latency_s: float
    #: per-stage span timings of this request (see :mod:`repro.serving.trace`);
    #: batch-level spans report what the request's batch paid.
    trace: Optional[Dict[str, float]] = None


# ------------------------------------------------------------- combination


def combine_mean_softmax(stacked_logits: np.ndarray) -> Tuple[int, np.ndarray]:
    """Soft voting: ``(winning label, mean per-fold softmax)``.

    ``stacked_logits`` has shape ``(num_folds, num_labels)``.
    """
    probabilities = softmax(stacked_logits, axis=1).mean(axis=0)
    return int(np.argmax(probabilities)), probabilities


def combine_majority_vote(stacked_logits: np.ndarray) -> Tuple[int, np.ndarray]:
    """Hard voting: ``(winning label, per-label vote shares)``.

    Ties are broken by the higher mean-softmax probability among the tied
    labels; an exact probability tie falls back to the lower label index
    (``np.argmax`` keeps the first maximum), so the outcome is fully
    deterministic.
    """
    num_folds, num_labels = stacked_logits.shape
    fold_labels = np.argmax(stacked_logits, axis=1)
    counts = np.bincount(fold_labels, minlength=num_labels)
    shares = counts.astype(np.float64) / num_folds
    tied = np.flatnonzero(counts == counts.max())
    if len(tied) == 1:
        return int(tied[0]), shares
    mean_probabilities = softmax(stacked_logits, axis=1).mean(axis=0)
    winner = tied[int(np.argmax(mean_probabilities[tied]))]
    return int(winner), shares


_COMBINERS = {
    "mean-softmax": combine_mean_softmax,
    "majority-vote": combine_majority_vote,
}


# ----------------------------------------------------------------- service


class EnsemblePredictionService(ServingFrontend):
    """Serves combined predictions from several fold predictors.

    ``members`` maps fold index → loaded artefact.  Every member must share
    the encoder vocabulary, head size and (where present) label space —
    violations raise :class:`ValueError` at construction, not at prediction
    time.
    """

    def __init__(
        self,
        members: Mapping[int, LoadedArtifact],
        config: Optional[EnsembleConfig] = None,
        cache: Optional[EmbeddingCache] = None,
    ):
        if not members:
            raise ValueError("an ensemble needs at least one member")
        self.config = config or EnsembleConfig()
        self._members: Dict[int, LoadedArtifact] = dict(sorted(members.items()))
        self._fold_indices: List[int] = list(self._members)
        for artifact in self._members.values():
            artifact.model.eval()

        first = next(iter(self._members.values()))
        tokens = first.encoder.vocabulary.tokens
        num_classes = first.model.config.num_classes
        for fold, artifact in self._members.items():
            if artifact.encoder.vocabulary.tokens != tokens:
                raise ValueError(
                    f"fold {fold} ({artifact.ref}) was trained with a different "
                    f"vocabulary; ensemble members must share one encoder"
                )
            if artifact.model.config.num_classes != num_classes:
                raise ValueError(
                    f"fold {fold} ({artifact.ref}) emits "
                    f"{artifact.model.config.num_classes} labels, others emit "
                    f"{num_classes}; ensemble members must share a label space"
                )
        self.encoder = first.encoder
        self.num_labels = num_classes

        label_spaces = [a.label_space for a in self._members.values() if a.label_space]
        self.label_space = label_spaces[0] if label_spaces else None
        for space in label_spaces[1:]:
            # Deep equality: two spaces of the same size can still map one
            # label index onto different configurations (the reduction is
            # data-dependent), and combining those would be silently wrong.
            if label_space_to_dict(space) != label_space_to_dict(self.label_space):
                raise ValueError("ensemble members carry conflicting label spaces")
        if self.label_space is not None and self.label_space.num_labels != num_classes:
            raise ValueError(
                f"model heads emit {num_classes} labels but the label space "
                f"defines {self.label_space.num_labels} configurations"
            )

        # The cache key is prefixed with a digest of the exact member
        # versions, so one shared cache never replays logits produced by a
        # different model set.
        version_set = sorted(str(a.ref) for a in self._members.values())
        self.version_set_id = hashlib.sha256(
            "|".join(version_set).encode("utf-8")
        ).hexdigest()[:16]

        self.stats = ServingStats(latency_window=self.config.latency_window)
        if cache is not None:
            self.cache: Optional[EmbeddingCache] = cache
        elif self.config.enable_cache:
            self.cache = EmbeddingCache(self.config.cache_capacity)
        else:
            self.cache = None
        self._best_effort_warm_up(self.cache, self.config.warmup_path)

        self._combine = _COMBINERS[self.config.strategy]
        # Fold-stacked engine path: every member's weights stacked into
        # (F, in, out) tensors, so one plan + one sweep answers all folds.
        # Members whose architectures differ (allowed, as long as vocabulary
        # and head size match) cannot stack; they fall back to a per-fold
        # loop over the same shared plan — still stateless, still lock-free.
        try:
            self._stacked: Optional[StackedFoldModel] = StackedFoldModel(
                [artifact.model for artifact in self._members.values()]
            )
        except IncompatibleFoldsError:
            self._stacked = None
        super().__init__()

    # --------------------------------------------------------- constructors
    @classmethod
    def from_registry(
        cls,
        root: str,
        base: str,
        config: Optional[EnsembleConfig] = None,
        folds: Optional[Sequence[int]] = None,
        verify: bool = True,
        cache: Optional[EmbeddingCache] = None,
    ) -> "EnsemblePredictionService":
        """Discover and load every ``<base>-fold<k>`` artefact under ``root``.

        ``folds`` restricts membership to a subset of fold indices; each
        member is the *latest* version of its model name.
        """
        registry = ArtifactRegistry(root)
        member_names = registry.fold_members(base)
        if folds is not None:
            wanted = set(folds)
            missing = wanted - set(member_names)
            if missing:
                raise ArtifactNotFoundError(
                    f"no exported fold(s) {sorted(missing)} for base {base!r} in {root}"
                )
            member_names = {k: v for k, v in member_names.items() if k in wanted}
        if not member_names:
            raise ArtifactNotFoundError(
                f"no '<base>-fold<k>' artefacts for base {base!r} in {root}"
            )
        # One canonical latest-version resolution per member (resolve()),
        # then load the concrete refs it produced.
        member_refs = {
            fold: registry.resolve(name) for fold, name in member_names.items()
        }
        members = {
            fold: registry.load(ref.name, ref.version, verify=verify)
            for fold, ref in member_refs.items()
        }
        return cls(members, config=config, cache=cache)

    # ------------------------------------------------------------ properties
    @property
    def num_members(self) -> int:
        return len(self._members)

    @property
    def members(self) -> Dict[int, LoadedArtifact]:
        return dict(self._members)

    # -------------------------------------------------------------- export
    def snapshot(self) -> Dict[str, object]:
        """Serving stats plus ensemble composition, JSON-friendly."""
        snapshot = super().snapshot()
        snapshot["strategy"] = self.config.strategy
        snapshot["num_members"] = self.num_members
        snapshot["members"] = [str(a.ref) for a in self._members.values()]
        snapshot["fold_stacked"] = self._stacked is not None
        return snapshot

    def describe(self) -> Dict[str, object]:
        return {
            "service": "ensemble",
            "strategy": self.config.strategy,
            "members": [str(a.ref) for a in self._members.values()],
            "version_set_id": self.version_set_id,
            "num_labels": self.num_labels,
            "has_label_space": self.label_space is not None,
            "fold_stacked": self._stacked is not None,
        }

    # ------------------------------------------------------------ internals
    def _cache_key(self, fingerprint: str) -> str:
        return f"{self.version_set_id}:{fingerprint}"

    def _fold_fanout(self) -> int:
        return self.num_members

    def _journal_identity(self) -> Optional[str]:
        return ",".join(str(a.ref) for a in self._members.values())

    def _forward_batch(
        self, batch, size: int, trace: Optional[Dict[str, float]] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One planned engine pass for the whole ensemble.

        The plan is built once per micro-batch and fanned to every fold:
        the stacked path answers all members in a single sweep (one batched
        matmul per weight, one CSR traversal per relation per layer), the
        fallback loops members over the same shared plan.  Either way the
        pass is stateless — concurrent micro-batches overlap freely.

        Returns arrays of shape ``(size, num_folds, ...)`` so row ``j`` is
        the ``(num_folds, num_labels)`` / ``(num_folds, vector_dim)`` stack
        for graph ``j`` — one cache entry replays every member at once.
        """
        with span(trace, "plan_build_s"):
            plan = build_plan(batch)
        if self._stacked is not None:
            # Batch-major stacks straight from the engine: row j is the
            # (num_folds, ...) stack for graph j.
            with span(trace, "infer_s"):
                logits, vectors = self._stacked.infer(plan)  # (B, F, L), (B, F, D)
            self.stats.record_batch(size, folds=self.num_members, stacked=True)
            return logits, vectors
        per_fold_logits: List[np.ndarray] = []
        per_fold_vectors: List[np.ndarray] = []
        with span(trace, "infer_s"):
            for artifact in self._members.values():
                logits, vectors = artifact.model.infer(plan)
                per_fold_logits.append(logits)
                per_fold_vectors.append(vectors)
        self.stats.record_batch(size, folds=self.num_members, stacked=False)
        return (
            np.stack(per_fold_logits, axis=1),  # (B, F, L)
            np.stack(per_fold_vectors, axis=1),  # (B, F, D)
        )

    def _build_result(
        self,
        graph: EncodedGraph,
        fingerprint: str,
        row: Tuple[np.ndarray, np.ndarray],
        cache_hit: bool,
        latency_s: float,
    ) -> EnsemblePredictionResult:
        stacked_logits, stacked_vectors = row
        label, probabilities = self._combine(stacked_logits)
        return self._assemble_result(
            graph,
            fingerprint,
            label=label,
            probabilities=probabilities,
            mean_vector=stacked_vectors.mean(axis=0),
            fold_argmax=np.argmax(stacked_logits, axis=1),
            stacked_vectors=stacked_vectors,
            cache_hit=cache_hit,
            latency_s=latency_s,
        )

    def _build_results(self, graphs, fingerprints, rows, hit_flags, latencies):
        """Batch-vectorised result construction.

        The per-request combination work (softmax, fold argmax, mean
        vector) is row-wise, so one vectorised pass over the whole call's
        ``(B, F, ...)`` stacks produces bit-identical values to the
        per-request :meth:`_build_result` at a fraction of the per-request
        overhead — this is what keeps the serving cost of an ensemble
        sub-linear in its member count end to end, not just in the forward.
        """
        if not rows:
            return []
        stacked_logits = np.stack([row[0] for row in rows])  # (B, F, L)
        stacked_vectors = np.stack([row[1] for row in rows])  # (B, F, D)
        fold_argmax = np.argmax(stacked_logits, axis=2)  # (B, F)
        mean_vectors = stacked_vectors.mean(axis=1)  # (B, D)
        if self.config.strategy == "mean-softmax":
            # softmax/mean/argmax are all row-wise: identical bits to the
            # per-request combine_mean_softmax.
            all_probabilities = softmax(stacked_logits, axis=2).mean(axis=1)
            labels = [int(label) for label in np.argmax(all_probabilities, axis=1)]
        else:
            combined = [self._combine(row[0]) for row in rows]
            labels = [label for label, _ in combined]
            all_probabilities = [probabilities for _, probabilities in combined]
        return [
            self._assemble_result(
                graph,
                fingerprint,
                label=labels[i],
                probabilities=all_probabilities[i],
                mean_vector=mean_vectors[i],
                fold_argmax=fold_argmax[i],
                stacked_vectors=stacked_vectors[i],
                cache_hit=hit,
                latency_s=latency,
            )
            for i, (graph, fingerprint, hit, latency) in enumerate(
                zip(graphs, fingerprints, hit_flags, latencies)
            )
        ]

    def _assemble_result(
        self,
        graph: EncodedGraph,
        fingerprint: str,
        label: int,
        probabilities: np.ndarray,
        mean_vector: np.ndarray,
        fold_argmax: np.ndarray,
        stacked_vectors: np.ndarray,
        cache_hit: bool,
        latency_s: float,
    ) -> EnsemblePredictionResult:
        per_fold_labels = {
            fold: int(fold_argmax[idx]) for idx, fold in enumerate(self._fold_indices)
        }
        agreement = float(np.mean(fold_argmax == label))
        configuration = (
            self.label_space.configuration_of(label)
            if self.label_space is not None
            else None
        )
        needs_profiling = self._needs_profiling(stacked_vectors)
        return EnsemblePredictionResult(
            name=graph.name,
            fingerprint=fingerprint,
            label=label,
            probabilities=np.array(probabilities, dtype=np.float64, copy=True),
            # Mean across folds; copied so callers can mutate freely even on
            # a cache hit (the stacked row aliases the shared cache entry).
            graph_vector=np.array(mean_vector, dtype=np.float64, copy=True),
            configuration=configuration,
            needs_profiling=needs_profiling,
            per_fold_labels=per_fold_labels,
            agreement=agreement,
            unanimous=bool(np.all(fold_argmax == fold_argmax[0])),
            cache_hit=cache_hit,
            latency_s=latency_s,
        )

    def _needs_profiling(self, stacked_vectors: np.ndarray) -> Optional[bool]:
        """Majority vote of the members' hybrid classifiers (None if none)."""
        votes: List[bool] = []
        for idx, artifact in enumerate(self._members.values()):
            if artifact.hybrid is None:
                continue
            votes.append(bool(artifact.hybrid.needs_dynamic(stacked_vectors[idx][None, :])[0]))
        if not votes:
            return None
        # Ties fall to True: when the folds are split, profiling is the
        # conservative answer (same spirit as the hybrid model's threshold).
        return sum(votes) * 2 >= len(votes)
