"""JSON-over-HTTP wire protocol for the model hub.

This module puts a :class:`~repro.serving.hub.ModelHub` — many named
deployments in one process — behind a stdlib HTTP server
(``http.server.ThreadingHTTPServer``, no third-party web framework):

* ``POST /v1/models/<name>/predict`` — body ``{"graph": {...}}`` (one
  wire-encoded :class:`~repro.graphs.graph.ProgramGraph`) or
  ``{"graphs": [{...}, ...]}`` (a batch), answered by the named deployment
  (``<name>`` may be a deployment name or an alias such as ``prod``).
  Single-graph requests ride the deployment's micro-batcher, so concurrent
  HTTP clients coalesce into shared RGCN forward passes; batch bodies go
  straight to ``predict_many``.
  Bodies may add ``"trace": true`` to get the request's per-stage span
  timings (decode → cache lookup → queue wait → plan build → infer →
  combine) back in each result.
* ``GET /v1/models`` — the served set: per-model health, aliases, default.
* ``GET /v1/models/<name>`` / ``GET /v1/models/<name>/metrics`` — one
  model's health / serving stats.
* ``GET /v1/models/<name>/drift`` — windowed drift verdict (label shift,
  fold-agreement collapse) over the hub journal's live tail.
* ``POST /v1/models/<name>/load|unload|reload|alias`` — admin: mutate the
  served set at runtime (load takes a
  :class:`~repro.serving.deployment.DeploymentSpec` body, alias takes
  ``{"target": ...}``); an alias flip is atomic, so a version swap fails
  zero in-flight requests.
* ``GET /healthz`` / ``GET /metrics`` — process-level liveness and
  telemetry, with one section per model plus the shared cache/pool/
  journal/checkpoint infrastructure.  Both answer ``HEAD`` too;
  ``/metrics?format=prometheus`` serves the stdlib-rendered text
  exposition instead of JSON (unknown formats get a structured 406).
* ``POST /v1/predict`` — the legacy single-model route, answered by the
  hub's *default* deployment.  Kept (with the bare-service constructors)
  as a deprecation-noted shim: a :class:`ServingApp` built from a single
  :class:`~repro.serving.service.ServingFrontend` wraps it in a
  one-deployment hub, so PR-3 era callers and the ``repro-serve`` CLI
  work unchanged.

Malformed requests (invalid JSON, unknown fields, structurally invalid
graphs, unsupported schema versions, unknown models) are mapped onto
structured 4xx responses — ``{"error": {"status": ..., "code": ...,
"message": ...}}`` — never opaque 500s; wrong-method hits on known routes
get a structured 405 carrying an ``Allow`` header.

:class:`ServingApp` holds the transport-independent routing/validation
logic (testable without opening a socket); :class:`PredictionHTTPServer`
binds it to a threading HTTP server and manages the hub's batcher and
checkpoint-daemon lifecycle.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs

from .cache import CheckpointDaemon
from .costmodel import OverCapacityError, retry_after_header
from .deployment import DeploymentSpecError, deployment_spec_from_dict
from .ensemble import EnsemblePredictionResult
from .hub import (
    DeploymentExistsError,
    DeploymentNotFoundError,
    DeploymentQuarantinedError,
    HubError,
    ModelHub,
)
from .registry import ArtifactNotFoundError
from .replica import DrainingError, ReplicaSupervisor, ReplicaUnavailableError
from .serialization import (
    SerializationError,
    configuration_to_dict,
    program_graph_from_dict,
)
from .service import ServingFrontend
from .stats import render_prometheus

#: requests larger than this are rejected with 413 before being parsed.
DEFAULT_MAX_BODY_BYTES = 8 << 20  # 8 MiB

#: how long one predict request may wait on the micro-batcher.
DEFAULT_REQUEST_TIMEOUT_S = 30.0

#: deployment name a bare service is adopted under by the legacy shims.
DEFAULT_MODEL_NAME = "default"

#: an app view: takes the (possibly absent) request body, returns the
#: payload — a JSON-able dict, or a raw ``str`` served as ``text/plain``
#: (the Prometheus exposition).
_View = Callable[[Optional[bytes]], Union[Dict[str, object], str]]

#: response headers attached to a payload (e.g. ``Allow`` on a 405).
Headers = Dict[str, str]


#: Wire contract: every structured error code this layer can return, with
#: the client-facing meaning.  The ``wire-errors`` lint rule enforces that
#: this registry and the raise sites stay in lockstep (unique, documented,
#: raised, and referenced by a test) — add the code here *and* a test when
#: introducing a new error path.
ERROR_CODES = {
    "artifact-not-found": "a model artifact referenced by a spec is missing",
    "deployment-quarantined": (
        "the deployment is operator-fenced; traffic 503s until unquarantined"
    ),
    "draining": "the replica pool is shutting down; new requests are refused",
    "hub-error": "the hub rejected the operation in its current state",
    "internal": "unexpected server-side failure; message carries the type",
    "invalid-graph": "a graph payload failed structural validation",
    "invalid-json": "the request body is not valid UTF-8 JSON",
    "invalid-request": "a request field is missing, unknown, or mistyped",
    "invalid-spec": "a deployment spec failed validation",
    "length-required": "the request carries a body but no Content-Length",
    "method-not-allowed": "the path exists but not for this HTTP method",
    "model-exists": "a deployment with this name is already loaded",
    "model-not-found": "no deployment with this name is loaded",
    "not-found": "no route matches the request path",
    "over-capacity": (
        "the deployment's admission budget is exhausted; retry after the "
        "Retry-After delay"
    ),
    "payload-too-large": "the declared body size exceeds the configured limit",
    "replica-unavailable": (
        "no ready replica could answer (workers dying faster than the retry "
        "budget, or the pool is still spawning); retry shortly"
    ),
    "timeout": "the prediction did not complete within the request deadline",
    "unsupported-format": "an unknown serialization format was requested",
}

#: Route contract: every path the app serves, with the client-facing
#: meaning.  Dynamic segments are spelled ``{name}``.  The
#: ``route-registry`` lint rule keeps this table, the ``_route``
#: dispatcher, and the test suite in lockstep (every served route
#: registered, every entry served and exercised by a test) — add the
#: route here *and* a test when growing the surface.
ROUTES = {
    "GET /healthz": "liveness probe: cheap, lock-free, always 200",
    "GET /metrics": "service-wide metrics (JSON, or Prometheus text format)",
    "POST /v1/predict": "predict against the default deployment",
    "GET /v1/capacity": "admission-budget capacity report for every model",
    "GET /v1/models": "list deployments with aliases and default marker",
    "GET /v1/models/{name}": "health snapshot of one deployment",
    "POST /v1/models/{name}/predict": "predict against a named deployment",
    "GET /v1/models/{name}/metrics": "per-model serving metrics",
    "GET /v1/models/{name}/capacity": "admission-budget report for one model",
    "GET /v1/models/{name}/drift": "feature-drift report for one model",
    "POST /v1/models/{name}/quarantine": (
        "fence (or, with {\"quarantined\": false}, unfence) a deployment"
    ),
    "POST /v1/models/{name}/load": "load a deployment from a spec body",
    "POST /v1/models/{name}/unload": "unload a deployment",
    "POST /v1/models/{name}/reload": "reload a deployment from its registry spec",
    "POST /v1/models/{name}/alias": "point an alias at a deployment",
}


def error_payload(status: int, code: str, message: str) -> Dict[str, object]:
    """The uniform error body every non-2xx response carries."""
    return {"error": {"status": status, "code": code, "message": message}}


class RequestError(Exception):
    """A client-side problem, mapped onto one structured 4xx response."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        headers: Optional[Headers] = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.headers: Headers = dict(headers or {})

    def payload(self) -> Dict[str, object]:
        return error_payload(self.status, self.code, self.message)


def result_to_dict(result, include_trace: bool = False) -> Dict[str, object]:
    """Wire encoding of a prediction result (single-fold or ensemble).

    The per-stage trace is opt-in (``include_trace``): most clients don't
    want the extra bytes, and the spans are always aggregated into
    ``/metrics`` regardless.
    """
    payload: Dict[str, object] = {
        "name": result.name,
        "fingerprint": result.fingerprint,
        "label": int(result.label),
        "probabilities": [float(p) for p in result.probabilities],
        "configuration": (
            configuration_to_dict(result.configuration)
            if result.configuration is not None
            else None
        ),
        "needs_profiling": (
            bool(result.needs_profiling) if result.needs_profiling is not None else None
        ),
        "cache_hit": bool(result.cache_hit),
        "latency_s": float(result.latency_s),
    }
    if isinstance(result, EnsemblePredictionResult):
        payload["per_fold_labels"] = {
            str(fold): int(label) for fold, label in result.per_fold_labels.items()
        }
        payload["agreement"] = float(result.agreement)
        payload["unanimous"] = bool(result.unanimous)
    if include_trace:
        trace = getattr(result, "trace", None)
        payload["trace"] = (
            {stage: float(value) for stage, value in trace.items()}
            if trace is not None
            else None
        )
    return payload


class ServingApp:
    """Transport-independent request router over one model hub.

    ``handle(method, path, body)`` returns ``(status, payload, headers)``
    and never raises for client mistakes — every validation failure is a
    structured 4xx payload.  The HTTP handler below is a thin byte
    shuffler around it, which keeps the whole protocol unit-testable
    without sockets.

    ``target`` is a :class:`~repro.serving.hub.ModelHub`, a
    :class:`~repro.serving.replica.ReplicaSupervisor` (same routing
    surface, answered by a pool of worker processes), or — the legacy
    shim, kept for PR-3 era callers — a bare
    :class:`~repro.serving.service.ServingFrontend`, which is adopted into
    a fresh one-deployment hub under the name ``"default"``.
    """

    def __init__(
        self,
        target: Union[ModelHub, ReplicaSupervisor, ServingFrontend],
        checkpoint: Optional[CheckpointDaemon] = None,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
    ):
        if request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be > 0")
        if isinstance(target, (ModelHub, ReplicaSupervisor)):
            self.hub = target
        else:
            # Legacy shim: the adopted service keeps its own cache and
            # batcher (enable_cache=False stops the wrapper hub from
            # building an unused shared cache next to them).
            self.hub = ModelHub(enable_cache=False)
            self.hub.adopt(DEFAULT_MODEL_NAME, target)
        self._own_checkpoint = checkpoint
        self.request_timeout_s = float(request_timeout_s)
        self._started = False
        self._started_monotonic = time.monotonic()

    # ----------------------------------------------------------- properties
    @property
    def checkpoint(self) -> Optional[CheckpointDaemon]:
        """The app-managed daemon (legacy shim) or the hub's own."""
        return self._own_checkpoint or self.hub.checkpoint

    @property
    def service(self) -> Optional[ServingFrontend]:
        """The default deployment's predictor (legacy accessor)."""
        try:
            return self.hub.resolve(None).predictor
        except DeploymentNotFoundError:
            return None

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "ServingApp":
        """Start the hub (every deployment's batcher + its daemon); an
        app-level checkpoint daemon (legacy shim) starts alongside."""
        self.hub.start()
        if self._own_checkpoint is not None:
            self._own_checkpoint.start()
        self._started = True
        self._started_monotonic = time.monotonic()
        return self

    def stop(self) -> None:
        """Drain the hub, then stop the daemon (final checkpoint last, so
        results computed during the drain make it into the file)."""
        self._started = False
        self.hub.stop()
        if self._own_checkpoint is not None:
            self._own_checkpoint.stop()

    # -------------------------------------------------------------- routing
    def handle(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, Union[Dict[str, object], str], Headers]:
        path, _, query_string = path.partition("?")
        # Last value wins for repeated parameters, matching common servers.
        query = {
            key: values[-1]
            for key, values in parse_qs(
                query_string, keep_blank_values=True
            ).items()
        }
        path = path.rstrip("/") or "/"
        route = self._route(path, query)
        if route is None:
            return 404, error_payload(404, "not-found", f"unknown path {path!r}"), {}
        allowed = set(route)
        if "GET" in allowed:
            allowed.add("HEAD")
        if method not in allowed:
            allow = ", ".join(sorted(allowed))
            return (
                405,
                error_payload(
                    405,
                    "method-not-allowed",
                    f"{path} only accepts {allow}, got {method}",
                ),
                {"Allow": allow},
            )
        view = route["GET"] if method == "HEAD" else route[method]
        try:
            payload = view(body)
            headers: Headers = (
                {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"}
                if isinstance(payload, str)
                else {}
            )
            return 200, payload, headers
        except RequestError as exc:
            return exc.status, exc.payload(), exc.headers
        except OverCapacityError as exc:
            # Shed, not failed: the admission budget said no.  Retry-After
            # tells well-behaved clients when a slot should free up.
            return (
                429,
                error_payload(429, "over-capacity", str(exc)),
                {"Retry-After": retry_after_header(exc.retry_after_s)},
            )
        except DeploymentNotFoundError as exc:
            return 404, error_payload(404, "model-not-found", str(exc)), {}
        except DeploymentQuarantinedError as exc:
            return 503, error_payload(503, "deployment-quarantined", str(exc)), {}
        except DrainingError as exc:
            # The pool is shutting down: refuse new work before it queues
            # behind workers that are busy draining.
            return 503, error_payload(503, "draining", str(exc)), {}
        except ReplicaUnavailableError as exc:
            # Failover exhausted its retry budget (or nothing is ready yet)
            # — a transient 503, not a client mistake.
            return 503, error_payload(503, "replica-unavailable", str(exc)), {}
        except ArtifactNotFoundError as exc:
            return 404, error_payload(404, "artifact-not-found", str(exc)), {}
        except DeploymentExistsError as exc:
            return 409, error_payload(409, "model-exists", str(exc)), {}
        except DeploymentSpecError as exc:
            return 400, error_payload(400, "invalid-spec", str(exc)), {}
        except HubError as exc:
            return 409, error_payload(409, "hub-error", str(exc)), {}
        except Exception as exc:  # a genuine server-side failure
            return 500, error_payload(500, "internal", f"{type(exc).__name__}: {exc}"), {}

    def _route(
        self, path: str, query: Optional[Dict[str, str]] = None
    ) -> Optional[Dict[str, _View]]:
        """The method → view table for one normalised path (None = 404)."""
        query = query or {}
        if path == "/healthz":
            return {"GET": lambda body: self.healthz()}
        if path == "/metrics":
            return {"GET": lambda body: self.metrics(query.get("format"))}
        if path == "/v1/predict":
            return {"POST": lambda body: self.predict(body, model=None)}
        if path == "/v1/capacity":
            return {"GET": lambda body: self.hub.capacity_report()}
        if path == "/v1/models":
            return {"GET": lambda body: self.list_models()}
        prefix = "/v1/models/"
        if not path.startswith(prefix):
            return None
        segments = path[len(prefix):].split("/")
        if not all(segments):
            return None
        if len(segments) == 1:
            name = segments[0]
            return {"GET": lambda body: self.model_health(name)}
        if len(segments) != 2:
            return None
        name, action = segments
        if action == "predict":
            return {"POST": lambda body: self.predict(body, model=name)}
        if action == "metrics":
            return {"GET": lambda body: self.model_metrics(name)}
        if action == "capacity":
            return {"GET": lambda body: self.hub.capacity_report(name)}
        if action == "drift":
            return {"GET": lambda body: self.hub.model_drift(name)}
        if action == "quarantine":
            return {"POST": lambda body: self.admin_quarantine(name, body)}
        if action == "load":
            return {"POST": lambda body: self.admin_load(name, body)}
        if action == "unload":
            return {"POST": lambda body: self.admin_unload(name)}
        if action == "reload":
            return {"POST": lambda body: self.admin_reload(name)}
        if action == "alias":
            return {"POST": lambda body: self.admin_alias(name, body)}
        return None

    # --------------------------------------------------------------- views
    def healthz(self) -> Dict[str, object]:
        default = self.service
        # The shared hub cache where there is one; the legacy shim falls
        # back to the (sole) adopted service's private cache, preserving
        # the PR-3 healthz shape exactly.
        cache = self.hub.cache
        if cache is None and default is not None:
            cache = default.cache
        return {
            "status": "ok",
            "uptime_s": time.monotonic() - self._started_monotonic,
            "serving": (
                default.describe() if default is not None else self.hub.describe()
            ),
            "models": {
                name: self.hub.model_health(name) for name in self.hub.names()
            },
            "cache": {
                "enabled": cache is not None,
                "entries": len(cache) if cache is not None else 0,
                "warm": bool(cache is not None and len(cache) > 0),
            },
            "checkpoint": (
                self.checkpoint.stats() if self.checkpoint is not None else None
            ),
        }

    def metrics(self, format: Optional[str] = None) -> Union[Dict[str, object], str]:
        default = self.service
        payload = {
            # Legacy section: the default deployment's stats, exactly where
            # PR-3 clients expect them.
            "stats": default.snapshot() if default is not None else None,
            # Hub section: one stats entry per model + shared cache/pool.
            "hub": self.hub.snapshot(),
            "checkpoint": (
                self.checkpoint.stats() if self.checkpoint is not None else None
            ),
        }
        if format is None or format == "json":
            return payload
        if format == "prometheus":
            return render_prometheus(payload)
        raise RequestError(
            406,
            "unsupported-format",
            f"unknown metrics format {format!r}; supported: json, prometheus",
        )

    def list_models(self) -> Dict[str, object]:
        return {
            "models": {
                name: self.hub.model_health(name) for name in self.hub.names()
            },
            "aliases": self.hub.aliases(),
            "default": self.hub.default_name,
            "count": len(self.hub),
        }

    def model_health(self, name: str) -> Dict[str, object]:
        return self.hub.model_health(name)

    def model_metrics(self, name: str) -> Dict[str, object]:
        deployment = self.hub.resolve(name)
        return {"model": deployment.name, "stats": deployment.predictor.snapshot()}

    def predict(self, body: Optional[bytes], model: Optional[str]) -> Dict[str, object]:
        # Resolve before parsing the body: an unknown (or quarantined)
        # model 404s/503s fast, before any decode work.  The deployment's
        # predictor may be in-process or a replica-pool proxy; prediction
        # itself goes through the hub-level entry points, which route
        # identically for both.
        predictor = self.hub.resolve_for_predict(model).predictor
        decode_start = time.perf_counter()
        payload = self._parse_body(body)
        include_trace = payload.get("trace", False)
        if not isinstance(include_trace, bool):
            raise RequestError(400, "invalid-request", "'trace' must be a boolean")
        if "graph" in payload:
            graph = self._decode_graph(payload["graph"], "graph")
            decode_s = time.perf_counter() - decode_start
            self._record_decode(predictor, decode_s)
            # Through the micro-batcher: concurrent HTTP handler threads
            # coalesce into shared forward passes.  Fall back to the sync
            # path when the app (hence the batchers) was never started.
            if self._started:
                future = self.hub.submit(model, graph)
                try:
                    result = future.result(timeout=self.request_timeout_s)
                except FutureTimeoutError:
                    future.cancel()
                    raise RequestError(
                        504,
                        "timeout",
                        f"prediction did not complete within {self.request_timeout_s}s",
                    ) from None
            else:
                result = self.hub.predict_many(model, [graph])[0]
            self._attach_decode(result, decode_s)
            return {"result": result_to_dict(result, include_trace=include_trace)}

        entries = payload["graphs"]
        if not isinstance(entries, list):
            raise RequestError(
                400, "invalid-request", "'graphs' must be a list of graph objects"
            )
        graphs = [
            self._decode_graph(entry, f"graphs[{i}]") for i, entry in enumerate(entries)
        ]
        # One decode span for the whole body — parsing and decoding happen
        # as one pass, so each result reports what its request paid.
        decode_s = time.perf_counter() - decode_start
        self._record_decode(predictor, decode_s)
        # Batch bodies bypass submit(), so the hub charges the admission
        # budget (one slot per graph); over-budget raises
        # OverCapacityError, mapped onto the structured 429 in handle().
        results = self.hub.predict_many(model, graphs)
        for result in results:
            self._attach_decode(result, decode_s)
        return {
            "results": [
                result_to_dict(result, include_trace=include_trace)
                for result in results
            ],
            "count": len(results),
        }

    @staticmethod
    def _record_decode(predictor, decode_s: float) -> None:
        """Fold the HTTP decode span into the predictor's stage stats."""
        stats = getattr(predictor, "stats", None)
        record = getattr(stats, "record_stage", None)
        if record is not None:
            record("decode", decode_s)

    @staticmethod
    def _attach_decode(result, decode_s: float) -> None:
        trace = getattr(result, "trace", None)
        if trace is not None:
            trace["decode_s"] = decode_s

    # ---------------------------------------------------------------- admin
    def admin_load(self, name: str, body: Optional[bytes]) -> Dict[str, object]:
        """``POST /v1/models/<name>/load`` — deploy a spec under ``name``.

        The body is a :class:`DeploymentSpec` object (its ``name`` may be
        omitted — the URL supplies it — but must match if present), or
        ``{"spec": {...}, "replace": true}`` to atomically swap an
        existing deployment of the same name.
        """
        payload = self._parse_json_object(body)
        replace = False
        if "spec" in payload:
            replace = payload.get("replace", False)
            if not isinstance(replace, bool):
                raise RequestError(400, "invalid-request", "'replace' must be a boolean")
            unknown = sorted(set(payload) - {"spec", "replace"})
            if unknown:
                raise RequestError(
                    400, "invalid-request", f"unknown field(s) {unknown}"
                )
            spec_data = payload["spec"]
        else:
            spec_data = payload
        spec = deployment_spec_from_dict(spec_data, name=name)
        deployment = self.hub.load(spec, replace=replace)
        return {"loaded": deployment.name, "model": deployment.describe()}

    def admin_unload(self, name: str) -> Dict[str, object]:
        deployment = self.hub.unload(name)
        return {"unloaded": deployment.name}

    def admin_quarantine(self, name: str, body: Optional[bytes]) -> Dict[str, object]:
        """``POST /v1/models/<name>/quarantine`` with ``{"quarantined":
        true, "reason": ...}`` — fence a deployment off from prediction
        traffic (it 503s until ``{"quarantined": false}``) without losing
        its cache namespace, stats, or journal binding."""
        payload = self._parse_json_object(body)
        unknown = sorted(set(payload) - {"quarantined", "reason"})
        if unknown:
            raise RequestError(400, "invalid-request", f"unknown field(s) {unknown}")
        quarantined = payload.get("quarantined")
        if not isinstance(quarantined, bool):
            raise RequestError(
                400, "invalid-request", "'quarantined' must be a boolean"
            )
        reason = payload.get("reason", "operator request")
        if not isinstance(reason, str):
            raise RequestError(400, "invalid-request", "'reason' must be a string")
        deployment = self.hub.resolve(name)
        if quarantined:
            self.hub.quarantine(deployment.name, reason)
        else:
            self.hub.unquarantine(deployment.name)
        return {
            "model": deployment.name,
            "quarantined": self.hub.quarantined().get(deployment.name) is not None,
        }

    def admin_reload(self, name: str) -> Dict[str, object]:
        deployment = self.hub.reload(name)
        return {"reloaded": deployment.name, "model": deployment.describe()}

    def admin_alias(self, name: str, body: Optional[bytes]) -> Dict[str, object]:
        """``POST /v1/models/<alias>/alias`` with ``{"target": <model>}`` —
        atomically (re)point ``<alias>`` at a loaded deployment.  A null
        ``target`` drops the alias, so the full alias lifecycle (create,
        flip, remove — e.g. before unloading its last target) is available
        remotely."""
        payload = self._parse_json_object(body)
        unknown = sorted(set(payload) - {"target"})
        if unknown:
            raise RequestError(400, "invalid-request", f"unknown field(s) {unknown}")
        if "target" not in payload:
            raise RequestError(
                400,
                "invalid-request",
                "'target' must name a loaded deployment (or be null to drop "
                "the alias)",
            )
        target = payload["target"]
        if target is None:
            self.hub.unalias(name)
            return {"alias": name, "target": None}
        if not isinstance(target, str):
            raise RequestError(
                400, "invalid-request", "'target' must name a loaded deployment"
            )
        self.hub.alias(name, target)
        return {"alias": name, "target": target}

    # ------------------------------------------------------------ internals
    def _parse_json_object(self, body: Optional[bytes]) -> Dict[str, object]:
        if not body:
            raise RequestError(400, "invalid-request", "request body is empty")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(400, "invalid-json", f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise RequestError(
                400, "invalid-request", "request body must be a JSON object"
            )
        return payload

    def _parse_body(self, body: Optional[bytes]) -> Dict[str, object]:
        payload = self._parse_json_object(body)
        unknown = sorted(set(payload) - {"graph", "graphs", "trace"})
        if unknown:
            raise RequestError(
                400,
                "invalid-request",
                f"unknown field(s) {unknown}; expected 'graph' or 'graphs' "
                f"(plus optional 'trace')",
            )
        if ("graph" in payload) == ("graphs" in payload):
            raise RequestError(
                400,
                "invalid-request",
                "provide exactly one of 'graph' (single) or 'graphs' (batch)",
            )
        return payload

    def _decode_graph(self, data: object, what: str):
        try:
            return program_graph_from_dict(data)
        except SerializationError as exc:
            raise RequestError(400, "invalid-graph", f"{what}: {exc}") from exc


class _RequestHandler(BaseHTTPRequestHandler):
    """Byte-level glue between ``http.server`` and :class:`ServingApp`."""

    server_version = "repro-serve/2.0"
    protocol_version = "HTTP/1.1"  # keep-alive; we always send Content-Length
    disable_nagle_algorithm = True  # small JSON responses, don't buffer them
    # Blocked reads (slow-loris bodies, idle keep-alive connections) time
    # out instead of pinning a handler thread forever; this also bounds how
    # long close() can wait on an in-flight connection.
    timeout = 30.0

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._handle_bodyless("GET")

    def do_HEAD(self) -> None:  # noqa: N802
        self._handle_bodyless("HEAD")

    def do_POST(self) -> None:  # noqa: N802
        body, failure = self._read_body()
        if failure is not None:
            # The body was never read off the socket; on a keep-alive
            # connection it would be parsed as the next request line, so
            # this connection must close after the error response.
            self.close_connection = True
            self._respond(failure[0], failure[1])
            return
        status, payload, headers = self.server.app.handle("POST", self.path, body)
        self._respond(status, payload, headers)

    # ------------------------------------------------------------ internals
    def _handle_bodyless(self, method: str) -> None:
        # GET/HEAD bodies are never read; leaving one on a keep-alive
        # socket would desync the next request, so close after answering.
        length = self.headers.get("Content-Length")
        if length is not None and length.strip() not in ("", "0"):
            self.close_connection = True
        status, payload, headers = self.server.app.handle(method, self.path)
        self._respond(status, payload, headers, omit_body=method == "HEAD")

    def _read_body(
        self,
    ) -> Tuple[Optional[bytes], Optional[Tuple[int, Dict[str, object]]]]:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            return None, (
                411,
                error_payload(411, "length-required", "Content-Length is required"),
            )
        try:
            length = int(length_header)
        except ValueError:
            length = -1
        if length < 0:
            return None, (
                400,
                error_payload(
                    400, "invalid-request", f"bad Content-Length {length_header!r}"
                ),
            )
        limit = self.server.max_body_bytes
        if length > limit:
            return None, (
                413,
                error_payload(
                    413,
                    "payload-too-large",
                    f"body of {length} bytes exceeds the {limit}-byte limit",
                ),
            )
        return self.rfile.read(length), None

    def _respond(
        self,
        status: int,
        payload: Union[Dict[str, object], str],
        headers: Optional[Headers] = None,
        omit_body: bool = False,
    ) -> None:
        headers = dict(headers or {})
        if isinstance(payload, str):
            # Raw text view (the Prometheus exposition); the app supplied
            # its Content-Type alongside.
            body = payload.encode("utf-8")
            content_type = headers.pop(
                "Content-Type", "text/plain; charset=utf-8"
            )
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json; charset=utf-8"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        # HEAD advertises the length GET would have sent, with no body.
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        if not omit_body:
            self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)


class PredictionHTTPServer(ThreadingHTTPServer):
    """A :class:`ServingApp` bound to a threading HTTP server.

    ``start()`` brings up the whole stack — per-deployment micro-batchers,
    checkpoint daemon, accept loop in a background thread — and
    ``close()`` tears it down in reverse order, writing a final cache
    checkpoint on the way so the next process can start warm.  ``port=0``
    binds an ephemeral port (read it back from :attr:`port`), which is
    what the tests use.

    ``target`` is a :class:`~repro.serving.hub.ModelHub`, a
    :class:`~repro.serving.replica.ReplicaSupervisor`, or — the legacy
    single-model shim — a bare :class:`ServingFrontend`.

    Handler threads are non-daemon on purpose: ``server_close()`` joins
    them (``block_on_close``), so by the time the batchers are drained and
    the final checkpoint is written no request is still in flight.  The
    handler's socket ``timeout`` bounds how long that join can take.
    """

    # ThreadingHTTPServer defaults this to True, which would skip the join.
    daemon_threads = False

    def __init__(
        self,
        target: Union[ModelHub, ReplicaSupervisor, ServingFrontend],
        host: str = "127.0.0.1",
        port: int = 0,
        checkpoint: Optional[CheckpointDaemon] = None,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        quiet: bool = True,
    ):
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        self.app = ServingApp(
            target, checkpoint=checkpoint, request_timeout_s=request_timeout_s
        )
        self.max_body_bytes = int(max_body_bytes)
        self.quiet = quiet
        self._serve_thread: Optional[threading.Thread] = None
        self._closed = False
        super().__init__((host, port), _RequestHandler)

    # ------------------------------------------------------------ addressing
    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "PredictionHTTPServer":
        """Serve in a background thread (batchers + daemon started first)."""
        if self._closed:
            raise RuntimeError("cannot restart a closed PredictionHTTPServer")
        if self._serve_thread is None:
            self.app.start()
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="repro-http-serve", daemon=True
            )
            self._serve_thread.start()
        return self

    def run(self) -> None:
        """Serve in the foreground until interrupted (the CLI entry point)."""
        self.app.start()
        try:
            self.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self) -> None:
        """Stop accepting, then stop the daemon (final checkpoint) and batchers."""
        if self._closed:
            return
        self._closed = True
        thread, self._serve_thread = self._serve_thread, None
        if thread is not None:
            # shutdown() blocks until serve_forever exits, so only call it
            # when the accept loop actually ran.
            self.shutdown()
            thread.join()
        self.server_close()
        self.app.stop()

    def __enter__(self) -> "PredictionHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
