"""JSON-over-HTTP wire protocol for the prediction services.

The serving layer (:mod:`repro.serving.service`, :mod:`repro.serving.ensemble`)
is in-process only; this module puts either front-end behind a stdlib
HTTP server (``http.server.ThreadingHTTPServer`` — no third-party web
framework) so any process that can speak JSON can query a deployed
predictor:

* ``POST /v1/predict`` — body ``{"graph": {...}}`` (one wire-encoded
  :class:`~repro.graphs.graph.ProgramGraph`) or ``{"graphs": [{...}, ...]}``
  (a batch).  Single-graph requests are routed through the service's
  micro-batcher, so concurrent HTTP clients coalesce into shared RGCN
  forward passes exactly like in-process ``submit`` callers; batch bodies
  go straight to ``predict_many``.  Responses carry label, probabilities,
  configuration and cache/latency telemetry per graph (plus per-fold
  labels and agreement for ensembles).
* ``GET /healthz`` — liveness plus identity: which artifact/members are
  served and whether the cache is warm.
* ``GET /metrics`` — ``ServingStats.snapshot()`` + cache + checkpoint
  telemetry as one JSON document.

Malformed requests (invalid JSON, unknown fields, structurally invalid
graphs, unsupported schema versions) are mapped onto structured 4xx
responses — ``{"error": {"status": ..., "code": ..., "message": ...}}`` —
never opaque 500s; only a genuine server-side failure produces a 500.

:class:`ServingApp` holds the transport-independent routing/validation
logic (testable without opening a socket); :class:`PredictionHTTPServer`
binds it to a threading HTTP server and manages the service's batcher and
an optional :class:`~repro.serving.cache.CheckpointDaemon` lifecycle.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from .cache import CheckpointDaemon
from .ensemble import EnsemblePredictionResult
from .serialization import (
    SerializationError,
    configuration_to_dict,
    program_graph_from_dict,
)
from .service import ServingFrontend

#: requests larger than this are rejected with 413 before being parsed.
DEFAULT_MAX_BODY_BYTES = 8 << 20  # 8 MiB

#: how long one /v1/predict request may wait on the micro-batcher.
DEFAULT_REQUEST_TIMEOUT_S = 30.0


def error_payload(status: int, code: str, message: str) -> Dict[str, object]:
    """The uniform error body every non-2xx response carries."""
    return {"error": {"status": status, "code": code, "message": message}}


class RequestError(Exception):
    """A client-side problem, mapped onto one structured 4xx response."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def payload(self) -> Dict[str, object]:
        return error_payload(self.status, self.code, self.message)


def result_to_dict(result) -> Dict[str, object]:
    """Wire encoding of a prediction result (single-fold or ensemble)."""
    payload: Dict[str, object] = {
        "name": result.name,
        "fingerprint": result.fingerprint,
        "label": int(result.label),
        "probabilities": [float(p) for p in result.probabilities],
        "configuration": (
            configuration_to_dict(result.configuration)
            if result.configuration is not None
            else None
        ),
        "needs_profiling": (
            bool(result.needs_profiling) if result.needs_profiling is not None else None
        ),
        "cache_hit": bool(result.cache_hit),
        "latency_s": float(result.latency_s),
    }
    if isinstance(result, EnsemblePredictionResult):
        payload["per_fold_labels"] = {
            str(fold): int(label) for fold, label in result.per_fold_labels.items()
        }
        payload["agreement"] = float(result.agreement)
        payload["unanimous"] = bool(result.unanimous)
    return payload


class ServingApp:
    """Transport-independent request router over one serving front-end.

    ``handle(method, path, body)`` returns ``(status, payload)`` and never
    raises for client mistakes — every validation failure is a structured
    4xx payload.  The HTTP handler below is a thin byte shuffler around it,
    which keeps the whole protocol unit-testable without sockets.
    """

    def __init__(
        self,
        service: ServingFrontend,
        checkpoint: Optional[CheckpointDaemon] = None,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
    ):
        if request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be > 0")
        self.service = service
        self.checkpoint = checkpoint
        self.request_timeout_s = float(request_timeout_s)
        self._started = False
        self._started_monotonic = time.monotonic()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "ServingApp":
        """Start the service's micro-batcher and the checkpoint daemon."""
        self.service.start()
        if self.checkpoint is not None:
            self.checkpoint.start()
        self._started = True
        self._started_monotonic = time.monotonic()
        return self

    def stop(self) -> None:
        """Drain the batcher, then stop the daemon (final checkpoint last,
        so results computed during the drain make it into the file)."""
        self._started = False
        self.service.stop()
        if self.checkpoint is not None:
            self.checkpoint.stop()

    # -------------------------------------------------------------- routing
    def handle(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, Dict[str, object]]:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        routes = {
            "/healthz": ("GET", self.healthz),
            "/metrics": ("GET", self.metrics),
            "/v1/predict": ("POST", None),
        }
        if path not in routes:
            return 404, error_payload(404, "not-found", f"unknown path {path!r}")
        expected_method, view = routes[path]
        if method != expected_method:
            return 405, error_payload(
                405,
                "method-not-allowed",
                f"{path} only accepts {expected_method}, got {method}",
            )
        try:
            if view is not None:
                return 200, view()
            return 200, self.predict(body)
        except RequestError as exc:
            return exc.status, exc.payload()
        except Exception as exc:  # a genuine server-side failure
            return 500, error_payload(500, "internal", f"{type(exc).__name__}: {exc}")

    # --------------------------------------------------------------- views
    def healthz(self) -> Dict[str, object]:
        cache = self.service.cache
        return {
            "status": "ok",
            "uptime_s": time.monotonic() - self._started_monotonic,
            "serving": self.service.describe(),
            "cache": {
                "enabled": cache is not None,
                "entries": len(cache) if cache is not None else 0,
                "warm": bool(cache is not None and len(cache) > 0),
            },
            "checkpoint": (
                self.checkpoint.stats() if self.checkpoint is not None else None
            ),
        }

    def metrics(self) -> Dict[str, object]:
        return {
            "stats": self.service.snapshot(),
            "checkpoint": (
                self.checkpoint.stats() if self.checkpoint is not None else None
            ),
        }

    def predict(self, body: Optional[bytes]) -> Dict[str, object]:
        payload = self._parse_body(body)
        if "graph" in payload:
            graph = self._decode_graph(payload["graph"], "graph")
            # Through the micro-batcher: concurrent HTTP handler threads
            # coalesce into shared forward passes.  Fall back to the sync
            # path when the app (hence the batcher) was never started.
            if self._started:
                future = self.service.submit(graph)
                try:
                    result = future.result(timeout=self.request_timeout_s)
                except FutureTimeoutError:
                    future.cancel()
                    raise RequestError(
                        504,
                        "timeout",
                        f"prediction did not complete within {self.request_timeout_s}s",
                    ) from None
            else:
                result = self.service.predict_many([graph])[0]
            return {"result": result_to_dict(result)}

        entries = payload["graphs"]
        if not isinstance(entries, list):
            raise RequestError(
                400, "invalid-request", "'graphs' must be a list of graph objects"
            )
        graphs = [
            self._decode_graph(entry, f"graphs[{i}]") for i, entry in enumerate(entries)
        ]
        results = self.service.predict_many(graphs)
        return {
            "results": [result_to_dict(result) for result in results],
            "count": len(results),
        }

    # ------------------------------------------------------------ internals
    def _parse_body(self, body: Optional[bytes]) -> Dict[str, object]:
        if not body:
            raise RequestError(400, "invalid-request", "request body is empty")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(400, "invalid-json", f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise RequestError(
                400, "invalid-request", "request body must be a JSON object"
            )
        unknown = sorted(set(payload) - {"graph", "graphs"})
        if unknown:
            raise RequestError(
                400,
                "invalid-request",
                f"unknown field(s) {unknown}; expected 'graph' or 'graphs'",
            )
        if ("graph" in payload) == ("graphs" in payload):
            raise RequestError(
                400,
                "invalid-request",
                "provide exactly one of 'graph' (single) or 'graphs' (batch)",
            )
        return payload

    def _decode_graph(self, data: object, what: str):
        try:
            return program_graph_from_dict(data)
        except SerializationError as exc:
            raise RequestError(400, "invalid-graph", f"{what}: {exc}") from exc


class _RequestHandler(BaseHTTPRequestHandler):
    """Byte-level glue between ``http.server`` and :class:`ServingApp`."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"  # keep-alive; we always send Content-Length
    disable_nagle_algorithm = True  # small JSON responses, don't buffer them
    # Blocked reads (slow-loris bodies, idle keep-alive connections) time
    # out instead of pinning a handler thread forever; this also bounds how
    # long close() can wait on an in-flight connection.
    timeout = 30.0

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        # GET bodies are never read; leaving one on a keep-alive socket
        # would desync the next request, so close after answering.
        length = self.headers.get("Content-Length")
        if length is not None and length.strip() not in ("", "0"):
            self.close_connection = True
        status, payload = self.server.app.handle("GET", self.path)
        self._respond(status, payload)

    def do_POST(self) -> None:  # noqa: N802
        body, failure = self._read_body()
        if failure is not None:
            # The body was never read off the socket; on a keep-alive
            # connection it would be parsed as the next request line, so
            # this connection must close after the error response.
            self.close_connection = True
            self._respond(failure[0], failure[1])
            return
        status, payload = self.server.app.handle("POST", self.path, body)
        self._respond(status, payload)

    # ------------------------------------------------------------ internals
    def _read_body(
        self,
    ) -> Tuple[Optional[bytes], Optional[Tuple[int, Dict[str, object]]]]:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            return None, (
                411,
                error_payload(411, "length-required", "Content-Length is required"),
            )
        try:
            length = int(length_header)
        except ValueError:
            length = -1
        if length < 0:
            return None, (
                400,
                error_payload(
                    400, "invalid-request", f"bad Content-Length {length_header!r}"
                ),
            )
        limit = self.server.max_body_bytes
        if length > limit:
            return None, (
                413,
                error_payload(
                    413,
                    "payload-too-large",
                    f"body of {length} bytes exceeds the {limit}-byte limit",
                ),
            )
        return self.rfile.read(length), None

    def _respond(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)


class PredictionHTTPServer(ThreadingHTTPServer):
    """A :class:`ServingApp` bound to a threading HTTP server.

    ``start()`` brings up the whole stack — micro-batcher, checkpoint
    daemon, accept loop in a background thread — and ``close()`` tears it
    down in reverse order, writing a final cache checkpoint on the way so
    the next process can start warm.  ``port=0`` binds an ephemeral port
    (read it back from :attr:`port`), which is what the tests use.

    Handler threads are non-daemon on purpose: ``server_close()`` joins
    them (``block_on_close``), so by the time the batcher is drained and
    the final checkpoint is written no request is still in flight.  The
    handler's socket ``timeout`` bounds how long that join can take.
    """

    # ThreadingHTTPServer defaults this to True, which would skip the join.
    daemon_threads = False

    def __init__(
        self,
        service: ServingFrontend,
        host: str = "127.0.0.1",
        port: int = 0,
        checkpoint: Optional[CheckpointDaemon] = None,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        quiet: bool = True,
    ):
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        self.app = ServingApp(
            service, checkpoint=checkpoint, request_timeout_s=request_timeout_s
        )
        self.max_body_bytes = int(max_body_bytes)
        self.quiet = quiet
        self._serve_thread: Optional[threading.Thread] = None
        self._closed = False
        super().__init__((host, port), _RequestHandler)

    # ------------------------------------------------------------ addressing
    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "PredictionHTTPServer":
        """Serve in a background thread (batcher + daemon started first)."""
        if self._closed:
            raise RuntimeError("cannot restart a closed PredictionHTTPServer")
        if self._serve_thread is None:
            self.app.start()
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="repro-http-serve", daemon=True
            )
            self._serve_thread.start()
        return self

    def run(self) -> None:
        """Serve in the foreground until interrupted (the CLI entry point)."""
        self.app.start()
        try:
            self.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self) -> None:
        """Stop accepting, then stop the daemon (final checkpoint) and batcher."""
        if self._closed:
            return
        self._closed = True
        thread, self._serve_thread = self._serve_thread, None
        if thread is not None:
            # shutdown() blocks until serve_forever exits, so only call it
            # when the accept loop actually ran.
            self.shutdown()
            thread.join()
        self.server_close()
        self.app.stop()

    def __enter__(self) -> "PredictionHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
