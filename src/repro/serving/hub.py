"""Multi-model serving hub: many named deployments in one process.

PRs 1–4 built a serving stack that could host exactly one artifact (or one
fold ensemble) per process; deploying a second model meant a second process
with its own cache, batcher threads and checkpoint file.  The hub removes
that ceiling:

* **One API.**  A :class:`~repro.serving.deployment.DeploymentSpec`
  declares *what* to serve (artifact or fold group, version pin or latest,
  combination strategy, serving knobs); :meth:`ModelHub.load` resolves it
  against the :class:`~repro.serving.registry.ArtifactRegistry` and builds
  the right front-end behind the
  :class:`~repro.serving.deployment.Predictor` protocol — single-fold and
  ensemble serving are two implementations of one interface, not two APIs.
* **Shared infrastructure.**  Every deployment shares one
  :class:`~repro.serving.cache.EmbeddingCache` (keys are namespaced by
  model digest, so co-tenants never replay each other's logits), one
  :class:`~repro.serving.cache.CheckpointDaemon` persisting that cache,
  and one :class:`~repro.serving.batcher.BatcherWorkerPool` draining every
  deployment's micro-batch queue — threads scale with traffic, not with
  model count.
* **Runtime mutation.**  :meth:`load` / :meth:`unload` / :meth:`reload`
  change the served set while requests are in flight: routing is one
  locked dict lookup, a request that resolved a deployment always runs
  against a fully-built predictor, and an unloaded deployment finishes
  draining its queued requests before its batcher dies.
* **Aliases.**  :meth:`alias` maps a stable public name to a deployment
  (``prod → demo-v3``) and flips atomically, so a version swap is: load
  the new deployment, flip the alias, unload the old one — zero failed
  requests in between.

The HTTP layer (:mod:`repro.serving.http`) routes
``POST /v1/models/<name>/predict`` and friends straight onto a hub; the
legacy single-model entry points construct a one-deployment hub under the
hood, so existing callers and the ``repro-serve`` CLI keep working
unchanged.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..concurrency import TrackedRLock
from .batcher import BatcherWorkerPool
from .cache import CheckpointDaemon, EmbeddingCache
from .costmodel import (
    DEFAULT_COST_MODEL_NAME,
    LatencyCostModel,
    cost_model_summary,
    load_cost_model,
)
from .deployment import (
    DeploymentSpec,
    DeploymentSpecError,
    Predictor,
    deployment_spec_to_dict,
    validate_deployment_name,
)
from .drift import DriftConfig, detect_drift
from .ensemble import EnsemblePredictionService
from .journal import JournalWriter
from .registry import ArtifactRegistry
from .service import PredictionService, ServingFrontend
from .stats import aggregate_snapshots


def _admission_guard(predictor: Predictor, count: int):
    """The predictor's sync admission guard, or a no-op for predictors
    (adopted stubs, remote proxies) that don't budget admission."""
    guard = getattr(predictor, "admission_guard", None)
    if guard is None:
        return nullcontext()
    return guard(count)


class HubError(RuntimeError):
    """Base class for hub failures (invalid mutation, no registry, ...)."""


class DeploymentNotFoundError(HubError):
    """The requested deployment (or alias) is not loaded."""


class DeploymentExistsError(HubError):
    """The requested deployment/alias name is already taken."""


class DeploymentQuarantinedError(HubError):
    """The deployment exists but an operator fenced it off from traffic."""


@dataclass
class Deployment:
    """One loaded model: its spec (if declaratively loaded) + predictor."""

    name: str
    predictor: Predictor
    spec: Optional[DeploymentSpec]
    created_unix: float

    @property
    def adopted(self) -> bool:
        """True when the predictor was handed over pre-built (legacy shim
        path) rather than resolved from a spec — such deployments cannot
        :meth:`~ModelHub.reload`."""
        return self.spec is None

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "created_unix": self.created_unix,
            "adopted": self.adopted,
            "serving": self.predictor.describe(),
            "spec": deployment_spec_to_dict(self.spec) if self.spec else None,
        }


class ModelHub:
    """Owns many named deployments behind one registry and one cache.

    ``registry`` may be an :class:`ArtifactRegistry`, a root path, or
    ``None`` (a hub that only :meth:`adopt`\\ s pre-built predictors — the
    legacy single-model shim).  The hub's shared cache/daemon/worker-pool
    are created here; per-deployment knobs come from each spec.
    """

    def __init__(
        self,
        registry: Union[ArtifactRegistry, str, None] = None,
        *,
        cache_capacity: int = 4096,
        enable_cache: bool = True,
        warmup_path: Optional[str] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_interval_s: float = 30.0,
        pool_workers: int = 2,
        journal_dir: Optional[str] = None,
        journal_record_graphs: bool = True,
        drift_config: Optional[DriftConfig] = None,
        cost_model: Optional[LatencyCostModel] = None,
    ):
        if isinstance(registry, str):
            registry = ArtifactRegistry(registry)
        self.registry = registry
        # Validate every path-type knob up front (fspath raises a TypeError
        # on non-path objects) so a miswired caller fails here, loudly,
        # instead of a repr-named directory appearing on disk later.
        if warmup_path is not None:
            warmup_path = os.fspath(warmup_path)
        if checkpoint_path is not None:
            checkpoint_path = os.fspath(checkpoint_path)
        if journal_dir is not None:
            journal_dir = os.fspath(journal_dir)
        self.cache: Optional[EmbeddingCache] = (
            EmbeddingCache(cache_capacity) if enable_cache else None
        )
        # Same degrade-to-cold-start contract as the single services: a
        # missing/torn warm-up file must never stop the hub from booting.
        ServingFrontend._best_effort_warm_up(self.cache, warmup_path)
        if checkpoint_path and self.cache is None:
            raise HubError("checkpoint_path requires the shared cache (enable_cache)")
        self.checkpoint: Optional[CheckpointDaemon] = (
            CheckpointDaemon(self.cache, checkpoint_path, interval_s=checkpoint_interval_s)
            if checkpoint_path
            else None
        )
        self.pool = BatcherWorkerPool(workers=pool_workers)
        # One journal for the whole hub: every deployment's predict path
        # records into it (filed under the deployment name), so one
        # directory holds the process's complete served-traffic history.
        self.journal: Optional[JournalWriter] = (
            JournalWriter(journal_dir, record_graphs=journal_record_graphs)
            if journal_dir
            else None
        )
        self.drift_config = drift_config or DriftConfig()
        self._cost_model = cost_model
        self._lock = TrackedRLock("hub.routing")
        self._deployments: Dict[str, Deployment] = {}
        self._aliases: Dict[str, str] = {}
        self._quarantined: Dict[str, str] = {}
        self._default: Optional[str] = None
        self._started = False
        self._created_monotonic = time.monotonic()

    # ------------------------------------------------------------ mutation
    def load(self, spec: DeploymentSpec, replace: bool = False) -> Deployment:
        """Resolve ``spec`` against the registry and start serving it.

        Building the predictor (weight deserialisation, fold stacking)
        happens outside the hub lock, so loading a heavy model never
        stalls routing for the models already serving.  With
        ``replace=True`` an existing deployment of the same name is
        atomically swapped out and drained after the swap — in-flight
        requests finish on the predictor they resolved.
        """
        predictor = self._build(spec)
        return self._install(spec.name, predictor, spec, replace=replace)

    def adopt(
        self,
        name: str,
        predictor: Predictor,
        spec: Optional[DeploymentSpec] = None,
        replace: bool = False,
    ) -> Deployment:
        """Install a pre-built predictor under ``name``.

        This is the legacy shim path (``ServingApp`` wraps a bare service
        in a one-deployment hub) and the escape hatch for predictors the
        registry cannot express; without a ``spec`` the deployment cannot
        be :meth:`reload`\\ ed.
        """
        try:
            validate_deployment_name(name)
        except DeploymentSpecError as exc:
            raise HubError(str(exc)) from exc
        return self._install(name, predictor, spec, replace=replace)

    def unload(self, name: str) -> Deployment:
        """Stop serving ``name`` and drain its queued requests.

        Refuses to unload an alias target: flip or drop the alias first,
        so a stable public name can never silently dangle.  Requests that
        already resolved the deployment finish normally; new lookups get
        :class:`DeploymentNotFoundError` (HTTP 404) immediately.
        """
        with self._lock:
            deployment = self._deployments.get(name)
            if deployment is None:
                raise DeploymentNotFoundError(f"no deployment named {name!r}")
            pointing = sorted(
                alias for alias, target in self._aliases.items() if target == name
            )
            if pointing:
                raise HubError(
                    f"deployment {name!r} is the target of alias(es) {pointing}; "
                    f"repoint or drop them before unloading"
                )
            del self._deployments[name]
            self._quarantined.pop(name, None)
            if self._default == name:
                remaining = list(self._deployments)
                # Deterministic: a sole survivor inherits the default
                # (legacy routes keep working); ambiguity clears it.
                self._default = remaining[0] if len(remaining) == 1 else None
        deployment.predictor.stop()
        return deployment

    def reload(self, name: str) -> Deployment:
        """Rebuild ``name`` from its spec (re-resolving ``latest`` pins).

        The swap is atomic: requests route to the old predictor until the
        new one is fully built, then to the new one; the old predictor is
        drained and stopped after the swap.
        """
        with self._lock:
            current = self._deployments.get(name)
            if current is None:
                raise DeploymentNotFoundError(f"no deployment named {name!r}")
            if current.spec is None:
                raise HubError(
                    f"deployment {name!r} was adopted pre-built and has no spec; "
                    f"load() it declaratively to make it reloadable"
                )
            spec = current.spec
        predictor = self._build(spec)
        return self._install(name, predictor, spec, replace=True)

    def alias(self, alias: str, target: str) -> None:
        """Point ``alias`` at deployment ``target`` (atomic flip).

        An alias is how zero-downtime version swaps work: clients call
        ``prod``, operators flip where ``prod`` points.  Alias names live
        in the same URL namespace as deployment names, so collisions are
        rejected.
        """
        try:
            validate_deployment_name(alias)
        except DeploymentSpecError as exc:
            raise HubError(str(exc)) from exc
        with self._lock:
            if alias in self._deployments:
                raise DeploymentExistsError(
                    f"{alias!r} is a deployment name; aliases must not shadow one"
                )
            if target not in self._deployments:
                raise DeploymentNotFoundError(
                    f"alias target {target!r} is not a loaded deployment"
                )
            self._aliases[alias] = target

    def unalias(self, alias: str) -> None:
        with self._lock:
            if alias not in self._aliases:
                raise DeploymentNotFoundError(f"no alias named {alias!r}")
            del self._aliases[alias]

    def set_default(self, name: str) -> None:
        """Choose which deployment answers the legacy unnamed routes."""
        with self._lock:
            if name not in self._deployments:
                raise DeploymentNotFoundError(f"no deployment named {name!r}")
            self._default = name

    # ------------------------------------------------- cost model & fencing
    def set_cost_model(self, model: Optional[LatencyCostModel]) -> None:
        """Install (or clear) the calibrated latency cost model, hub-wide.

        Every loaded deployment that understands SLOs is rebound
        immediately — deadline-aware batch closing and admission budgets
        pick up the new calibration without a reload.  Deployments loaded
        later get the model at build time.
        """
        with self._lock:
            self._cost_model = model
            deployments = list(self._deployments.values())
        for deployment in deployments:
            bind = getattr(deployment.predictor, "bind_slo", None)
            if bind is None:
                continue
            spec = deployment.spec
            slo = (
                spec.slo
                if spec is not None
                else getattr(deployment.predictor, "_slo", None)
            )
            bind(slo, model)

    def reload_cost_model(
        self,
        name: str = DEFAULT_COST_MODEL_NAME,
        version: Optional[str] = None,
    ) -> LatencyCostModel:
        """Hot-reload the cost model from the registry and rebind everyone."""
        if self.registry is None:
            raise HubError(
                "this hub has no registry; construct it with one to load "
                "cost-model artifacts"
            )
        model = load_cost_model(self.registry, name, version)
        self.set_cost_model(model)
        return model

    @property
    def cost_model(self) -> Optional[LatencyCostModel]:
        with self._lock:
            return self._cost_model

    def quarantine(self, name: str, reason: str = "operator request") -> None:
        """Fence ``name`` off from prediction traffic without unloading it.

        Quarantined deployments keep their state (cache namespace, stats,
        journal binding) and answer admin/introspection routes, but every
        predict/submit resolves to a structured 503 until
        :meth:`unquarantine`.
        """
        deployment = self.resolve(name)
        with self._lock:
            self._quarantined[deployment.name] = str(reason)

    def unquarantine(self, name: str) -> None:
        deployment = self.resolve(name)
        with self._lock:
            self._quarantined.pop(deployment.name, None)

    def quarantined(self) -> Dict[str, str]:
        with self._lock:
            return dict(self._quarantined)

    # ------------------------------------------------------------- routing
    def resolve(self, name: Optional[str] = None) -> Deployment:
        """Deployment for ``name`` (a deployment name, an alias, or ``None``
        for the default).  One locked dict lookup — this is the whole
        per-request routing cost."""
        with self._lock:
            if name is None:
                if self._default is None:
                    raise DeploymentNotFoundError(
                        "this hub has no default deployment; address a model "
                        "by name (POST /v1/models/<name>/predict)"
                    )
                return self._deployments[self._default]
            deployment = self._deployments.get(name)
            if deployment is None:
                target = self._aliases.get(name)
                if target is not None:
                    deployment = self._deployments.get(target)
            if deployment is None:
                raise DeploymentNotFoundError(
                    f"no deployment or alias named {name!r}"
                )
            return deployment

    def resolve_for_predict(self, name: Optional[str] = None) -> Deployment:
        """:meth:`resolve`, then enforce the quarantine fence — the lookup
        every prediction route must use."""
        deployment = self.resolve(name)
        with self._lock:
            reason = self._quarantined.get(deployment.name)
        if reason is not None:
            raise DeploymentQuarantinedError(
                f"deployment {deployment.name!r} is quarantined: {reason}"
            )
        return deployment

    def predict(self, name: Optional[str], request):
        predictor = self.resolve_for_predict(name).predictor
        with _admission_guard(predictor, 1):
            return predictor.predict(request)

    def predict_many(self, name: Optional[str], requests):
        predictor = self.resolve_for_predict(name).predictor
        with _admission_guard(predictor, len(requests)):
            return predictor.predict_many(requests)

    def submit(self, name: Optional[str], request):
        # submit() runs its own admission acquire (released when the future
        # resolves), so only the quarantine fence applies here.
        return self.resolve_for_predict(name).predictor.submit(request)

    # ---------------------------------------------------------- introspection
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._deployments)

    def aliases(self) -> Dict[str, str]:
        with self._lock:
            return dict(self._aliases)

    @property
    def default_name(self) -> Optional[str]:
        with self._lock:
            return self._default

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._deployments or name in self._aliases

    def __len__(self) -> int:
        with self._lock:
            return len(self._deployments)

    def describe(self) -> Dict[str, object]:
        with self._lock:
            deployments = dict(self._deployments)
            aliases = dict(self._aliases)
            default = self._default
        return {
            "service": "hub",
            "models": {
                name: deployment.describe() for name, deployment in deployments.items()
            },
            "aliases": aliases,
            "default": default,
        }

    def model_health(self, name: Optional[str] = None) -> Dict[str, object]:
        """Health of one deployment: identity + its share of the cache."""
        deployment = self.resolve(name)
        predictor = deployment.predictor
        cache = getattr(predictor, "cache", None)
        entries = 0
        if cache is not None:
            namespace = getattr(predictor, "cache_namespace", None)
            entries = (
                cache.namespace_size(namespace()) if namespace is not None else len(cache)
            )
        with self._lock:
            aliases = sorted(
                alias
                for alias, target in self._aliases.items()
                if target == deployment.name
            )
            is_default = self._default == deployment.name
        return {
            "status": "ok",
            "model": deployment.describe(),
            "aliases": aliases,
            "default": is_default,
            "cache": {
                "enabled": cache is not None,
                "entries": entries,
                "warm": entries > 0,
            },
            "drift": self._drift_summary(deployment.name),
        }

    def _drift_summary(self, name: str) -> Optional[Dict[str, object]]:
        """Compact drift status for ``model_health`` (None without journal)."""
        if self.journal is None:
            return None
        verdict = self.model_drift(name)
        return {
            "status": verdict["status"],
            "alerts": [alert["kind"] for alert in verdict["alerts"]],
        }

    def snapshot(self) -> Dict[str, object]:
        """Hub-wide metrics: per-model stats + shared-infrastructure stats."""
        with self._lock:
            deployments = dict(self._deployments)
            aliases = dict(self._aliases)
            default = self._default
        per_model = {
            name: deployment.predictor.snapshot()
            for name, deployment in deployments.items()
        }
        # Raw latency windows, where the predictors expose them, make the
        # aggregate's pooled percentiles honest (percentiles of per-model
        # percentiles would be statistics of nothing).
        latency_windows = [
            stats.latency_values()
            for deployment in deployments.values()
            if (stats := getattr(deployment.predictor, "stats", None)) is not None
            and hasattr(stats, "latency_values")
        ]
        return {
            "uptime_s": time.monotonic() - self._created_monotonic,
            "models": per_model,
            "aggregate": aggregate_snapshots(
                per_model.values(), latency_windows=latency_windows
            ),
            "aliases": aliases,
            "default": default,
            "cache": self.cache.stats() if self.cache is not None else None,
            "pool": self.pool.telemetry(),
            "journal": self.journal.stats() if self.journal is not None else None,
            "checkpoint": self.checkpoint.stats() if self.checkpoint is not None else None,
        }

    def capacity_report(self, name: Optional[str] = None) -> Dict[str, object]:
        """Predicted vs measured operating point of the hub (or one model).

        Served on ``GET /v1/capacity`` (all deployments) and
        ``GET /v1/models/<name>/capacity`` (one).  Each entry is the
        frontend's :meth:`~repro.serving.service.ServingFrontend.capacity`
        verdict plus the hub-level quarantine flag; the report footer
        carries the cost-model identity and the summed sustainable QPS the
        calibration predicts for the current mix.
        """
        if name is not None:
            targets = [self.resolve(name)]
        else:
            with self._lock:
                targets = [
                    self._deployments[key] for key in sorted(self._deployments)
                ]
        with self._lock:
            quarantined = dict(self._quarantined)
            cost_model = self._cost_model
        models: Dict[str, object] = {}
        total_qps = 0.0
        any_qps = False
        for deployment in targets:
            capacity = getattr(deployment.predictor, "capacity", None)
            entry: Dict[str, object] = capacity() if capacity is not None else {}
            entry["quarantined"] = quarantined.get(deployment.name)
            models[deployment.name] = entry
            predicted = entry.get("predicted")
            if isinstance(predicted, dict):
                qps = predicted.get("sustainable_qps")
                if isinstance(qps, (int, float)):
                    total_qps += float(qps)
                    any_qps = True
        return {
            "models": models,
            "cost_model": cost_model_summary(cost_model),
            "total_sustainable_qps": total_qps if any_qps else None,
        }

    def model_drift(self, name: Optional[str] = None) -> Dict[str, object]:
        """Drift verdict for one deployment, from the journal's live tail.

        Served on ``GET /v1/models/<name>/drift``.  Without a journal
        there is nothing to judge from — the response says so instead of
        pretending "ok".
        """
        deployment = self.resolve(name)
        if self.journal is None:
            return {
                "model": deployment.name,
                "status": "no-journal",
                "alerts": [],
            }
        verdict = detect_drift(
            self.journal.recent(deployment.name), self.drift_config
        )
        verdict["model"] = deployment.name
        return verdict

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "ModelHub":
        """Start every deployment's batcher and the checkpoint daemon;
        deployments loaded later start immediately."""
        with self._lock:
            self._started = True
            deployments = list(self._deployments.values())
        for deployment in deployments:
            deployment.predictor.start()
        if self.checkpoint is not None:
            self.checkpoint.start()
        return self

    def stop(self) -> None:
        """Drain every deployment, close the shared pool, write the final
        checkpoint last (so results computed during the drain land in it)."""
        with self._lock:
            self._started = False
            deployments = list(self._deployments.values())
        for deployment in deployments:
            deployment.predictor.stop()
        self.pool.close()
        if self.checkpoint is not None:
            self.checkpoint.stop()
        if self.journal is not None:
            # Last: the drained deployments' final records must land on disk.
            self.journal.close()

    def __enter__(self) -> "ModelHub":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------ internals
    def _build(self, spec: DeploymentSpec) -> Predictor:
        if self.registry is None:
            raise HubError(
                "this hub has no registry; construct it with one (or a root "
                "path) to load() deployments declaratively"
            )
        # The shared cache backs every deployment that wants caching; a
        # spec opting out gets no cache at all (not a private one), so
        # cache telemetry stays one coherent table.
        shared_cache = self.cache if spec.enable_cache else None
        if spec.kind == "single":
            ref = self.registry.resolve(spec.artifact, spec.version)
            artifact = self.registry.load(ref.name, ref.version)
            predictor: ServingFrontend = PredictionService.from_artifact(
                artifact, config=spec.service_config(), cache=shared_cache
            )
        else:
            predictor = EnsemblePredictionService.from_registry(
                self.registry.root,
                spec.fold_group,
                config=spec.ensemble_config(),
                folds=spec.folds,
                cache=shared_cache,
            )
        # All hub-built deployments share one worker pool.
        predictor._batcher_factory = self.pool.batcher_factory
        # Bound before install: the batcher this predictor builds on first
        # traffic must already know its deadline target.
        with self._lock:
            cost_model = self._cost_model
        predictor.bind_slo(spec.slo, cost_model)
        return predictor

    def _install(
        self,
        name: str,
        predictor: Predictor,
        spec: Optional[DeploymentSpec],
        replace: bool,
    ) -> Deployment:
        deployment = Deployment(
            name=name, predictor=predictor, spec=spec, created_unix=time.time()
        )
        if self.journal is not None:
            # Bound before the deployment becomes routable, so every request
            # it ever answers is journalled.  Adopted predictors may be
            # arbitrary Predictor implementations; only journal the ones
            # that know how.
            bind = getattr(predictor, "bind_journal", None)
            if bind is not None:
                bind(self.journal, name)
        with self._lock:
            if name in self._aliases:
                raise DeploymentExistsError(
                    f"{name!r} is an alias; deployments must not shadow one"
                )
            previous = self._deployments.get(name)
            if previous is not None and not replace:
                raise DeploymentExistsError(
                    f"deployment {name!r} is already loaded (reload() it, or "
                    f"load(..., replace=True))"
                )
            self._deployments[name] = deployment
            if self._default is None:
                self._default = name
            started = self._started
        if started:
            predictor.start()
        if previous is not None:
            # Drained after the swap: requests that resolved the old
            # predictor finish on it, new requests already route to the
            # replacement.
            previous.predictor.stop()
        return deployment
